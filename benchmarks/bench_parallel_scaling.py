"""Parallel-loading scaling benchmark: edges/sec vs worker count.

Generates a power-law (Barabási–Albert) graph, writes it to an edge
file, and partitions it with HDRF (fast state) through
:class:`~repro.partitioning.parallel.ParallelLoader` with
``backend="process"`` at increasing worker counts.  Each worker streams
its own byte-offset chunk of the file (out-of-core), so this measures
the real multi-core path end to end: chunking, per-process streaming,
snapshot serialization, and the merge.

Workers run in the paper's spotlight configuration (spread ``k/z``), the
deployment §III-D actually proposes; the full run also reports maximal
spread (``spread = k``) rows for comparison.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py          # full
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py \
        --smoke --check --out bench_parallel.json                       # CI

``--check`` enforces two gates: the process backend must be
bit-identical to the simulated reference (always), and 4 workers must
deliver >= 1.5x the 1-worker edges/sec (only on machines with >= 4
CPUs — a single-core box cannot exhibit multi-core scaling, and the
gate prints a skip notice instead of lying).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.graph.generators import barabasi_albert_graph   # noqa: E402
from repro.graph.io import write_edges                     # noqa: E402
from repro.graph.stream import shuffled                    # noqa: E402
from repro.partitioning.parallel import (                  # noqa: E402
    ParallelLoader,
    PartitionerSpec,
)

#: Paper setup: k = 32 partitions.
NUM_PARTITIONS = 32

#: Acceptance gate: minimum 4-worker/1-worker edges/sec ratio.
SPEEDUP_GATE = 1.5

#: CPUs required before the speedup gate is meaningful.
MIN_CPUS_FOR_GATE = 4


def build_edge_file(path: str, smoke: bool) -> int:
    """Write the benchmark graph to ``path``; return the edge count.

    Both modes generate the ~100k-edge graph the acceptance criterion
    names; the full run uses a larger instance on top.
    """
    n, m = (10_000, 10) if smoke else (20_000, 12)
    graph = barabasi_albert_graph(n=n, m=m, seed=3)
    edges = list(shuffled(graph.edges(), seed=5))
    return write_edges(path, edges)


def loader_for(workers: int, spread: "int | None",
               backend: str = "process") -> ParallelLoader:
    return ParallelLoader(
        PartitionerSpec("hdrf", {"fast": True}),
        partitions=list(range(NUM_PARTITIONS)),
        num_instances=workers,
        spread=spread,
        backend=backend)


def measure(path: str, workers: int, spread: "int | None",
            repeats: int):
    """Best-of-``repeats`` wall-clock run; returns (result, seconds)."""
    best_result, best_time = None, float("inf")
    for _ in range(repeats):
        loader = loader_for(workers, spread)
        start = time.perf_counter()
        result = loader.run_file(path)
        elapsed = time.perf_counter() - start
        if elapsed < best_time:
            best_result, best_time = result, elapsed
    return best_result, best_time


def parity_row(path: str, workers: int):
    """Differential check: process backend == simulated reference."""
    process = loader_for(workers, None, backend="process").run_file(path)
    simulated = loader_for(workers, None, backend="simulated").run_file(path)
    return {
        "workers": workers,
        "replica_sets": process.replica_sets == simulated.replica_sets,
        "partition_sizes":
            process.partition_sizes == simulated.partition_sizes,
        "replication_degree":
            process.replication_degree == simulated.replication_degree,
        "assignments": process.assignments == simulated.assignments,
    }


def run(smoke: bool, repeats: int):
    worker_counts = (1, 2, 4) if smoke else (1, 2, 4, 8)
    with tempfile.TemporaryDirectory() as tmpdir:
        path = os.path.join(tmpdir, "powerlaw.txt")
        num_edges = build_edge_file(path, smoke)
        rows = []
        base_eps = None
        for workers in worker_counts:
            result, seconds = measure(path, workers, spread=None,
                                      repeats=repeats)
            eps = num_edges / seconds
            if workers == 1:
                base_eps = eps
            rows.append({
                "workers": workers,
                "spread": result.spread,
                "seconds": seconds,
                "eps": eps,
                "speedup": eps / base_eps,
                "replication_degree": result.replication_degree,
                "imbalance": result.imbalance,
            })
        full_spread_rows = []
        if not smoke:
            base = None
            for workers in worker_counts:
                result, seconds = measure(path, workers,
                                          spread=NUM_PARTITIONS,
                                          repeats=repeats)
                eps = num_edges / seconds
                base = base or eps
                full_spread_rows.append({
                    "workers": workers,
                    "spread": result.spread,
                    "seconds": seconds,
                    "eps": eps,
                    "speedup": eps / base,
                    "replication_degree": result.replication_degree,
                    "imbalance": result.imbalance,
                })
        parity = parity_row(path, workers=4)
    return {
        "smoke": smoke,
        "num_partitions": NUM_PARTITIONS,
        "num_edges": num_edges,
        "cpu_count": os.cpu_count(),
        "speedup_gate": SPEEDUP_GATE,
        "results": rows,
        "full_spread_results": full_spread_rows,
        "parity": parity,
    }


def format_report(report) -> str:
    lines = [
        f"Parallel loading scaling — HDRF fast, "
        f"{report['num_edges']} edges, k={report['num_partitions']}, "
        f"{report['cpu_count']} CPUs",
        f"{'workers':>7} {'spread':>6} {'seconds':>8} {'edges/s':>10} "
        f"{'speedup':>8} {'rep.deg':>8}",
    ]
    for row in report["results"]:
        lines.append(
            f"{row['workers']:>7} {row['spread']:>6} {row['seconds']:>8.2f} "
            f"{row['eps']:>10.0f} {row['speedup']:>7.2f}x "
            f"{row['replication_degree']:>8.3f}")
    if report["full_spread_results"]:
        lines.append("maximal spread (spread = k):")
        for row in report["full_spread_results"]:
            lines.append(
                f"{row['workers']:>7} {row['spread']:>6} "
                f"{row['seconds']:>8.2f} {row['eps']:>10.0f} "
                f"{row['speedup']:>7.2f}x "
                f"{row['replication_degree']:>8.3f}")
    parity = report["parity"]
    ok = all(v for k, v in parity.items() if k != "workers")
    lines.append(f"process/simulated parity at {parity['workers']} workers: "
                 f"{'ok' if ok else 'FAIL'}")
    return "\n".join(lines)


def check(report) -> list:
    """Gate violations (empty list == pass)."""
    problems = []
    parity = report["parity"]
    for key, value in parity.items():
        if key != "workers" and not value:
            problems.append(f"parity: {key} differs between backends")
    cpus = report["cpu_count"] or 1
    if cpus < MIN_CPUS_FOR_GATE:
        print(f"note: speedup gate skipped — {cpus} CPU(s) < "
              f"{MIN_CPUS_FOR_GATE} (cannot scale on this machine)")
        return problems
    four = next((r for r in report["results"] if r["workers"] == 4), None)
    if four is None:
        problems.append("no 4-worker measurement")
    elif four["speedup"] < report["speedup_gate"]:
        problems.append(
            f"4-worker speedup {four['speedup']:.2f}x below gate "
            f"{report['speedup_gate']:.2f}x")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI variant: 100k-edge graph, workers 1/2/4")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on parity or speedup failure")
    parser.add_argument("--repeats", type=int, default=2,
                        help="wall-clock repeats per worker count (best-of)")
    parser.add_argument("--out", help="write the report as JSON to this path")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    report = run(smoke=args.smoke, repeats=args.repeats)
    print(format_report(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"\nwrote {args.out}")

    problems = check(report)
    if problems:
        print("\nGATE FAILURES:")
        for problem in problems:
            print(f"  - {problem}")
    if args.check and problems:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
