"""Fig. 8 reproduction: efficacy of the spotlight optimisation on Brain.

The paper varies the spread (number of disjoint out-partitions per
parallel partitioner instance, z = 8 instances, k = 32 partitions) for
DBH, HDRF and ADWISE, and finds that smaller spreads reduce replication
degree by up to 76% — for every strategy — while prior systems' maximal
spread (32) is the worst setting.
"""

from _common import emit, single_edge_latency_ms

from repro.bench.harness import ExperimentConfig, spotlight_sweep
from repro.bench.reporting import format_spotlight
from repro.bench.workloads import BRAIN, adwise_factory, baseline_factories

SPREADS = (4, 8, 16, 32)


def run_experiment():
    factories = baseline_factories()
    base = single_edge_latency_ms(BRAIN)
    configs = [
        ExperimentConfig("DBH", factories["DBH"]),
        ExperimentConfig("HDRF", factories["HDRF"]),
        ExperimentConfig("ADWISE", adwise_factory(
            base * 8, use_clustering=True, max_window=128)),
    ]
    return spotlight_sweep(BRAIN.stream, configs, spreads=SPREADS)


def test_fig8_spotlight_brain(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    emit("fig8_spotlight",
         format_spotlight(results,
                          title="Fig. 8: spotlight spread sweep on Brain "
                                "(z=8, k=32)"))

    for strategy, per_spread in results.items():
        smallest = per_spread[SPREADS[0]]
        largest = per_spread[SPREADS[-1]]
        # Spotlight helps every strategy...
        assert smallest < largest, strategy
        # ...and the trend over spreads is (noisy-)monotone.
        values = [per_spread[s] for s in SPREADS]
        for earlier, later in zip(values, values[1:]):
            assert later >= earlier * 0.95, (strategy, values)
    # DBH shows the paper's dramatic reduction (up to 76% at scale;
    # >= 40% at ours).
    dbh_gain = 1 - results["DBH"][4] / results["DBH"][32]
    assert dbh_gain > 0.4, f"DBH spotlight gain only {dbh_gain:.1%}"
