"""Shared helpers for the benchmark suite.

Every ``bench_*.py`` file reproduces one table or figure of the paper (see
DESIGN.md §3).  Helpers here build the standard configuration sweeps
(DBH, HDRF, ADWISE at several latency preferences, mirroring Fig. 7's bar
groups) and write each reproduction table to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import ExperimentConfig, run_partitioning
from repro.bench.workloads import (
    GraphSpec,
    adwise_factory,
    baseline_factories,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: ADWISE latency preferences, as multiples of the measured single-edge
#: (HDRF) partitioning latency — the paper's guideline frames L this way.
DEFAULT_MULTIPLIERS = (2, 4, 8, 16)

#: Window cap for benchmark runs (memory/runtime guard at our scale).
MAX_WINDOW = 256

#: Stream order for the Fig. 7 experiments: coarse locality with local
#: disorder, modelling real edge-file (crawl/export) order.  Fig. 8 uses
#: pure adjacency order, whose stronger stream locality is exactly what
#: the spotlight optimisation preserves.
STREAM_ORDER = "local-shuffle"

_base_latency_cache: Dict[str, float] = {}


def stream_factory(spec: GraphSpec, order: str = STREAM_ORDER):
    """Stream factory with the benchmark suite's standard ordering."""
    return lambda: spec.stream(order=order)


def single_edge_latency_ms(spec: GraphSpec) -> float:
    """Measured HDRF partitioning latency for ``spec`` (cached)."""
    if spec.name not in _base_latency_cache:
        result = run_partitioning(baseline_factories()["HDRF"],
                                  stream_factory(spec)())
        _base_latency_cache[spec.name] = result.latency_ms
    return _base_latency_cache[spec.name]


def standard_configs(spec: GraphSpec,
                     multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
                     include: Sequence[str] = ("DBH", "HDRF"),
                     max_window: int = MAX_WINDOW) -> List[ExperimentConfig]:
    """The Fig. 7 bar groups: baselines plus an ADWISE latency sweep."""
    factories = baseline_factories()
    configs = [ExperimentConfig(name, factories[name]) for name in include]
    base = single_edge_latency_ms(spec)
    for mult in multipliers:
        preference = base * mult
        configs.append(ExperimentConfig(
            f"ADWISE L={preference:.0f}ms",
            adwise_factory(preference,
                           use_clustering=spec.use_clustering_score,
                           max_window=max_window)))
    return configs


def emit(name: str, text: str) -> None:
    """Write a reproduction table to results/ and echo it to stdout."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print()
    print(text)


def adwise_rows(rows) -> list:
    return [r for r in rows if r.label.startswith("ADWISE")]


def row_by_label(rows, label: str):
    for row in rows:
        if row.label == label:
            return row
    raise KeyError(label)
