"""Supplementary: adaptive window-size evolution over the stream.

Not a numbered figure in the paper, but the mechanism behind §III-A: with
a generous latency preference the window should repeatedly double while
quality improves (condition C1), and with a tight preference it should be
beaten back toward single-edge streaming (condition C2).  This bench
traces the controller's decisions on one ADWISE instance and renders the
window-size-over-assignments curve.
"""

from _common import emit

from repro.bench.charts import line_chart
from repro.bench.workloads import BRAIN
from repro.core.adwise import AdwisePartitioner
from repro.simtime import SimulatedClock


def run_experiment():
    stream = BRAIN.stream(order="local-shuffle")
    # This trace uses a single instance over all k = 32 partitions, so the
    # floor cost per edge is k score computations (~0.034 ms on the
    # simulated clock).  "Generous" grants ~5x that per edge; "tight"
    # grants less than the floor, which is infeasible by construction.
    generous = len(stream) * 0.17
    tight = len(stream) * 0.01
    traces = {}
    for label, preference in [("generous", generous), ("tight", tight)]:
        partitioner = AdwisePartitioner(
            list(range(32)), latency_preference_ms=preference,
            clock=SimulatedClock(), max_window=256)
        partitioner.partition_stream(stream)
        events = partitioner.controller.events
        traces[label] = {e.assignments: e.window_after for e in events}
    return traces


def test_window_evolution(benchmark):
    traces = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    charts = []
    for label, points in traces.items():
        charts.append(line_chart(
            points, width=64, height=10,
            title=f"window size over assignments — L {label}"))
    emit("window_evolution", "\n\n".join(charts))

    generous = traces["generous"]
    tight = traces["tight"]
    # A generous budget grows the window well beyond single-edge...
    assert max(generous.values()) >= 16
    # ...while an infeasibly tight budget pins it at (or near) w = 1.
    assert max(tight.values()) <= 2
    # Growth is by doubling: every observed size is a power of two.
    assert all(w & (w - 1) == 0 for w in generous.values())
