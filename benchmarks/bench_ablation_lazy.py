"""Ablation: lazy window traversal vs eager full rescoring (§III-B).

The lazy traversal's promise: (almost) the same assignment decisions with
far fewer score computations.  This bench runs identical fixed-window
configurations with lazy traversal on and off and compares both the score
computation counts (the complexity unit, which also drives simulated
latency) and the resulting partitioning quality.
"""

from _common import emit, stream_factory

from repro.bench.harness import ExperimentConfig, replication_sweep
from repro.bench.reporting import format_table
from repro.bench.workloads import BRAIN, adwise_factory

WINDOW = 32


def run_experiment():
    configs = [
        ExperimentConfig("lazy", adwise_factory(
            None, use_clustering=True, fixed_window=WINDOW, lazy=True)),
        ExperimentConfig("eager", adwise_factory(
            None, use_clustering=True, fixed_window=WINDOW, lazy=False)),
    ]
    return replication_sweep(stream_factory(BRAIN), configs, enforce_balance=False)


def test_ablation_lazy_traversal(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["variant", "part_ms", "score_computations", "repl_degree"],
        [[r.label, r.partitioning_ms, r.score_computations,
          r.replication_degree] for r in rows],
        title=f"Ablation: lazy vs eager traversal (fixed w={WINDOW}, Brain)")
    emit("ablation_lazy", table)

    by = {r.label: r for r in rows}
    # Lazy traversal saves a large share of the score computations...
    assert by["lazy"].score_computations < by["eager"].score_computations * 0.7
    # ...and with them, partitioning latency...
    assert by["lazy"].partitioning_ms < by["eager"].partitioning_ms
    # ...at near-identical quality (within 10%).
    assert (by["lazy"].replication_degree
            <= by["eager"].replication_degree * 1.10)
