"""Ablation: restreaming (multi-pass) partitioning (DESIGN.md §7).

The paper's related work ([27], Nishimura & Ugander) observes that
re-running a streaming partitioner with information from a previous pass
improves quality.  This bench quantifies that for the degree-aware
strategies in this library: a second pass starts with the complete degree
table, so every θ/Ψ in HDRF's and ADWISE's scoring is exact from the
first edge — at exactly 2x the partitioning latency.
"""

from _common import emit, stream_factory

from repro.bench.harness import run_partitioning
from repro.bench.reporting import format_table
from repro.bench.workloads import BRAIN, adwise_factory
from repro.partitioning.hdrf import HDRFPartitioner
from repro.partitioning.restream import RestreamingDriver


def run_experiment():
    """Single-instance runs (restreaming is defined per instance)."""
    stream = stream_factory(BRAIN)()
    rows = []
    adwise = adwise_factory(None, use_clustering=True, fixed_window=16)
    for label, factory, passes in [
            ("HDRF 1-pass",
             lambda parts, clock: HDRFPartitioner(parts, clock=clock), 1),
            ("HDRF 2-pass",
             lambda parts, clock: HDRFPartitioner(parts, clock=clock), 2),
            ("ADWISE 1-pass", adwise, 1),
            ("ADWISE 2-pass", adwise, 2),
    ]:
        driver = RestreamingDriver(factory, list(range(32)), passes=passes)
        result = driver.run(stream)
        rows.append((label, result.latency_ms, result.replication_degree,
                     result.imbalance))
    return rows


def test_ablation_restreaming(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["variant", "part_ms", "repl_degree", "imbalance"],
        [list(r) for r in rows],
        title="Ablation: restreaming on Brain (single instance, k=32)")
    emit("ablation_restream", table)

    by = {label: (lat, repl, imb) for label, lat, repl, imb in rows}
    # A second pass must not hurt quality for either strategy...
    assert by["HDRF 2-pass"][1] <= by["HDRF 1-pass"][1] * 1.02
    assert by["ADWISE 2-pass"][1] <= by["ADWISE 1-pass"][1] * 1.02
    # ...and costs about twice the latency.
    assert by["HDRF 2-pass"][0] > by["HDRF 1-pass"][0] * 1.8
