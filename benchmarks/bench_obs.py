"""Observability overhead benchmark: enabled vs disabled, gated.

``repro.obs`` promises that instrumentation is effectively free: disabled
it must cost nothing (no-op singletons), and *enabled* it may cost at
most a few percent, because every hot path is instrumented per batch /
per superstep, never per edge.  This bench measures that promise on the
two paths the ISSUE names:

* ``adwise-w256`` — the fast array-window ADWISE configuration
  (``fixed_window=256``) partitioning a power-law stream, and
* ``service-ingest`` — a single-tenant daemon ingest run over TCP,
  with the client inside a root span so every batch carries trace
  context and the daemon emits one ``service.apply_batch`` span per
  batch (the worst enabled case: metrics + tracing + wire overhead).

Schema matches the other benches so ``tools/check_bench_regression.py``
consumes it unchanged: ``legacy_eps`` is disabled throughput,
``fast_eps`` is enabled throughput, ``speedup`` is their ratio (~1.0;
the gate is the ≤3% overhead budget).  Runs are interleaved
disabled/enabled pairs and the gate applies to the best pair — ambient
load only ever slows a run, so the cleanest pair is the truest overhead
estimate, while a structural regression degrades every pair.  Parity
asserts assignments are bit-identical with observability on.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py                  # full
    PYTHONPATH=src python benchmarks/bench_obs.py --smoke \
        --check --repeats 3 --out bench_obs_smoke.json             # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro import obs                                             # noqa: E402
from repro.core.adwise import AdwisePartitioner                   # noqa: E402
from repro.graph.generators import barabasi_albert_graph          # noqa: E402
from repro.graph.graph import Edge                                # noqa: E402
from repro.graph.stream import InMemoryEdgeStream                 # noqa: E402
from repro.service.client import ServiceClient                    # noqa: E402
from repro.service.server import run_service                      # noqa: E402

NUM_PARTITIONS = 8
WINDOW = 256

#: The overhead budget: enabled must keep >= 97% of disabled throughput.
GATES = {"adwise-w256": 0.97, "service-ingest": 0.97}


def build_stream(smoke: bool):
    if smoke:
        name, n, m = "obs-overhead-smoke", 3_000, 4
    else:
        name, n, m = "obs-overhead", 12_000, 5
    graph = barabasi_albert_graph(n=n, m=m, seed=5)
    edges = [(e.u, e.v) for e in graph.edges()]
    return name, edges


def _reset_obs() -> None:
    obs.disable()
    obs.registry().reset()
    obs.tracer().clear()


def adwise_run(edges, enabled: bool):
    """One ADWISE w=256 array-window run; returns (wall_s, assignments)."""
    _reset_obs()
    if enabled:
        obs.enable()
    partitioner = AdwisePartitioner(
        list(range(NUM_PARTITIONS)), fast=True, fixed_window=WINDOW,
        window_backend="array")
    stream = InMemoryEdgeStream([Edge(u, v) for u, v in edges])
    begin = time.perf_counter()
    result = partitioner.partition_stream(stream)
    wall = time.perf_counter() - begin
    _reset_obs()
    assignments = sorted([e.u, e.v, p]
                         for e, p in result.assignments.items())
    return wall, assignments


def service_run(edges, batch_size: int, enabled: bool):
    """One single-tenant daemon ingest run; returns (wall_s, assignments).

    With observability enabled the client ingests inside a root span, so
    every batch ships trace context and the daemon spans each apply —
    the full enabled cost of the protocol path.
    """
    _reset_obs()
    if enabled:
        obs.enable()
    ready = threading.Event()
    bound = {}

    def on_ready(service):
        bound["port"] = service.port
        ready.set()

    thread = threading.Thread(
        target=run_service,
        kwargs=dict(port=0, queue_depth=16, ready_callback=on_ready),
        daemon=True)
    thread.start()
    if not ready.wait(10):
        raise RuntimeError("service did not start")
    with ServiceClient(port=bound["port"]) as client:
        client.open("bench", algorithm="hdrf", partitions=NUM_PARTITIONS,
                    expected_edges=len(edges))
        begin = time.perf_counter()
        with obs.span("bench.ingest"):
            pending = [client.ingest_async("bench",
                                           edges[start:start + batch_size])
                       for start in range(0, len(edges), batch_size)]
            client.drain(pending)
        wall = time.perf_counter() - begin
        final = client.finalize("bench")
        client.shutdown()
    thread.join(10)
    _reset_obs()
    return wall, final["assignments"]


def best_pair(pairs):
    """The (disabled_wall, enabled_wall) pair with the best ratio."""
    return max(pairs, key=lambda p: p[0] / p[1])


def run_benchmark(smoke: bool, repeats: int, batch_size: int) -> dict:
    workload, edges = build_stream(smoke)
    results = []

    # Untimed warm-up: the first run of each path pays one-off costs
    # (imports, numpy kernel warm-up, socket setup) that would otherwise
    # land entirely on the disabled side of the first pair and skew the
    # ratio above 1.
    adwise_run(edges, enabled=False)
    service_run(edges, batch_size, enabled=False)

    pairs, parity, reference = [], True, None
    for _ in range(repeats):
        off_wall, off_assign = adwise_run(edges, enabled=False)
        on_wall, on_assign = adwise_run(edges, enabled=True)
        if reference is None:
            reference = off_assign
        parity = parity and off_assign == reference and on_assign == reference
        pairs.append((off_wall, on_wall))
    off_wall, on_wall = best_pair(pairs)
    off_eps, on_eps = len(edges) / off_wall, len(edges) / on_wall
    results.append({
        "algorithm": "adwise-w256",
        "edges": len(edges),
        "legacy_eps": off_eps,
        "fast_eps": on_eps,
        "speedup": on_eps / off_eps,
        "parity": parity,
    })

    pairs, parity, reference = [], True, None
    for _ in range(repeats):
        off_wall, off_assign = service_run(edges, batch_size, enabled=False)
        on_wall, on_assign = service_run(edges, batch_size, enabled=True)
        if reference is None:
            reference = off_assign
        parity = parity and off_assign == reference and on_assign == reference
        pairs.append((off_wall, on_wall))
    off_wall, on_wall = best_pair(pairs)
    off_eps, on_eps = len(edges) / off_wall, len(edges) / on_wall
    results.append({
        "algorithm": "service-ingest",
        "edges": len(edges),
        "batch_size": batch_size,
        "legacy_eps": off_eps,
        "fast_eps": on_eps,
        "speedup": on_eps / off_eps,
        "parity": parity,
    })

    return {
        "workload": workload,
        "smoke": smoke,
        "edges": len(edges),
        "batch_size": batch_size,
        "num_partitions": NUM_PARTITIONS,
        "window": WINDOW,
        "gates": dict(GATES),
        "results": results,
    }


def check(report: dict) -> list:
    problems = []
    gates = report["gates"]
    for row in report["results"]:
        if not row["parity"]:
            problems.append(
                f"{row['algorithm']}: enabling observability changed "
                f"the assignments")
        gate = gates.get(row["algorithm"])
        if gate is not None and row["speedup"] < gate:
            problems.append(
                f"{row['algorithm']}: enabled/disabled ratio "
                f"{row['speedup']:.3f} below gate {gate:.3f} "
                f"(> {100 * (1 - gate):.0f}% overhead)")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small stream for CI")
    parser.add_argument("--check", action="store_true",
                        help="fail on parity break or gated ratio")
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved disabled/enabled pairs "
                             "(best pair gated)")
    parser.add_argument("--batch-size", type=int, default=256,
                        help="edges per service ingest request")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    report = run_benchmark(args.smoke, max(1, args.repeats),
                           args.batch_size)
    print(f"workload: {report['workload']} ({report['edges']} edges)")
    for row in report["results"]:
        overhead = 100.0 * (1.0 - row["speedup"])
        print(f"  {row['algorithm']:<16} ratio {row['speedup']:.3f} "
              f"({overhead:+.1f}% overhead; {row['fast_eps']:.0f} e/s "
              f"enabled vs {row['legacy_eps']:.0f} e/s disabled), "
              f"parity {'ok' if row['parity'] else 'BROKEN'}")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.out}")

    if args.check:
        problems = check(report)
        if problems:
            print("\nFAILURES:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("\nall gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
