"""Fig. 7d reproduction: subgraph isomorphism (cycle search) on Brain.

The paper searches Brain consecutively for circles of path lengths 19, 15
and 21 with a communication- and computation-heavy message-passing
algorithm, and finds a clear sweet spot for ADWISE (L = 281s), reducing
total latency by 23% vs HDRF and 37% vs DBH.  Each "block" here is one
full three-cycle-length search, executed for real on the BSP engine.
"""

from _common import adwise_rows, emit, standard_configs, stream_factory

from repro.bench.harness import stacked_latency_experiment
from repro.bench.reporting import format_stacked_rows, summarize_winner
from repro.bench.workloads import BRAIN
from repro.engine.algorithms import CycleSearch
from repro.engine.vertex_program import Context, VertexProgram

CYCLE_LENGTHS = (19, 15, 21)
BLOCKS = 3


class ConsecutiveCycleSearch(VertexProgram):
    """Run the paper's three cycle searches back to back in one program.

    Phases are separated by a two-superstep gap so residual path messages
    from one search drain before the next begins (a message with the wrong
    step count must not be misread as a found cycle).  Vertices stay active
    until the last phase has started so each phase's seeds fire.
    """

    name = "subgraph_isomorphism"

    def __init__(self, seeds, seed=0):
        self._phases = [CycleSearch(length, seeds, fanout=2,
                                    forward_probability=0.7,
                                    seed=seed + i)
                        for i, length in enumerate(CYCLE_LENGTHS)]
        self._starts = []
        start = 0
        for length in CYCLE_LENGTHS:
            self._starts.append(start)
            start += length + 2
        self._end = start

    @property
    def total_supersteps(self):
        return self._end

    def initial_state(self, vertex, degree):
        return 0

    def compute(self, vertex, state, messages, neighbors, ctx):
        # Dispatch this superstep to the phase whose window contains it;
        # messages landing in a gap step are dropped (drained).
        for program, start in zip(self._phases, self._starts):
            local_step = ctx.superstep - start
            if 0 <= local_step <= program.cycle_length:
                sub_ctx = Context(local_step, ctx.num_vertices)
                state = program.compute(vertex, state, messages,
                                        neighbors, sub_ctx)
                for target, message in sub_ctx.outbox:
                    ctx.send(target, message)
                break
        if ctx.superstep >= self._starts[-1]:
            ctx.vote_halt()
        return state


def make_program(graph):
    seeds = sorted(graph.vertices())[::17][:60]
    return ConsecutiveCycleSearch(seeds, seed=5)


def run_experiment():
    graph = BRAIN.build()
    configs = standard_configs(BRAIN)
    total_steps = sum(length + 2 for length in CYCLE_LENGTHS) + 2
    return stacked_latency_experiment(
        graph, stream_factory(BRAIN), configs,
        workload="subgraph_isomorphism",
        block_iterations=total_steps, num_blocks=BLOCKS,
        program_factory=make_program,
        enforce_balance=False,
        # Cycle search ships no dense kernel; dense mode falls back to the
        # object path, exercising the kernel-or-fallback contract.
        engine_mode="dense")


def test_fig7d_subgraph_isomorphism_brain(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = format_stacked_rows(
        rows,
        title="Fig. 7d: subgraph isomorphism on Brain (cycles 19/15/21)",
        num_blocks=BLOCKS)
    report += "\n" + summarize_winner(rows, BLOCKS)
    emit("fig7d_subgraph_brain", report)

    by = {r.label: r for r in rows}
    sweep = adwise_rows(rows)
    best_adwise = min(sweep, key=lambda r: r.total_after_blocks(BLOCKS))
    # ADWISE's sweet spot beats both baselines (paper: 23% / 37%).
    assert (best_adwise.total_after_blocks(BLOCKS)
            <= by["HDRF"].total_after_blocks(BLOCKS))
    assert (best_adwise.total_after_blocks(BLOCKS)
            < by["DBH"].total_after_blocks(BLOCKS))
    # The largest latency preference must NOT be the sweet spot ("higher
    # settings of L ... do not pay off in terms of total latency") unless
    # its partitioning latency is already amortised; assert the sweet spot
    # is not strictly improved by the maximal-L configuration.
    assert (best_adwise.total_after_blocks(BLOCKS)
            <= sweep[-1].total_after_blocks(BLOCKS))
