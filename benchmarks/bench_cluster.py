"""Cluster-runtime benchmark: partitioning quality -> real processing speed.

The paper's headline claim is that better (ADWISE window-based)
partitions make downstream distributed processing measurably faster.
The engine benchmarks check the *simulated* version of that claim; this
one runs it for real: the same graph is partitioned by hashing and by
ADWISE, sharded, and executed on the cluster runtime
(:mod:`repro.cluster`) — PageRank and connected components — measuring
wall-clock, edges/sec and the actually-observed replica-sync traffic.

Gates (all enforced with ``--check``, diffed against the committed
baseline ``benchmarks/BENCH_cluster.json`` by
``tools/check_bench_regression.py``):

* **parity** — the sharded run must match ``Engine(mode="dense")``
  states/supersteps/messages, and its measured per-superstep sync
  messages must equal the :class:`PlacementStats` prediction;
* **sync traffic** — ADWISE must beat hashing on remote sync messages
  (deterministic, strict);
* **wall-clock** — ADWISE-partitioned execution must beat
  hash-partitioned (the ``speedup`` column, gated at >= 1.0 in smoke);
* **scaling smoke** — the process backend (2 and 4 workers) must run to
  parity with the serial backend.

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster.py              # full
    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke \
        --check --repeats 2 --out bench_cluster_smoke.json         # CI
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.cluster import ClusterEngine, FaultInjector, Kill      # noqa: E402
from repro.core.adwise import AdwisePartitioner                   # noqa: E402
from repro.engine.algorithms import (                             # noqa: E402
    ConnectedComponents,
    PageRank,
)
from repro.engine.runtime import Engine                           # noqa: E402
from repro.graph.generators import barabasi_albert_graph          # noqa: E402
from repro.graph.shard import ShardedGraph                        # noqa: E402
from repro.graph.stream import locally_shuffled                   # noqa: E402
from repro.partitioning.hashing import HashPartitioner            # noqa: E402

NUM_PARTITIONS = 8

#: Wall-clock floors for hash_wall / adwise_wall per workload.  Smoke
#: gates at break-even (CI machines are noisy); the full run demands a
#: real margin.
SMOKE_GATES = {"PageRank": 1.0, "Components": 1.0}
FULL_GATES = {"PageRank": 1.05, "Components": 1.0}

#: Scaling smoke: process-backend worker counts that must reach parity.
SCALING_WORKERS = (2, 4)

#: --faults: checkpoint interval and ceiling on checkpoint overhead
#: (time spent capturing/persisting checkpoints vs. the whole run).
CHECKPOINT_EVERY = 8
CHECKPOINT_OVERHEAD_GATE_PCT = 10.0


def build_workload(smoke: bool):
    if smoke:
        name, n, m, iterations = "cluster-powerlaw-smoke", 10_000, 4, 15
    else:
        name, n, m, iterations = "cluster-powerlaw", 30_000, 5, 30
    graph = barabasi_albert_graph(n=n, m=m, seed=3)
    return name, graph, iterations


def partition_both(graph):
    """(label -> ShardedGraph, label -> replication degree)."""
    partitions = list(range(NUM_PARTITIONS))

    def stream():
        return locally_shuffled(graph.edges(), buffer_size=512, seed=3)

    sharded = {}
    replication = {}
    for label, partitioner in (
            ("hash", HashPartitioner(partitions)),
            ("adwise", AdwisePartitioner(partitions, fixed_window=8,
                                         fast=True))):
        result = partitioner.partition_stream(stream())
        sharded[label] = ShardedGraph.from_assignments(
            result.assignments, partitions=partitions,
            vertices=graph.vertices())
        replication[label] = result.replication_degree
    return sharded, replication


def algorithms(iterations: int):
    return [
        ("PageRank", lambda: PageRank(iterations=iterations),
         iterations + 2, True),
        ("Components", lambda: ConnectedComponents(), 200, False),
    ]


def states_match(expected, got, float_state: bool) -> bool:
    if set(expected) != set(got):
        return False
    for vertex, want in expected.items():
        have = got[vertex]
        if float_state:
            if not math.isclose(have, want, rel_tol=1e-9, abs_tol=1e-12):
                return False
        elif have != want:
            return False
    return True


def verify_parity(engine_report, cluster_report, placement,
                  float_state: bool) -> bool:
    """Sharded run == dense engine run, and measured sync == predicted."""
    if (cluster_report.supersteps != engine_report.supersteps
            or cluster_report.messages_sent != engine_report.messages_sent
            or cluster_report.converged != engine_report.converged
            or not cluster_report.sharded
            or not states_match(engine_report.states,
                                cluster_report.states, float_state)):
        return False
    stats = placement.stats()
    for telemetry in cluster_report.telemetry:
        if not telemetry.synced:
            if telemetry.remote_messages or telemetry.local_messages:
                return False
            continue
        for machine, predicted in stats.remote_sync_per_machine.items():
            if telemetry.remote_per_machine.get(machine, 0) != predicted:
                return False
        for machine, predicted in stats.local_sync_per_machine.items():
            if telemetry.local_per_machine.get(machine, 0) != predicted:
                return False
    return True


def measure_cluster(sharded, factory, max_supersteps, repeats,
                    backend="serial", num_workers=None):
    """Best-of-``repeats`` cluster run; returns (report, seconds)."""
    kwargs = {"num_workers": num_workers} if backend == "process" else {}
    engine = ClusterEngine(sharded, backend=backend, **kwargs)
    best_report, best_seconds = None, float("inf")
    for _ in range(repeats):
        report = engine.run(factory(), max_supersteps=max_supersteps)
        seconds = report.wall_ms_total / 1000.0
        if seconds < best_seconds:
            best_report, best_seconds = report, seconds
    return engine, best_report, best_seconds


def run_faults(sharded, iterations, repeats):
    """Fault-tolerance costs: checkpoint overhead % and recovery time.

    Overhead is time spent capturing + persisting checkpoints relative
    to the superstep loop (best ratio over ``repeats``, disk-backed so
    the measurement is honest).  Recovery kills a real process-backend
    worker mid-run and measures the rollback (teardown + respawn +
    restore) plus the supersteps it must replay; the recovered states
    must still match the unfaulted serial run bit-for-bit.
    """
    factory = lambda: PageRank(iterations=iterations)  # noqa: E731
    max_supersteps = iterations + 2
    _, serial_report, _ = measure_cluster(
        sharded, factory, max_supersteps, repeats)

    best = None
    with tempfile.TemporaryDirectory() as directory:
        for index in range(repeats):
            engine = ClusterEngine(
                sharded, checkpoint_every=CHECKPOINT_EVERY,
                checkpoint_dir=os.path.join(directory, str(index)))
            started = time.perf_counter()
            report = engine.run(factory(), max_supersteps=max_supersteps)
            run_ms = (time.perf_counter() - started) * 1000.0
            overhead = 100.0 * report.checkpoint_wall_ms / run_ms
            if best is None or overhead < best[0]:
                best = (overhead, run_ms, report)
    overhead_pct, run_wall_ms, checkpointed = best

    recovery = None
    for _ in range(repeats):
        injector = FaultInjector([Kill(superstep=CHECKPOINT_EVERY + 1,
                                       point="pre-gather", machine=1)])
        engine = ClusterEngine(sharded, backend="process", num_workers=2,
                               checkpoint_every=CHECKPOINT_EVERY,
                               fault_injector=injector)
        report = engine.run(factory(), max_supersteps=max_supersteps)
        event = report.recoveries[0]
        if recovery is None or event.wall_ms < recovery["recovery_wall_ms"]:
            recovery = {
                "recovery_wall_ms": event.wall_ms,
                "supersteps_lost": event.supersteps_lost,
                "replay_wall_ms": sum(
                    t.wall_ms for t in report.telemetry
                    if event.resumed_from <= t.superstep
                    < event.superstep_detected),
                "recovery_parity": states_match(
                    serial_report.states, report.states, float_state=True),
            }

    return {
        "checkpoint_every": CHECKPOINT_EVERY,
        "checkpoints_written": checkpointed.checkpoints_written,
        "checkpoint_wall_ms": checkpointed.checkpoint_wall_ms,
        "run_wall_ms": run_wall_ms,
        "checkpoint_overhead_pct": overhead_pct,
        "checkpoint_overhead_gate_pct": CHECKPOINT_OVERHEAD_GATE_PCT,
        **recovery,
    }


def run(smoke: bool, repeats: int, faults: bool = False):
    workload, graph, iterations = build_workload(smoke)
    sharded, replication = partition_both(graph)
    rows = []
    for name, factory, max_supersteps, float_state in algorithms(iterations):
        measurements = {}
        parity = True
        for label in ("hash", "adwise"):
            engine, report, seconds = measure_cluster(
                sharded[label], factory, max_supersteps, repeats)
            dense = Engine(graph, engine.placement, mode="dense").run(
                factory(), max_supersteps=max_supersteps)
            parity = parity and verify_parity(
                dense, report, engine.placement, float_state)
            measurements[label] = (report, seconds)
        hash_report, hash_seconds = measurements["hash"]
        adwise_report, adwise_seconds = measurements["adwise"]
        rows.append({
            "algorithm": name,
            "supersteps": adwise_report.supersteps,
            "messages": adwise_report.messages_sent,
            # hash == "legacy" partitioning, adwise == the paper's.
            "legacy_eps": hash_report.messages_sent / hash_seconds,
            "fast_eps": adwise_report.messages_sent / adwise_seconds,
            "legacy_wall_ms": hash_seconds * 1000.0,
            "fast_wall_ms": adwise_seconds * 1000.0,
            "speedup": hash_seconds / adwise_seconds,
            "hash_remote_sync": hash_report.remote_sync_messages,
            "adwise_remote_sync": adwise_report.remote_sync_messages,
            "sync_reduction": (hash_report.remote_sync_messages
                               / max(1, adwise_report.remote_sync_messages)),
            "parity": parity,
        })
    scaling = run_scaling(sharded["adwise"], graph, iterations, repeats)
    report = {
        "workload": workload,
        "smoke": smoke,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "num_partitions": NUM_PARTITIONS,
        "iterations": iterations,
        "replication": replication,
        "gates": dict(SMOKE_GATES if smoke else FULL_GATES),
        "results": rows,
        "scaling": scaling,
    }
    if faults:
        report["faults"] = run_faults(sharded["adwise"], iterations, repeats)
    return report


def run_scaling(sharded, graph, iterations, repeats):
    """Wall-clock and edges/sec vs. worker count (ADWISE PageRank).

    The serial row is the reference; each process-backend row must reach
    state parity with it (the scaling smoke gate).
    """
    factory = lambda: PageRank(iterations=iterations)  # noqa: E731
    max_supersteps = iterations + 2
    _, serial_report, serial_seconds = measure_cluster(
        sharded, factory, max_supersteps, repeats)
    rows = [{
        "backend": "serial", "workers": 1,
        "wall_ms": serial_seconds * 1000.0,
        "eps": serial_report.messages_sent / serial_seconds,
        "parity": True,
    }]
    for workers in SCALING_WORKERS:
        _, report, seconds = measure_cluster(
            sharded, factory, max_supersteps, repeats,
            backend="process", num_workers=workers)
        rows.append({
            "backend": "process", "workers": workers,
            "wall_ms": seconds * 1000.0,
            "eps": report.messages_sent / seconds,
            "parity": states_match(serial_report.states, report.states,
                                   float_state=True),
        })
    return rows


def format_report(report) -> str:
    lines = [
        f"Cluster runtime benchmark — {report['workload']} "
        f"({report['num_vertices']} vertices, {report['num_edges']} edges, "
        f"k={report['num_partitions']}, rep hash "
        f"{report['replication']['hash']:.2f} vs adwise "
        f"{report['replication']['adwise']:.2f})",
        f"{'algorithm':<12} {'hash ms':>9} {'adwise ms':>10} "
        f"{'speedup':>8} {'hash sync':>10} {'adwise sync':>12} "
        f"{'sync red.':>9} {'parity':>7}",
    ]
    for row in report["results"]:
        lines.append(
            f"{row['algorithm']:<12} {row['legacy_wall_ms']:>9.1f} "
            f"{row['fast_wall_ms']:>10.1f} {row['speedup']:>7.2f}x "
            f"{row['hash_remote_sync']:>10} {row['adwise_remote_sync']:>12} "
            f"{row['sync_reduction']:>8.2f}x "
            f"{'ok' if row['parity'] else 'FAIL':>7}")
    lines.append("")
    lines.append(f"{'scaling (adwise PageRank)':<28} "
                 f"{'wall ms':>9} {'edges/s':>12} {'parity':>7}")
    for row in report["scaling"]:
        label = f"{row['backend']} x{row['workers']}"
        lines.append(
            f"{label:<28} {row['wall_ms']:>9.1f} {row['eps']:>12.0f} "
            f"{'ok' if row['parity'] else 'FAIL':>7}")
    faults = report.get("faults")
    if faults:
        lines.append("")
        lines.append(
            f"fault tolerance (every {faults['checkpoint_every']} "
            f"supersteps): checkpoint overhead "
            f"{faults['checkpoint_overhead_pct']:.2f}% "
            f"({faults['checkpoints_written']} checkpoints, "
            f"{faults['checkpoint_wall_ms']:.1f} ms of a "
            f"{faults['run_wall_ms']:.1f} ms run)")
        lines.append(
            f"  recovery: rollback {faults['recovery_wall_ms']:.1f} ms + "
            f"replay of {faults['supersteps_lost']} supersteps "
            f"({faults['replay_wall_ms']:.1f} ms), parity "
            f"{'ok' if faults['recovery_parity'] else 'FAIL'}")
    return "\n".join(lines)


def check(report) -> list:
    """Gate violations (empty list == pass)."""
    problems = []
    gates = report["gates"]
    for row in report["results"]:
        if not row["parity"]:
            problems.append(
                f"{row['algorithm']}: cluster/dense parity or measured-"
                f"vs-predicted sync traffic broken")
        if row["adwise_remote_sync"] >= row["hash_remote_sync"]:
            problems.append(
                f"{row['algorithm']}: ADWISE remote sync "
                f"{row['adwise_remote_sync']} not below hash "
                f"{row['hash_remote_sync']}")
        floor = gates.get(row["algorithm"])
        if floor is not None and row["speedup"] < floor:
            problems.append(
                f"{row['algorithm']}: wall-clock speedup "
                f"{row['speedup']:.2f}x below gate {floor:.2f}x")
    for row in report["scaling"]:
        if not row["parity"]:
            problems.append(
                f"scaling {row['backend']} x{row['workers']}: "
                f"state parity with serial broken")
    faults = report.get("faults")
    if faults:
        gate = faults["checkpoint_overhead_gate_pct"]
        if faults["checkpoint_overhead_pct"] > gate:
            problems.append(
                f"faults: checkpoint overhead "
                f"{faults['checkpoint_overhead_pct']:.2f}% above "
                f"gate {gate:.1f}%")
        if not faults["recovery_parity"]:
            problems.append(
                "faults: recovered states diverge from the unfaulted "
                "serial run")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small graph + break-even gates (CI variant)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when a gate fails")
    parser.add_argument("--repeats", type=int, default=2,
                        help="wall-clock repeats per configuration "
                             "(best-of)")
    parser.add_argument("--faults", action="store_true",
                        help="also measure checkpoint overhead %% and "
                             "kill-a-worker recovery time (gated)")
    parser.add_argument("--out", help="write the report as JSON")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    report = run(smoke=args.smoke, repeats=args.repeats, faults=args.faults)
    print(format_report(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"\nwrote {args.out}")

    problems = check(report)
    if problems:
        print("\nGATE FAILURES:")
        for problem in problems:
            print(f"  - {problem}")
    if args.check and problems:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
