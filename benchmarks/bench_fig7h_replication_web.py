"""Fig. 7h reproduction: replication degree vs partitioning latency, Web.

Paper numbers: ADWISE cuts replication degree vs HDRF by 12% at a small
latency budget and 25% at a large one (41% and 51% vs DBH) — larger
partitioning latency means larger windows and more informed decisions.
"""

from _common import adwise_rows, emit, standard_configs, stream_factory

from repro.bench.harness import replication_sweep
from repro.bench.reporting import format_table
from repro.bench.workloads import WEB


def run_experiment():
    configs = standard_configs(WEB, multipliers=(2, 4, 8, 16, 32))
    return replication_sweep(stream_factory(WEB), configs, enforce_balance=False)


def test_fig7h_replication_web(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["config", "part_ms", "repl_degree", "imbalance"],
        [[r.label, r.partitioning_ms, r.replication_degree, r.imbalance]
         for r in rows],
        title="Fig. 7h: replication degree on Web")
    emit("fig7h_replication_web", table)

    by = {r.label: r for r in rows}
    sweep = adwise_rows(rows)
    # The gain over HDRF grows with the latency budget.
    first_gain = 1 - sweep[0].replication_degree / by["HDRF"].replication_degree
    last_gain = 1 - sweep[-1].replication_degree / by["HDRF"].replication_degree
    assert last_gain >= first_gain
    assert last_gain > 0.08, f"vs HDRF only {last_gain:.1%}"
    assert (sweep[-1].replication_degree
            < by["DBH"].replication_degree * 0.75)
