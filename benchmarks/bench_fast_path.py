"""Fast-path scoring kernel benchmark: legacy vs array-backed state.

Runs every degree-aware partitioner twice over the same synthetic
power-law stream — once on the dict-backed legacy
:class:`~repro.partitioning.state.PartitionState`, once on the
array-backed :class:`~repro.partitioning.fast_state.FastPartitionState`
with the batched ``score_all`` kernels — and reports wall-clock
edges/sec for both, the speedup, and a hard parity check (assignments
and quality must be bit-identical between the paths).

Usage::

    PYTHONPATH=src python benchmarks/bench_fast_path.py            # full
    PYTHONPATH=src python benchmarks/bench_fast_path.py --smoke \
        --check --out bench_smoke.json                             # CI gate
    PYTHONPATH=src python benchmarks/bench_fast_path.py \
        --window-bench --check --out bench_window.json             # window gate

The smoke variant is wired into CI together with
``tools/check_bench_regression.py``, which diffs the emitted JSON
against the committed baseline ``benchmarks/BENCH_seed.json``.

``--window-bench`` measures the array-native window engine (PR 5)
against a faithful in-process reconstruction of the PR 1 fast path —
the object window driven by PR 1's committed ``score_all`` kernel,
pinned below as :class:`PR1Scoring` — on the power-law workload at
w ≥ 64.  Runs are interleaved and best-of so the ratio is a same-machine
A/B; assignments must stay bit-identical between the two engines.  The
committed baseline is ``benchmarks/BENCH_window.json``.

Speedup gates are per-algorithm: the scoring-bound partitioners (HDRF,
ADWISE) must beat the legacy path outright; greedy must not lose; DBH
computes no partition scores at all (pure degree hashing), so the fast
path can only match its bookkeeping cost — it is gated on rough parity,
not on a win.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

try:
    import numpy as np
except ImportError:  # pragma: no cover - the fast path needs numpy anyway
    np = None

from repro.core.adwise import AdwisePartitioner          # noqa: E402
from repro.core.scoring import AdwiseScoring, _EPSILON   # noqa: E402
from repro.graph.generators import barabasi_albert_graph  # noqa: E402
from repro.graph.stream import InMemoryEdgeStream, shuffled  # noqa: E402
from repro.partitioning.dbh import DBHPartitioner         # noqa: E402
from repro.partitioning.greedy import GreedyPartitioner   # noqa: E402
from repro.partitioning.hdrf import HDRFPartitioner       # noqa: E402

#: Paper setup: k = 32 partitions.
NUM_PARTITIONS = 32

#: Smoke gates: minimum acceptable fast/legacy speedup per algorithm,
#: chosen well below measured values (HDRF ~3x, ADWISE ~2.5-3.3x,
#: greedy ~2x) to absorb CI machine noise.  DBH computes no partition
#: scores (pure degree hashing), so its fast path can only match the
#: legacy bookkeeping cost (~0.95x steady-state, with single-run jitter
#: well below that under load); its gate is a loose sanity floor
#: against pathological slowdowns, not a win requirement.
SMOKE_GATES = {
    "HDRF": 1.3,
    "Greedy": 1.0,
    "DBH": 0.4,
    "ADWISE-adaptive": 1.3,
    "ADWISE-fixed": 1.3,
}

#: Full-run gates: the acceptance bar — the scoring kernels must be at
#: least 2x over legacy on the power-law workload.
FULL_GATES = {
    "HDRF": 2.0,
    "Greedy": 1.3,
    "DBH": 0.4,
    "ADWISE-adaptive": 2.0,
    "ADWISE-fixed": 2.0,
}


#: Window-engine gates: minimum acceptable array-window / PR1-fast-path
#: speedup per window size.  The committed baseline (k-best agenda +
#: compiled kernels, DESIGN.md §14) records ~5.9x at w=64, ~13x at
#: w=256 and ~17x at w=1024; the floors sit at roughly 70% of measured
#: (the same margin the previous 4.67x-measured/3.0-gated baseline
#: used) so CI machine spread passes while a real regression of the
#: agenda or kernels fails.
WINDOW_GATES = {
    "ADWISE-w64": 4.0,
    "ADWISE-w256": 9.0,
    "ADWISE-w1024": 11.0,
}

#: Window sizes of the window-engine benchmark (the paper's large-window
#: regime starts at w=64; w=1024 exercises the agenda where a linear
#: scan would dominate).
WINDOW_SIZES = (64, 256, 1024)


class PR1Scoring(AdwiseScoring):
    """PR 1's committed ``score_all``/``best``, pinned operation-for-
    operation (per-row replica reads, no λ·B memo, wrapper argmax).

    This is the benchmark control: running today's object window over
    this scoring function reproduces the PR 1 fast path's wall-clock
    behaviour in-process, so the array-window speedup is a same-machine
    A/B instead of a cross-machine absolute comparison.
    """

    def score_all(self, edge, neighborhood=()):
        state = self.state
        if self.clock is not None:
            self.clock.charge_score(state.num_partitions)
        max_size = state.max_size
        balance = (max_size - state.sizes_vector()) / (
            max_size - state.min_size + _EPSILON)
        replication = (
            state.replica_vector(edge.u) * (2.0 - self.psi(edge.u))
            + state.replica_vector(edge.v) * (2.0 - self.psi(edge.v)))
        total = self.current_lambda * balance + replication
        if self.use_clustering:
            nbrs = list(neighborhood)
            if nbrs:
                total += state.replica_hits(nbrs) / len(nbrs)
        return total

    def best(self, edge, neighborhood=()):
        state = self.state
        if state.is_fast:
            scores = self.score_all(edge, neighborhood)
            idx = int(np.argmax(scores))
            return float(scores[idx]), state.partitions[idx]
        return super().best(edge, neighborhood)


class PR1AdwisePartitioner(AdwisePartitioner):
    """ADWISE on the object window with :class:`PR1Scoring` (the control)."""

    def _make_scoring(self, total_edges):
        base = super()._make_scoring(total_edges)
        return PR1Scoring(base.state, balancer=base.balancer,
                          use_clustering=base.use_clustering,
                          fixed_lambda=base.fixed_lambda, clock=base.clock)


def run_window_bench(repeats: int):
    """Array window vs the PR 1 fast path at w >= 64 (interleaved A/B)."""
    workload, edges = build_workload(smoke=False)
    num_edges = len(edges)
    rows = []
    for window in WINDOW_SIZES:
        def pr1():
            return PR1AdwisePartitioner(range(NUM_PARTITIONS),
                                        fixed_window=window, fast=True,
                                        window_backend="object")

        def arrow():
            return AdwisePartitioner(range(NUM_PARTITIONS),
                                     fixed_window=window, fast=True,
                                     window_backend="array")

        pr1_s = array_s = float("inf")
        pr1_result = array_result = None
        for _ in range(repeats):
            # Interleave the two engines so machine-load drift cancels
            # out of the ratio.
            for factory, is_array in ((pr1, False), (arrow, True)):
                partitioner = factory()
                stream = InMemoryEdgeStream(edges)
                start = time.perf_counter()
                result = partitioner.partition_stream(stream)
                elapsed = time.perf_counter() - start
                if is_array and elapsed < array_s:
                    array_result, array_s = result, elapsed
                elif not is_array and elapsed < pr1_s:
                    pr1_result, pr1_s = result, elapsed
        parity = (
            list(array_result.assignments.items())
            == list(pr1_result.assignments.items())
            and array_result.replication_degree == pr1_result.replication_degree
            and array_result.imbalance == pr1_result.imbalance
            and array_result.score_computations == pr1_result.score_computations)
        rows.append({
            "algorithm": f"ADWISE-w{window}",
            "legacy_eps": num_edges / pr1_s,
            "fast_eps": num_edges / array_s,
            "speedup": pr1_s / array_s,
            "parity": parity,
            "replication_degree": array_result.replication_degree,
            "imbalance": array_result.imbalance,
        })
    return {
        "workload": f"{workload}-window",
        "smoke": False,
        "num_partitions": NUM_PARTITIONS,
        "num_edges": num_edges,
        "gates": dict(WINDOW_GATES),
        "results": rows,
    }


def algorithms(smoke: bool):
    """(name, factory) pairs; factories take the ``fast`` flag."""
    window = 32 if smoke else 64
    return [
        ("HDRF", lambda fast: HDRFPartitioner(
            range(NUM_PARTITIONS), fast=fast)),
        ("Greedy", lambda fast: GreedyPartitioner(
            range(NUM_PARTITIONS), fast=fast)),
        ("DBH", lambda fast: DBHPartitioner(
            range(NUM_PARTITIONS), fast=fast)),
        ("ADWISE-adaptive", lambda fast: AdwisePartitioner(
            range(NUM_PARTITIONS), latency_preference_ms=10.0, fast=fast)),
        ("ADWISE-fixed", lambda fast: AdwisePartitioner(
            range(NUM_PARTITIONS), fixed_window=window, fast=fast)),
    ]


def build_workload(smoke: bool):
    """Synthetic power-law (Barabási–Albert) edge stream, fixed seeds."""
    if smoke:
        name, n, m = "powerlaw-smoke", 250, 6
    else:
        name, n, m = "powerlaw", 800, 10
    graph = barabasi_albert_graph(n=n, m=m, seed=3)
    edges = list(shuffled(graph.edges(), seed=5))
    return name, edges


def measure(factory, fast: bool, edges, repeats: int):
    """Best-of-``repeats`` wall-clock run; returns (result, seconds)."""
    best_result, best_time = None, float("inf")
    for _ in range(repeats):
        partitioner = factory(fast)
        stream = InMemoryEdgeStream(edges)
        start = time.perf_counter()
        result = partitioner.partition_stream(stream)
        elapsed = time.perf_counter() - start
        if elapsed < best_time:
            best_result, best_time = result, elapsed
    return best_result, best_time


def run(smoke: bool, repeats: int):
    workload, edges = build_workload(smoke)
    num_edges = len(edges)
    rows = []
    for name, factory in algorithms(smoke):
        legacy, legacy_s = measure(factory, False, edges, repeats)
        fast, fast_s = measure(factory, True, edges, repeats)
        parity = (fast.assignments == legacy.assignments
                  and fast.replication_degree == legacy.replication_degree
                  and fast.imbalance == legacy.imbalance)
        rows.append({
            "algorithm": name,
            "legacy_eps": num_edges / legacy_s,
            "fast_eps": num_edges / fast_s,
            "speedup": legacy_s / fast_s,
            "parity": parity,
            "replication_degree": fast.replication_degree,
            "imbalance": fast.imbalance,
        })
    return {
        "workload": workload,
        "smoke": smoke,
        "num_partitions": NUM_PARTITIONS,
        "num_edges": num_edges,
        # Absolute floors, embedded so check_bench_regression.py can
        # distinguish "slower machine ratio" from "genuinely too slow".
        "gates": dict(SMOKE_GATES if smoke else FULL_GATES),
        "results": rows,
    }


def format_report(report) -> str:
    lines = [
        f"Fast-path kernel benchmark — {report['workload']} "
        f"({report['num_edges']} edges, k={report['num_partitions']})",
        f"{'algorithm':<18} {'legacy e/s':>12} {'fast e/s':>12} "
        f"{'speedup':>8} {'parity':>7}",
    ]
    for row in report["results"]:
        lines.append(
            f"{row['algorithm']:<18} {row['legacy_eps']:>12.0f} "
            f"{row['fast_eps']:>12.0f} {row['speedup']:>7.2f}x "
            f"{'ok' if row['parity'] else 'FAIL':>7}")
    return "\n".join(lines)


def check(report) -> list:
    """Gate violations (empty list == pass)."""
    gates = report.get("gates") or (SMOKE_GATES if report["smoke"]
                                    else FULL_GATES)
    problems = []
    for row in report["results"]:
        if not row["parity"]:
            problems.append(f"{row['algorithm']}: fast/legacy parity broken")
        floor = gates.get(row["algorithm"])
        if floor is not None and row["speedup"] < floor:
            problems.append(
                f"{row['algorithm']}: speedup {row['speedup']:.2f}x "
                f"below gate {floor:.2f}x")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload + relaxed gates (CI variant)")
    parser.add_argument("--window-bench", action="store_true",
                        help="array window vs the PR 1 fast path at w >= 64")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if a speedup gate or parity fails")
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall-clock repeats per configuration (best-of)")
    parser.add_argument("--out", help="write the report as JSON to this path")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    if args.window_bench:
        report = run_window_bench(repeats=args.repeats)
    else:
        report = run(smoke=args.smoke, repeats=args.repeats)
    print(format_report(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"\nwrote {args.out}")

    problems = check(report)
    if problems:
        print("\nGATE FAILURES:")
        for problem in problems:
            print(f"  - {problem}")
    if args.check and problems:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
