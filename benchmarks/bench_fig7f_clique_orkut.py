"""Fig. 7f reproduction: clique search on Orkut — stacked total latency.

The paper searches Orkut for cliques of sizes 3, 4 and 5 with a
random-walker algorithm (partial-clique messages forwarded with
probability P = 0.5), starting at ten randomly chosen vertices, and finds
ADWISE's minimum total latency at a modest latency preference (13% below
HDRF), with very large preferences no longer paying off.
"""

from _common import adwise_rows, emit, standard_configs, stream_factory

from repro.bench.harness import stacked_latency_experiment
from repro.bench.reporting import format_stacked_rows, summarize_winner
from repro.bench.workloads import ORKUT
from repro.engine.algorithms import CliqueSearch
from repro.engine.vertex_program import Context, VertexProgram

CLIQUE_SIZES = (3, 4, 5)
#: The paper repeats the computation ten times per clique size.
BLOCKS = 10


class ConsecutiveCliqueSearch(VertexProgram):
    """The paper's clique workload: sizes 3, 4, 5 searched back to back."""

    name = "clique"

    def __init__(self, seeds, seed=0):
        self._phases = [CliqueSearch(size, seeds, forward_probability=0.5,
                                     fanout=4, seed=seed + i)
                        for i, size in enumerate(CLIQUE_SIZES)]
        self._starts = []
        start = 0
        for size in CLIQUE_SIZES:
            self._starts.append(start)
            start += size + 2
        self._end = start

    def initial_state(self, vertex, degree):
        return 0

    def compute(self, vertex, state, messages, neighbors, ctx):
        for program, start in zip(self._phases, self._starts):
            local_step = ctx.superstep - start
            if 0 <= local_step <= program.clique_size:
                sub_ctx = Context(local_step, ctx.num_vertices)
                state = program.compute(vertex, state, messages,
                                        neighbors, sub_ctx)
                for target, message in sub_ctx.outbox:
                    ctx.send(target, message)
                break
        if ctx.superstep >= self._starts[-1]:
            ctx.vote_halt()
        return state


def make_program(graph):
    # Ten randomly chosen start vertices, as in the paper.
    import random
    rng = random.Random(23)
    seeds = rng.sample(sorted(graph.vertices()), 10)
    return ConsecutiveCliqueSearch(seeds, seed=5)


def run_experiment():
    graph = ORKUT.build()
    configs = standard_configs(ORKUT)
    total_steps = sum(size + 2 for size in CLIQUE_SIZES) + 2
    return stacked_latency_experiment(
        graph, stream_factory(ORKUT), configs,
        workload="clique", block_iterations=total_steps, num_blocks=BLOCKS,
        program_factory=make_program,
        enforce_balance=False,
        # Clique search ships no dense kernel; dense mode falls back to
        # the object path, exercising the kernel-or-fallback contract.
        engine_mode="dense")


def test_fig7f_clique_orkut(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = format_stacked_rows(
        rows, title="Fig. 7f: clique search on Orkut (sizes 3/4/5, P=0.5)",
        num_blocks=BLOCKS)
    report += "\n" + summarize_winner(rows, BLOCKS)
    emit("fig7f_clique_orkut", report)

    by = {r.label: r for r in rows}
    sweep = adwise_rows(rows)
    best_adwise = min(sweep, key=lambda r: r.total_after_blocks(BLOCKS))
    # A modest ADWISE preference beats HDRF.  The paper reports a 13% cut
    # at cluster scale; on the weakly clustered Orkut analogue the
    # replication margin is only ~1-2% (cf. Fig. 7i), so we assert the
    # win with a 1% tolerance band rather than a large margin.
    assert (best_adwise.total_after_blocks(BLOCKS)
            <= by["HDRF"].total_after_blocks(BLOCKS) * 1.01)
    # ...and clearly beats DBH.
    assert (best_adwise.total_after_blocks(BLOCKS)
            < by["DBH"].total_after_blocks(BLOCKS))
    # The largest preference is not the winner ("for even larger
    # partitioning latencies, total graph latency increases").
    assert best_adwise.label != sweep[-1].label or len(sweep) == 1
