"""Fig. 7a reproduction: PageRank on Brain — stacked total latency.

The paper runs PageRank in blocks of 100 iterations after partitioning
Brain with DBH, HDRF and ADWISE at increasing latency preferences, and
reports stacked partitioning+processing latency.  Headline shape: an
intermediate ADWISE latency preference minimises total latency, beating
HDRF (paper: up to 18%) and DBH (paper: up to 39%).
"""

from _common import adwise_rows, emit, standard_configs, stream_factory

from repro.bench.harness import stacked_latency_experiment
from repro.bench.reporting import format_stacked_rows, summarize_winner
from repro.bench.workloads import BRAIN

BLOCKS = 3


def run_experiment():
    graph = BRAIN.build()
    configs = standard_configs(BRAIN)
    return stacked_latency_experiment(
        graph, stream_factory(BRAIN), configs,
        workload="pagerank", block_iterations=100, num_blocks=BLOCKS,
        enforce_balance=False)


def test_fig7a_pagerank_brain(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = format_stacked_rows(
        rows, title="Fig. 7a: PageRank on Brain (100-iteration blocks)",
        num_blocks=BLOCKS)
    report += "\n" + summarize_winner(rows, BLOCKS)
    emit("fig7a_pagerank_brain", report)

    by = {r.label: r for r in rows}
    best = min(rows, key=lambda r: r.total_after_blocks(BLOCKS))
    # The sweet spot is an ADWISE configuration...
    assert best.label.startswith("ADWISE")
    # ...and beats both single-edge baselines on total latency.
    assert (best.total_after_blocks(BLOCKS)
            < by["HDRF"].total_after_blocks(BLOCKS))
    assert (best.total_after_blocks(BLOCKS)
            < by["DBH"].total_after_blocks(BLOCKS))
    # Investing more partitioning latency improves quality monotonically
    # (noisy-monotonically: each step may regress by at most 5%).
    sweep = adwise_rows(rows)
    for earlier, later in zip(sweep, sweep[1:]):
        assert later.replication_degree <= earlier.replication_degree * 1.05
    # ADWISE's partitioning quality beats HDRF's (paper: up to 29%).
    assert sweep[-1].replication_degree < by["HDRF"].replication_degree
    # Balance holds for the quality-aware strategies (paper: < 0.05).
    assert by["HDRF"].imbalance < 0.05
    for row in sweep:
        assert row.imbalance < 0.05
