"""Service benchmark: multi-tenant daemon throughput vs direct sessions.

Boots a real :class:`~repro.service.server.PartitionService`, opens N
interleaved tenants (different algorithms, same stream), pipelines edge
batches over TCP, and measures

* sustained aggregate throughput (edges/sec across all tenants),
* per-tenant p99 ingest-batch latency (from the daemon's own metrics),
* **parity**: every tenant's final assignment must be bit-identical to
  a direct in-process ``partition_stream`` run of the same stream.

The gated quantity is the *service ratio* — aggregate service
throughput over aggregate direct (in-process, sequential) throughput,
measured back-to-back on the same machine so the ratio is portable
while raw edges/sec are not (same philosophy as the fast-path bench;
``tools/check_bench_regression.py`` consumes the same schema, with the
ratio in the ``speedup`` column).  The daemon stack (JSON framing, TCP,
asyncio scheduling, the audit/metrics layer) costs real work per batch,
so the ratio sits below 1.0; the gate catches it collapsing.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py               # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke \
        --check --repeats 2 --out bench_service_smoke.json          # CI
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import shutil
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.api import open_session                                # noqa: E402
from repro.graph.generators import barabasi_albert_graph          # noqa: E402
from repro.graph.graph import Edge                                # noqa: E402
from repro.graph.stream import InMemoryEdgeStream                 # noqa: E402
from repro.partitioning.parallel import partitioner_registry      # noqa: E402
from repro.service.client import ServiceClient                    # noqa: E402
from repro.service.server import PartitionService, run_service    # noqa: E402
from repro.service.wal import (                                   # noqa: E402
    TenantWAL,
    wal_path,
    wal_snapshot_path,
)
from repro.simtime import SimulatedClock                          # noqa: E402

#: The interleaved tenant mix: name -> (algorithm, knobs).  Four tenants
#: spanning the cost spectrum, from the cheap hashed baseline to the
#: windowed ADWISE configurations.
TENANTS = {
    "t-adwise": ("adwise", {"latency_preference_ms": 50.0}),
    "t-adwise-fast": ("adwise", {"latency_preference_ms": 50.0,
                                 "fast": True}),
    "t-hdrf": ("hdrf", {}),
    "t-dbh": ("dbh", {}),
}

NUM_PARTITIONS = 8

#: Absolute floors on the service ratio (service / direct aggregate
#: throughput).  The stack keeps ~0.7-0.8 of direct throughput on this
#: workload; the floors are set far enough below to absorb CI machine
#: noise while still catching a structural collapse.  Every row carries
#: a gate so the regression checker treats cross-machine ratio drift as
#: a warning, not a failure (its gated-row downgrade path).
SMOKE_GATES = dict.fromkeys(["aggregate", *TENANTS], 0.15)
FULL_GATES = dict.fromkeys(["aggregate", *TENANTS], 0.20)

#: ``--durability`` gates.  ``wal-overhead`` is wal/no-wal daemon
#: throughput at fsync=batch: the write-ahead log may cost at most 15%.
#: ``cold-recovery`` is WAL-replay throughput over direct in-process
#: ingest throughput — replay *is* re-ingestion plus snapshot/log IO,
#: so the ratio sits well below 1.0 but not pathologically so; the
#: floor catches recovery becoming dramatically slower than the stream
#: it replays.  Durability rows always run the full-size stream (even
#: under ``--smoke``): the smoke stream finishes in ~0.2 s, where a
#: single scheduling hiccup swings the ratio by more than the gate
#: margin, while the full stream's ~2 s runs keep the paired
#: min-of-repeats ratio stable (~0.9 measured, ~6-9% true overhead).
DURABILITY_GATES = {"wal-overhead": 0.85, "cold-recovery": 0.20}
DURABILITY_TENANT = "t-wal"
#: ~4 compactions over the full stream — compaction (snapshot pickle +
#: log truncate) is in the measured window, at an amortized cadence.
DURABILITY_COMPACT_EVERY = 100


def build_stream(smoke: bool):
    if smoke:
        name, n, m = "service-multitenant-smoke", 4_000, 4
    else:
        name, n, m = "service-multitenant", 20_000, 5
    graph = barabasi_albert_graph(n=n, m=m, seed=5)
    edges = [(e.u, e.v) for e in graph.edges()]
    return name, edges


def direct_run(algorithm: str, knobs: dict, edges):
    """In-process reference: result + wall seconds."""
    partitioner = partitioner_registry()[algorithm](
        list(range(NUM_PARTITIONS)), clock=SimulatedClock(), **knobs)
    stream = InMemoryEdgeStream([Edge(u, v) for u, v in edges])
    begin = time.perf_counter()
    result = partitioner.partition_stream(stream)
    return result, time.perf_counter() - begin


def boot_daemon(**service_kwargs):
    ready = threading.Event()
    bound = {}

    def on_ready(service):
        bound["port"] = service.port
        ready.set()

    thread = threading.Thread(
        target=run_service,
        kwargs=dict(port=0, queue_depth=16, ready_callback=on_ready,
                    **service_kwargs),
        daemon=True)
    thread.start()
    if not ready.wait(10):
        raise RuntimeError("service did not start")
    return bound["port"], thread


def service_run(edges, batch_size: int):
    """One interleaved multi-tenant run; returns (wall_s, per-tenant)."""
    port, thread = boot_daemon()
    per_tenant = {}
    with ServiceClient(port=port) as client:
        for tenant, (algorithm, knobs) in TENANTS.items():
            client.open(tenant, algorithm=algorithm,
                        partitions=NUM_PARTITIONS,
                        expected_edges=len(edges), **knobs)
        begin = time.perf_counter()
        pending = {tenant: [] for tenant in TENANTS}
        for start in range(0, len(edges), batch_size):
            batch = edges[start:start + batch_size]
            for tenant in TENANTS:
                pending[tenant].append(client.ingest_async(tenant, batch))
        for tenant, ids in pending.items():
            client.drain(ids)
        wall = time.perf_counter() - begin
        for tenant in TENANTS:
            stats = client.stats(tenant)
            per_tenant[tenant] = {
                "p99_ms": stats["metrics"]["p99_ingest_ms"],
                "final": None,
            }
        for tenant in TENANTS:
            per_tenant[tenant]["final"] = client.finalize(tenant)
        client.shutdown()
    thread.join(10)
    return wall, per_tenant


def durability_service_run(edges, batch_size: int, wal_dir, fsync="batch"):
    """One single-tenant daemon run, with or without a WAL; returns
    (ingest wall seconds, finalize response)."""
    kwargs = {}
    if wal_dir is not None:
        kwargs = dict(wal_dir=wal_dir, fsync=fsync,
                      wal_compact_every=DURABILITY_COMPACT_EVERY)
    port, thread = boot_daemon(**kwargs)
    with ServiceClient(port=port) as client:
        client.open(DURABILITY_TENANT, algorithm="hdrf",
                    partitions=NUM_PARTITIONS, expected_edges=len(edges))
        begin = time.perf_counter()
        pending = [client.ingest_async(DURABILITY_TENANT,
                                       edges[start:start + batch_size])
                   for start in range(0, len(edges), batch_size)]
        client.drain(pending)
        wall = time.perf_counter() - begin
        final = client.finalize(DURABILITY_TENANT)
        client.shutdown()
    thread.join(10)
    return wall, final


def cold_recovery_run(edges, batch_size: int, wal_dir):
    """Build the on-disk state a daemon killed before its first
    compaction leaves behind (snapshot at seq 0 + a WAL holding every
    batch), then time a fresh daemon's recovery over it.  Returns
    (recovery wall seconds, replayed batch count, finalize result)."""
    os.makedirs(wal_dir, exist_ok=True)
    session = open_session(algorithm="hdrf", partitions=NUM_PARTITIONS,
                           expected_edges=len(edges))
    snapshot = session.snapshot()
    snapshot.seq = 0
    snapshot.save(wal_snapshot_path(wal_dir, DURABILITY_TENANT))
    wal = TenantWAL(wal_path(wal_dir, DURABILITY_TENANT),
                    {"tenant": DURABILITY_TENANT, "algorithm": "hdrf",
                     "partitions": list(range(NUM_PARTITIONS)),
                     "format": 1}, fsync="off")
    for seq, start in enumerate(range(0, len(edges), batch_size),
                                start=1):
        wal.append(seq, edges[start:start + batch_size])
    wal.close()

    box = {}

    async def recover():
        service = PartitionService(port=0, wal_dir=wal_dir)
        begin = time.perf_counter()
        await service.start()
        wall = time.perf_counter() - begin
        box["replayed"] = service.recovered[DURABILITY_TENANT]
        tenant = service.tenants[DURABILITY_TENANT]
        box["final"] = tenant.session.finalize()
        await service.stop()
        return wall

    wall = asyncio.run(recover())
    return wall, box["replayed"], box["final"]


def run_durability(repeats: int, batch_size: int) -> list:
    """The ``--durability`` rows: WAL overhead + cold-recovery time.

    Always measured on the full-size stream — see the
    :data:`DURABILITY_GATES` note on why the smoke stream is too short
    to gate a throughput *ratio* reliably.
    """
    _, edges = build_stream(smoke=False)
    reference = None

    # Interleave the baseline and the measured run as adjacent pairs
    # and gate on the *best pair's* ratio: ambient load only ever slows
    # a run, so the cleanest pair is the truest estimate of the ratio,
    # and a genuine regression degrades every pair.
    wal_pairs, wal_parity = [], True
    for _ in range(repeats):
        nowal_wall, _ = durability_service_run(edges, batch_size, None)
        workdir = tempfile.mkdtemp(prefix="bench-service-wal-")
        try:
            wal_wall, final = durability_service_run(
                edges, batch_size, os.path.join(workdir, "wal"))
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        if reference is None:
            reference = final["assignments"]
        wal_parity = wal_parity and final["assignments"] == reference
        wal_pairs.append((nowal_wall, wal_wall))
    nowal_wall, wal_wall = max(wal_pairs, key=lambda p: p[0] / p[1])

    recovery_pairs, recovery_parity, replayed = [], True, 0
    for _ in range(repeats):
        result, direct_wall = direct_run("hdrf", {}, edges)
        triples = sorted([e.u, e.v, p]
                         for e, p in result.assignments.items())
        recovery_parity = recovery_parity and triples == reference
        workdir = tempfile.mkdtemp(prefix="bench-service-recover-")
        try:
            recovery_wall, replayed, final = cold_recovery_run(
                edges, batch_size, os.path.join(workdir, "wal"))
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        triples = sorted([e.u, e.v, p]
                         for e, p in final.assignments.items())
        recovery_parity = recovery_parity and triples == reference
        recovery_pairs.append((direct_wall, recovery_wall))
    direct_wall, recovery_wall = max(recovery_pairs,
                                     key=lambda p: p[0] / p[1])

    nowal_eps = len(edges) / nowal_wall
    wal_eps = len(edges) / wal_wall
    direct_eps = len(edges) / direct_wall
    recovery_eps = len(edges) / recovery_wall
    return [
        {
            # wal/no-wal daemon throughput at fsync=batch; the gate
            # says durability may cost at most 15%.
            "algorithm": "wal-overhead",
            "edges_per_tenant": len(edges),
            "legacy_eps": nowal_eps,
            "fast_eps": wal_eps,
            "speedup": wal_eps / nowal_eps,
            "parity": wal_parity,
        },
        {
            # recovery replay throughput vs direct ingest; parity means
            # the recovered tenant finalizes bit-identically.
            "algorithm": "cold-recovery",
            "edges_per_tenant": len(edges),
            "replayed_batches": replayed,
            "recovery_wall_s": recovery_wall,
            "legacy_eps": direct_eps,
            "fast_eps": recovery_eps,
            "speedup": recovery_eps / direct_eps,
            "parity": recovery_parity,
        },
    ]


def run_benchmark(smoke: bool, repeats: int, batch_size: int) -> dict:
    workload, edges = build_stream(smoke)
    total_edges = len(edges) * len(TENANTS)

    # Direct references: best wall over repeats, parity data once.
    references = {}
    direct_walls = []
    for attempt in range(repeats):
        wall_sum = 0.0
        for tenant, (algorithm, knobs) in TENANTS.items():
            result, wall = direct_run(algorithm, knobs, edges)
            wall_sum += wall
            if attempt == 0:
                references[tenant] = sorted(
                    [e.u, e.v, p]
                    for e, p in result.assignments.items())
        direct_walls.append(wall_sum)
    direct_wall = min(direct_walls)

    best_service_wall = None
    per_tenant = None
    for _ in range(repeats):
        wall, tenants = service_run(edges, batch_size)
        if best_service_wall is None or wall < best_service_wall:
            best_service_wall = wall
            per_tenant = tenants

    direct_eps = total_edges / direct_wall
    service_eps = total_edges / best_service_wall
    ratio = service_eps / direct_eps

    results = [{
        "algorithm": "aggregate",
        "tenants": len(TENANTS),
        "edges_per_tenant": len(edges),
        "legacy_eps": direct_eps,
        "fast_eps": service_eps,
        "speedup": ratio,
        "p99_ms": max(t["p99_ms"] for t in per_tenant.values()),
        "parity": all(
            per_tenant[tenant]["final"]["assignments"]
            == references[tenant]
            for tenant in TENANTS),
    }]
    for tenant, (algorithm, knobs) in TENANTS.items():
        data = per_tenant[tenant]
        parity = data["final"]["assignments"] == references[tenant]
        results.append({
            "algorithm": tenant,
            "tenant_algorithm": algorithm,
            "legacy_eps": direct_eps,
            "fast_eps": service_eps,
            "speedup": ratio,
            "p99_ms": data["p99_ms"],
            "latency_ms": data["final"]["latency_ms"],
            "replication_degree": data["final"]["replication_degree"],
            "parity": parity,
        })

    return {
        "workload": workload,
        "smoke": smoke,
        "tenants": len(TENANTS),
        "edges_per_tenant": len(edges),
        "batch_size": batch_size,
        "num_partitions": NUM_PARTITIONS,
        "gates": dict(SMOKE_GATES if smoke else FULL_GATES),
        "results": results,
    }


def check(report: dict) -> list:
    problems = []
    gates = report["gates"]
    for row in report["results"]:
        if not row["parity"]:
            problems.append(
                f"{row['algorithm']}: service result differs from the "
                f"direct partition_stream reference")
        gate = gates.get(row["algorithm"])
        if gate is not None and row["speedup"] < gate:
            problems.append(
                f"{row['algorithm']}: service ratio "
                f"{row['speedup']:.3f} below gate {gate:.3f}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small stream for CI")
    parser.add_argument("--durability", action="store_true",
                        help="also measure WAL overhead and cold-recovery "
                             "time (gated rows)")
    parser.add_argument("--check", action="store_true",
                        help="fail on parity break or gated ratio")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    parser.add_argument("--batch-size", type=int, default=256,
                        help="edges per ingest request")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    report = run_benchmark(args.smoke, max(1, args.repeats),
                           args.batch_size)
    if args.durability:
        report["results"].extend(
            run_durability(max(1, args.repeats), args.batch_size))
        report["gates"].update(DURABILITY_GATES)
    print(f"workload: {report['workload']} "
          f"({report['tenants']} tenants x "
          f"{report['edges_per_tenant']} edges)")
    for row in report["results"]:
        p99 = (f", p99 {row['p99_ms']:.2f} ms"
               if "p99_ms" in row else "")
        print(f"  {row['algorithm']:<16} ratio {row['speedup']:.3f} "
              f"({row['fast_eps']:.0f} e/s vs {row['legacy_eps']:.0f} "
              f"e/s){p99}, parity "
              f"{'ok' if row['parity'] else 'BROKEN'}")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.out}")

    if args.check:
        problems = check(report)
        if problems:
            print("\nFAILURES:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("\nall gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
