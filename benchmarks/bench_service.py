"""Service benchmark: multi-tenant daemon throughput vs direct sessions.

Boots a real :class:`~repro.service.server.PartitionService`, opens N
interleaved tenants (different algorithms, same stream), pipelines edge
batches over TCP, and measures

* sustained aggregate throughput (edges/sec across all tenants),
* per-tenant p99 ingest-batch latency (from the daemon's own metrics),
* **parity**: every tenant's final assignment must be bit-identical to
  a direct in-process ``partition_stream`` run of the same stream.

The gated quantity is the *service ratio* — aggregate service
throughput over aggregate direct (in-process, sequential) throughput,
measured back-to-back on the same machine so the ratio is portable
while raw edges/sec are not (same philosophy as the fast-path bench;
``tools/check_bench_regression.py`` consumes the same schema, with the
ratio in the ``speedup`` column).  The daemon stack (JSON framing, TCP,
asyncio scheduling, the audit/metrics layer) costs real work per batch,
so the ratio sits below 1.0; the gate catches it collapsing.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py               # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke \
        --check --repeats 2 --out bench_service_smoke.json          # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.graph.generators import barabasi_albert_graph          # noqa: E402
from repro.graph.graph import Edge                                # noqa: E402
from repro.graph.stream import InMemoryEdgeStream                 # noqa: E402
from repro.partitioning.parallel import partitioner_registry      # noqa: E402
from repro.service.client import ServiceClient                    # noqa: E402
from repro.service.server import run_service                      # noqa: E402
from repro.simtime import SimulatedClock                          # noqa: E402

#: The interleaved tenant mix: name -> (algorithm, knobs).  Four tenants
#: spanning the cost spectrum, from the cheap hashed baseline to the
#: windowed ADWISE configurations.
TENANTS = {
    "t-adwise": ("adwise", {"latency_preference_ms": 50.0}),
    "t-adwise-fast": ("adwise", {"latency_preference_ms": 50.0,
                                 "fast": True}),
    "t-hdrf": ("hdrf", {}),
    "t-dbh": ("dbh", {}),
}

NUM_PARTITIONS = 8

#: Absolute floors on the service ratio (service / direct aggregate
#: throughput).  The stack keeps ~0.7-0.8 of direct throughput on this
#: workload; the floors are set far enough below to absorb CI machine
#: noise while still catching a structural collapse.  Every row carries
#: a gate so the regression checker treats cross-machine ratio drift as
#: a warning, not a failure (its gated-row downgrade path).
SMOKE_GATES = dict.fromkeys(["aggregate", *TENANTS], 0.15)
FULL_GATES = dict.fromkeys(["aggregate", *TENANTS], 0.20)


def build_stream(smoke: bool):
    if smoke:
        name, n, m = "service-multitenant-smoke", 4_000, 4
    else:
        name, n, m = "service-multitenant", 20_000, 5
    graph = barabasi_albert_graph(n=n, m=m, seed=5)
    edges = [(e.u, e.v) for e in graph.edges()]
    return name, edges


def direct_run(algorithm: str, knobs: dict, edges):
    """In-process reference: result + wall seconds."""
    partitioner = partitioner_registry()[algorithm](
        list(range(NUM_PARTITIONS)), clock=SimulatedClock(), **knobs)
    stream = InMemoryEdgeStream([Edge(u, v) for u, v in edges])
    begin = time.perf_counter()
    result = partitioner.partition_stream(stream)
    return result, time.perf_counter() - begin


def boot_daemon():
    ready = threading.Event()
    bound = {}

    def on_ready(service):
        bound["port"] = service.port
        ready.set()

    thread = threading.Thread(
        target=run_service,
        kwargs=dict(port=0, queue_depth=16, ready_callback=on_ready),
        daemon=True)
    thread.start()
    if not ready.wait(10):
        raise RuntimeError("service did not start")
    return bound["port"], thread


def service_run(edges, batch_size: int):
    """One interleaved multi-tenant run; returns (wall_s, per-tenant)."""
    port, thread = boot_daemon()
    per_tenant = {}
    with ServiceClient(port=port) as client:
        for tenant, (algorithm, knobs) in TENANTS.items():
            client.open(tenant, algorithm=algorithm,
                        partitions=NUM_PARTITIONS,
                        expected_edges=len(edges), **knobs)
        begin = time.perf_counter()
        pending = {tenant: [] for tenant in TENANTS}
        for start in range(0, len(edges), batch_size):
            batch = edges[start:start + batch_size]
            for tenant in TENANTS:
                pending[tenant].append(client.ingest_async(tenant, batch))
        for tenant, ids in pending.items():
            client.drain(ids)
        wall = time.perf_counter() - begin
        for tenant in TENANTS:
            stats = client.stats(tenant)
            per_tenant[tenant] = {
                "p99_ms": stats["metrics"]["p99_ingest_ms"],
                "final": None,
            }
        for tenant in TENANTS:
            per_tenant[tenant]["final"] = client.finalize(tenant)
        client.shutdown()
    thread.join(10)
    return wall, per_tenant


def run_benchmark(smoke: bool, repeats: int, batch_size: int) -> dict:
    workload, edges = build_stream(smoke)
    total_edges = len(edges) * len(TENANTS)

    # Direct references: best wall over repeats, parity data once.
    references = {}
    direct_walls = []
    for attempt in range(repeats):
        wall_sum = 0.0
        for tenant, (algorithm, knobs) in TENANTS.items():
            result, wall = direct_run(algorithm, knobs, edges)
            wall_sum += wall
            if attempt == 0:
                references[tenant] = sorted(
                    [e.u, e.v, p]
                    for e, p in result.assignments.items())
        direct_walls.append(wall_sum)
    direct_wall = min(direct_walls)

    best_service_wall = None
    per_tenant = None
    for _ in range(repeats):
        wall, tenants = service_run(edges, batch_size)
        if best_service_wall is None or wall < best_service_wall:
            best_service_wall = wall
            per_tenant = tenants

    direct_eps = total_edges / direct_wall
    service_eps = total_edges / best_service_wall
    ratio = service_eps / direct_eps

    results = [{
        "algorithm": "aggregate",
        "tenants": len(TENANTS),
        "edges_per_tenant": len(edges),
        "legacy_eps": direct_eps,
        "fast_eps": service_eps,
        "speedup": ratio,
        "p99_ms": max(t["p99_ms"] for t in per_tenant.values()),
        "parity": all(
            per_tenant[tenant]["final"]["assignments"]
            == references[tenant]
            for tenant in TENANTS),
    }]
    for tenant, (algorithm, knobs) in TENANTS.items():
        data = per_tenant[tenant]
        parity = data["final"]["assignments"] == references[tenant]
        results.append({
            "algorithm": tenant,
            "tenant_algorithm": algorithm,
            "legacy_eps": direct_eps,
            "fast_eps": service_eps,
            "speedup": ratio,
            "p99_ms": data["p99_ms"],
            "latency_ms": data["final"]["latency_ms"],
            "replication_degree": data["final"]["replication_degree"],
            "parity": parity,
        })

    return {
        "workload": workload,
        "smoke": smoke,
        "tenants": len(TENANTS),
        "edges_per_tenant": len(edges),
        "batch_size": batch_size,
        "num_partitions": NUM_PARTITIONS,
        "gates": dict(SMOKE_GATES if smoke else FULL_GATES),
        "results": results,
    }


def check(report: dict) -> list:
    problems = []
    gates = report["gates"]
    for row in report["results"]:
        if not row["parity"]:
            problems.append(
                f"{row['algorithm']}: service result differs from the "
                f"direct partition_stream reference")
        gate = gates.get(row["algorithm"])
        if gate is not None and row["speedup"] < gate:
            problems.append(
                f"{row['algorithm']}: service ratio "
                f"{row['speedup']:.3f} below gate {gate:.3f}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small stream for CI")
    parser.add_argument("--check", action="store_true",
                        help="fail on parity break or gated ratio")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    parser.add_argument("--batch-size", type=int, default=256,
                        help="edges per ingest request")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    report = run_benchmark(args.smoke, max(1, args.repeats),
                           args.batch_size)
    print(f"workload: {report['workload']} "
          f"({report['tenants']} tenants x "
          f"{report['edges_per_tenant']} edges)")
    for row in report["results"]:
        print(f"  {row['algorithm']:<16} ratio {row['speedup']:.3f} "
              f"(service {row['fast_eps']:.0f} e/s vs direct "
              f"{row['legacy_eps']:.0f} e/s), p99 {row['p99_ms']:.2f} ms, "
              f"parity {'ok' if row['parity'] else 'BROKEN'}")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.out}")

    if args.check:
        problems = check(report)
        if problems:
            print("\nFAILURES:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("\nall gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
