"""Fig. 7c reproduction: PageRank on Orkut — stacked total latency.

Orkut has a very low clustering coefficient, so the paper switches
ADWISE's clustering score OFF for this graph (as does our GraphSpec) and
reports smaller but still positive gains: total latency down up to 11% vs
HDRF and 29% vs DBH, with replication degree improvements of only a few
percent on this locality-poor stream.
"""

from _common import adwise_rows, emit, standard_configs, stream_factory

from repro.bench.harness import stacked_latency_experiment
from repro.bench.reporting import format_stacked_rows, summarize_winner
from repro.bench.workloads import ORKUT

BLOCKS = 3


def run_experiment():
    graph = ORKUT.build()
    configs = standard_configs(ORKUT)
    return stacked_latency_experiment(
        graph, stream_factory(ORKUT), configs,
        workload="pagerank", block_iterations=100, num_blocks=BLOCKS,
        enforce_balance=False)


def test_fig7c_pagerank_orkut(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = format_stacked_rows(
        rows, title="Fig. 7c: PageRank on Orkut (clustering score off)",
        num_blocks=BLOCKS)
    report += "\n" + summarize_winner(rows, BLOCKS)
    emit("fig7c_pagerank_orkut", report)

    by = {r.label: r for r in rows}
    sweep = adwise_rows(rows)
    best_adwise = min(sweep, key=lambda r: r.total_after_blocks(BLOCKS))
    # ADWISE still pays off against both baselines, if by less than on the
    # clustered graphs (paper: 11% vs HDRF, 29% vs DBH).
    assert (best_adwise.total_after_blocks(BLOCKS)
            <= by["HDRF"].total_after_blocks(BLOCKS))
    assert (best_adwise.total_after_blocks(BLOCKS)
            < by["DBH"].total_after_blocks(BLOCKS))
    # Orkut's replication degree stays comparatively high for everyone and
    # ADWISE's margin over HDRF is small (paper: up to 4%).
    assert sweep[-1].replication_degree <= by["HDRF"].replication_degree
