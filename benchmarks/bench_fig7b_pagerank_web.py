"""Fig. 7b reproduction: PageRank on Web — stacked total latency.

Same experiment as Fig. 7a on the strongly clustered Web analogue (the
paper's billion-edge graph, scaled).  Paper headline: ADWISE reduces total
latency by 16% vs HDRF and 38% vs DBH, and investing more partitioning
latency pays off increasingly with more PageRank iterations.
"""

from _common import adwise_rows, emit, standard_configs, stream_factory

from repro.bench.harness import stacked_latency_experiment
from repro.bench.reporting import format_stacked_rows, summarize_winner
from repro.bench.workloads import WEB

BLOCKS = 3


def run_experiment():
    graph = WEB.build()
    configs = standard_configs(WEB)
    return stacked_latency_experiment(
        graph, stream_factory(WEB), configs,
        workload="pagerank", block_iterations=100, num_blocks=BLOCKS,
        enforce_balance=False)


def test_fig7b_pagerank_web(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = format_stacked_rows(
        rows, title="Fig. 7b: PageRank on Web (100-iteration blocks)",
        num_blocks=BLOCKS)
    report += "\n" + summarize_winner(rows, BLOCKS)
    emit("fig7b_pagerank_web", report)

    by = {r.label: r for r in rows}
    best = min(rows, key=lambda r: r.total_after_blocks(BLOCKS))
    assert best.label.startswith("ADWISE")
    assert (best.total_after_blocks(BLOCKS)
            < by["HDRF"].total_after_blocks(BLOCKS))
    assert (best.total_after_blocks(BLOCKS)
            < by["DBH"].total_after_blocks(BLOCKS))
    # On the strongly clustered Web graph the replication improvement over
    # HDRF is substantial (paper: 12-25%).
    sweep = adwise_rows(rows)
    improvement = 1 - sweep[-1].replication_degree / by["HDRF"].replication_degree
    assert improvement > 0.05
    # More partitioning latency -> larger windows -> better quality.
    assert sweep[-1].replication_degree <= sweep[0].replication_degree
