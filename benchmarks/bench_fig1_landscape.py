"""Fig. 1 reproduction: the partitioning latency/quality landscape.

Fig. 1 positions the algorithm families: hashing strategies at minimal
latency and minimal quality, greedy/degree-aware single-edge streaming in
the middle, and ADWISE spanning a *controllable* region up and to the
right.  This bench runs every implemented strategy on the Brain analogue
and prints (partitioning latency, replication degree) pairs; the shape
assertions check the orderings the figure encodes.
"""

from _common import emit, single_edge_latency_ms, stream_factory

from repro.bench.harness import ExperimentConfig, replication_sweep
from repro.bench.reporting import format_table
from repro.bench.workloads import BRAIN, adwise_factory, baseline_factories
from repro.partitioning.jabeja import JaBeJaVCPartitioner
from repro.partitioning.ne import NEPartitioner
from repro.partitioning.powerlyra import PowerLyraPartitioner


def run_landscape():
    factories = baseline_factories()
    configs = [ExperimentConfig(name, factories[name])
               for name in ("Hash", "Grid", "DBH", "Greedy", "HDRF")]
    configs.append(ExperimentConfig(
        "PowerLyra",
        lambda parts, clock: PowerLyraPartitioner(parts, clock=clock)))
    base = single_edge_latency_ms(BRAIN)
    for mult in (2, 8, 32):
        configs.append(ExperimentConfig(
            f"ADWISE {mult}x",
            adwise_factory(base * mult, use_clustering=True,
                           max_window=256)))
    # The super-linear comparators at the right edge of the figure.
    configs.append(ExperimentConfig(
        "JaBeJa-VC",
        lambda parts, clock: JaBeJaVCPartitioner(parts, clock=clock,
                                                 rounds=5)))
    configs.append(ExperimentConfig(
        "NE",
        lambda parts, clock: NEPartitioner(parts, clock=clock)))
    return replication_sweep(stream_factory(BRAIN), configs, enforce_balance=False)


def test_fig1_landscape(benchmark):
    rows = benchmark.pedantic(run_landscape, rounds=1, iterations=1)
    table = format_table(
        ["strategy", "part_ms", "repl_degree", "imbalance"],
        [[r.label, r.partitioning_ms, r.replication_degree, r.imbalance]
         for r in rows],
        title="Fig. 1 analogue: latency vs quality landscape (Brain)")
    emit("fig1_landscape", table)

    by = {r.label: r for r in rows}
    # Quality ordering of the families (lower replication = better).
    assert by["HDRF"].replication_degree < by["Hash"].replication_degree
    assert by["DBH"].replication_degree < by["Hash"].replication_degree
    assert (by["ADWISE 32x"].replication_degree
            < by["HDRF"].replication_degree)
    # Latency ordering: hashing cheapest, ADWISE most expensive.
    assert by["Hash"].partitioning_ms < by["HDRF"].partitioning_ms
    assert by["HDRF"].partitioning_ms < by["ADWISE 32x"].partitioning_ms
    # The ADWISE region is controllable: more latency, more quality.
    assert (by["ADWISE 2x"].partitioning_ms
            < by["ADWISE 8x"].partitioning_ms
            < by["ADWISE 32x"].partitioning_ms)
    assert (by["ADWISE 32x"].replication_degree
            <= by["ADWISE 2x"].replication_degree)
    # Super-linear comparators sit to the right: NE delivers the best
    # quality of all streaming-start strategies at all-edge cost, and
    # JaBeJa-VC clearly improves on its hash starting point.
    assert by["NE"].replication_degree < by["HDRF"].replication_degree
    assert by["NE"].partitioning_ms > by["HDRF"].partitioning_ms
    assert (by["JaBeJa-VC"].replication_degree
            < by["Hash"].replication_degree)
    assert by["JaBeJa-VC"].partitioning_ms > by["Hash"].partitioning_ms
