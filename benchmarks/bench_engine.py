"""Engine-throughput benchmark: dense (CSR/numpy) vs object superstep loop.

Runs the engine's two execution backends over the same power-law graph
and placement — PageRank (full-frontier, combiner-heavy) and connected
components (shrinking frontier) — and reports wall-clock vertices/sec and
edges/sec per superstep for both, the dense/object speedup, and a hard
parity check (supersteps, message counts, convergence, aggregates and
states must agree; PageRank states to float tolerance).

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py              # full
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke \
        --check --out bench_engine_smoke.json                     # CI gate

The full workload is the acceptance setup: 100-iteration PageRank on a
50k-vertex Barabási–Albert graph, where dense mode must be >= 5x object
mode edges/sec.  The smoke variant (CI) shrinks the graph and gates
PageRank at >= 3x.  ``tools/check_bench_regression.py`` diffs the emitted
JSON against the committed baseline ``benchmarks/BENCH_engine.json``.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.engine.algorithms import ConnectedComponents, PageRank  # noqa: E402
from repro.engine.placement import Placement                      # noqa: E402
from repro.engine.runtime import Engine                           # noqa: E402
from repro.graph.generators import barabasi_albert_graph          # noqa: E402

#: Paper setup: k = 32 partitions on 8 machines.
NUM_PARTITIONS = 32
NUM_MACHINES = 8

#: Minimum dense/object speedup per workload.  PageRank's full gate is
#: the acceptance bar (5x on the 50k-vertex graph); the smoke gate is the
#: CI floor on the small graph, where numpy's fixed per-superstep
#: overhead weighs more.  Components converges in a handful of
#: supersteps, so its gate is a sanity floor, not a headline.
SMOKE_GATES = {"PageRank": 3.0, "Components": 1.2}
FULL_GATES = {"PageRank": 5.0, "Components": 1.2}


def build_workload(smoke: bool):
    if smoke:
        name, n, m, iterations = "engine-powerlaw-smoke", 2500, 4, 20
    else:
        name, n, m, iterations = "engine-powerlaw", 50_000, 4, 100
    graph = barabasi_albert_graph(n=n, m=m, seed=3)
    assignments = {e: hash((e.u, e.v)) % NUM_PARTITIONS
                   for e in graph.edges()}
    placement = Placement(assignments,
                          partitions=list(range(NUM_PARTITIONS)),
                          num_machines=NUM_MACHINES)
    return name, graph, placement, iterations


def algorithms(iterations: int):
    """(name, program factory, max_supersteps) per benchmarked workload."""
    return [
        ("PageRank", lambda: PageRank(iterations=iterations),
         iterations + 2),
        ("Components", lambda: ConnectedComponents(), 200),
    ]


def measure(graph, placement, mode, factory, max_supersteps, repeats):
    """Best-of-``repeats`` wall-clock run; returns (report, seconds).

    Engine construction (adjacency/CSR snapshot) is excluded: it is a
    once-per-graph cost, while the loop under test is per-run.
    """
    engine = Engine(graph, placement, mode=mode)
    if mode == "dense":
        engine.csr  # force the one-time CSR build outside the timer
    best_report, best_time = None, float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        report = engine.run(factory(), max_supersteps=max_supersteps)
        elapsed = time.perf_counter() - start
        if elapsed < best_time:
            best_report, best_time = report, elapsed
    return best_report, best_time


def reports_match(obj, dense) -> bool:
    if (obj.supersteps != dense.supersteps
            or obj.messages_sent != dense.messages_sent
            or obj.converged != dense.converged
            or obj.aggregates != dense.aggregates
            or set(obj.states) != set(dense.states)):
        return False
    for vertex, expected in obj.states.items():
        got = dense.states[vertex]
        if isinstance(expected, float):
            if not math.isclose(got, expected, rel_tol=1e-9, abs_tol=1e-12):
                return False
        elif got != expected:
            return False
    return True


def run(smoke: bool, repeats: int):
    workload, graph, placement, iterations = build_workload(smoke)
    num_vertices, num_edges = graph.num_vertices, graph.num_edges
    rows = []
    for name, factory, max_supersteps in algorithms(iterations):
        obj, obj_s = measure(graph, placement, "object", factory,
                             max_supersteps, repeats)
        dense, dense_s = measure(graph, placement, "dense", factory,
                                 max_supersteps, repeats)
        # Throughput: edge traversals (== messages) and vertex computations
        # per wall-clock second, per backend.
        rows.append({
            "algorithm": name,
            "supersteps": obj.supersteps,
            "messages": obj.messages_sent,
            "legacy_eps": obj.messages_sent / obj_s,
            "fast_eps": dense.messages_sent / dense_s,
            "legacy_vps": num_vertices * obj.supersteps / obj_s,
            "fast_vps": num_vertices * dense.supersteps / dense_s,
            "speedup": obj_s / dense_s,
            "parity": reports_match(obj, dense),
        })
    return {
        "workload": workload,
        "smoke": smoke,
        "num_vertices": num_vertices,
        "num_edges": num_edges,
        "iterations": iterations,
        "gates": dict(SMOKE_GATES if smoke else FULL_GATES),
        "results": rows,
    }


def format_report(report) -> str:
    lines = [
        f"Engine backend benchmark — {report['workload']} "
        f"({report['num_vertices']} vertices, {report['num_edges']} edges, "
        f"{report['iterations']}-iteration PageRank)",
        f"{'algorithm':<12} {'object e/s':>12} {'dense e/s':>12} "
        f"{'object v/s':>12} {'dense v/s':>12} {'speedup':>8} {'parity':>7}",
    ]
    for row in report["results"]:
        lines.append(
            f"{row['algorithm']:<12} {row['legacy_eps']:>12.0f} "
            f"{row['fast_eps']:>12.0f} {row['legacy_vps']:>12.0f} "
            f"{row['fast_vps']:>12.0f} {row['speedup']:>7.2f}x "
            f"{'ok' if row['parity'] else 'FAIL':>7}")
    return "\n".join(lines)


def check(report) -> list:
    """Gate violations (empty list == pass)."""
    gates = report["gates"]
    problems = []
    for row in report["results"]:
        if not row["parity"]:
            problems.append(f"{row['algorithm']}: dense/object parity broken")
        floor = gates.get(row["algorithm"])
        if floor is not None and row["speedup"] < floor:
            problems.append(
                f"{row['algorithm']}: speedup {row['speedup']:.2f}x "
                f"below gate {floor:.2f}x")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small graph + relaxed gates (CI variant)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if a speedup gate or parity fails")
    parser.add_argument("--repeats", type=int, default=1,
                        help="wall-clock repeats per configuration (best-of)")
    parser.add_argument("--out", help="write the report as JSON to this path")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    report = run(smoke=args.smoke, repeats=args.repeats)
    print(format_report(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"\nwrote {args.out}")

    problems = check(report)
    if problems:
        print("\nGATE FAILURES:")
        for problem in problems:
            print(f"  - {problem}")
    if args.check and problems:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
