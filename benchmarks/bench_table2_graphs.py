"""Table II reproduction: the evaluation graph corpus.

The paper characterises its three graphs by |V|, |E| and the clustering
coefficient ĉ: Orkut (social, ĉ=0.04), Brain (biological, ĉ=0.51), Web
(web, ĉ=0.82).  This bench builds the scaled analogues and verifies they
land in the same clustering bands with the same ordering (the property the
paper's analysis keys on), printing the corpus table.
"""

from _common import emit

from repro.bench.workloads import ORKUT, PAPER_GRAPHS, WEB
from repro.graph.stats import summarize


def build_corpus_table():
    summaries = []
    for key in ("orkut", "brain", "web"):
        spec = PAPER_GRAPHS[key]
        summaries.append(summarize(spec.name, spec.build(),
                                   clustering_sample=800, seed=1))
    return summaries


def test_table2_graph_corpus(benchmark):
    summaries = benchmark.pedantic(build_corpus_table, rounds=1, iterations=1)
    header = (f"{'name':<12} {'|V|':>10} {'|E|':>12} {'c-hat':>8} "
              f"{'maxdeg':>8} {'skew':>8}")
    lines = ["Table II analogue: evaluation graphs (scaled)",
             "=" * 46, header, "-" * len(header)]
    lines += [s.row() for s in summaries]
    emit("table2_graphs", "\n".join(lines))

    by_name = {s.name: s for s in summaries}
    # Clustering bands and ordering must match the paper's corpus.
    assert by_name["Orkut"].clustering < 0.15
    assert 0.25 < by_name["Brain"].clustering < 0.7
    assert by_name["Web"].clustering > 0.7
    assert (by_name["Orkut"].clustering < by_name["Brain"].clustering
            < by_name["Web"].clustering)
    # Degree skew: strongly heavy-tailed for the social and web analogues;
    # the Brain analogue (like real cortical networks) is flatter but still
    # right-skewed from its hub overlay.
    assert by_name["Orkut"].degree_skew > 2.0
    assert by_name["Web"].degree_skew > 2.0
    assert by_name["Brain"].degree_skew > 0.2
    for s in summaries:
        assert s.num_edges > 10_000
