"""Ablation: fixed window sizes vs the adaptive window policy.

Demonstrates the window-size/quality trade-off directly (the mechanism
behind Figs. 7g-i) and shows the adaptive policy lands at a quality level
comparable to the best fixed window that fits the same latency budget —
without knowing the right window size in advance.
"""

from _common import emit, stream_factory

from repro.bench.harness import ExperimentConfig, replication_sweep
from repro.bench.reporting import format_table
from repro.bench.workloads import BRAIN, adwise_factory

FIXED_SIZES = (1, 4, 16, 64)


def run_experiment():
    configs = [
        ExperimentConfig(f"fixed w={w}", adwise_factory(
            None, use_clustering=True, fixed_window=w))
        for w in FIXED_SIZES
    ]
    configs.append(ExperimentConfig("adaptive", adwise_factory(
        None, use_clustering=True, max_window=64)))
    return replication_sweep(stream_factory(BRAIN), configs, enforce_balance=False)


def test_ablation_window_policy(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["variant", "part_ms", "repl_degree", "imbalance"],
        [[r.label, r.partitioning_ms, r.replication_degree, r.imbalance]
         for r in rows],
        title="Ablation: window policy on Brain")
    emit("ablation_window", table)

    by = {r.label: r for r in rows}
    # Larger fixed windows give better quality at higher latency.
    assert (by["fixed w=64"].replication_degree
            < by["fixed w=1"].replication_degree)
    assert (by["fixed w=64"].partitioning_ms
            > by["fixed w=1"].partitioning_ms)
    # The adaptive policy beats every fixed window that costs no more
    # latency than it spent (it pays for its early small-window phase, so
    # it cannot match a from-the-start large window at that window's
    # higher price — the point is it finds the trade-off on its own).
    adaptive = by["adaptive"]
    for w in FIXED_SIZES:
        fixed = by[f"fixed w={w}"]
        if fixed.partitioning_ms <= adaptive.partitioning_ms * 1.05:
            assert (adaptive.replication_degree
                    <= fixed.replication_degree * 1.02), (w, fixed)
