"""Fig. 7e reproduction: graph coloring on Web — stacked total latency.

The paper executes the PowerGraph greedy coloring algorithm on the Web
graph in blocks of 50 iterations, reporting that ADWISE at L = 800s cuts
total latency by 9% vs HDRF and 47% vs DBH after 300 iterations, and that
even a single 50-iteration block already favours ADWISE slightly over HDRF.
"""

from _common import adwise_rows, emit, standard_configs, stream_factory

from repro.bench.harness import stacked_latency_experiment
from repro.bench.reporting import format_stacked_rows, summarize_winner
from repro.bench.workloads import WEB

BLOCKS = 6  # 6 x 50 = 300 iterations, as in the paper


def run_experiment():
    graph = WEB.build()
    configs = standard_configs(WEB)
    return stacked_latency_experiment(
        graph, stream_factory(WEB), configs,
        workload="coloring", block_iterations=50, num_blocks=BLOCKS,
        enforce_balance=False)


def test_fig7e_coloring_web(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = format_stacked_rows(
        rows, title="Fig. 7e: graph coloring on Web (50-iteration blocks)",
        num_blocks=BLOCKS)
    report += "\n" + summarize_winner(rows, BLOCKS)
    emit("fig7e_coloring_web", report)

    by = {r.label: r for r in rows}
    sweep = adwise_rows(rows)
    best_adwise = min(sweep, key=lambda r: r.total_after_blocks(BLOCKS))
    # After 300 iterations ADWISE wins against both baselines.
    assert (best_adwise.total_after_blocks(BLOCKS)
            < by["HDRF"].total_after_blocks(BLOCKS))
    assert (best_adwise.total_after_blocks(BLOCKS)
            < by["DBH"].total_after_blocks(BLOCKS))
    # The win over HDRF grows with more processing blocks.
    margin_1 = (by["HDRF"].total_after_blocks(1)
                - best_adwise.total_after_blocks(1))
    margin_6 = (by["HDRF"].total_after_blocks(BLOCKS)
                - best_adwise.total_after_blocks(BLOCKS))
    assert margin_6 > margin_1
