"""Fig. 7g reproduction: replication degree vs partitioning latency, Brain.

The paper plots the replication degree achieved by DBH, HDRF and ADWISE
at increasing partitioning latencies on Brain: ADWISE reduces replication
degree by up to 29% vs HDRF and up to 46% vs DBH as latency grows.
"""

from _common import adwise_rows, emit, standard_configs, stream_factory

from repro.bench.harness import replication_sweep
from repro.bench.reporting import format_table
from repro.bench.workloads import BRAIN


def run_experiment():
    configs = standard_configs(BRAIN, multipliers=(2, 4, 8, 16, 32))
    return replication_sweep(stream_factory(BRAIN), configs, enforce_balance=False)


def test_fig7g_replication_brain(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["config", "part_ms", "repl_degree", "imbalance"],
        [[r.label, r.partitioning_ms, r.replication_degree, r.imbalance]
         for r in rows],
        title="Fig. 7g: replication degree on Brain")
    emit("fig7g_replication_brain", table)

    by = {r.label: r for r in rows}
    sweep = adwise_rows(rows)
    best = min(r.replication_degree for r in sweep)
    # ADWISE's best quality clearly beats both baselines.
    hdrf_gain = 1 - best / by["HDRF"].replication_degree
    dbh_gain = 1 - best / by["DBH"].replication_degree
    assert hdrf_gain > 0.08, f"vs HDRF only {hdrf_gain:.1%}"
    assert dbh_gain > 0.12, f"vs DBH only {dbh_gain:.1%}"
    # More latency, better quality (noisy-monotone).
    for earlier, later in zip(sweep, sweep[1:]):
        assert later.replication_degree <= earlier.replication_degree * 1.05
    # Baseline ordering: HDRF beats DBH on quality.
    assert by["HDRF"].replication_degree < by["DBH"].replication_degree
