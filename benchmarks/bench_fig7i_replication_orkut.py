"""Fig. 7i reproduction: replication degree vs partitioning latency, Orkut.

Orkut's very low clustering coefficient leaves little stream locality to
exploit, so replication degree stays comparatively high for ALL strategies
and ADWISE's margin is small (paper: up to 4% vs HDRF, 7% vs DBH) — yet
still positive.
"""

from _common import adwise_rows, emit, standard_configs, stream_factory

from repro.bench.harness import replication_sweep
from repro.bench.reporting import format_table
from repro.bench.workloads import BRAIN, ORKUT


def run_experiment():
    configs = standard_configs(ORKUT, multipliers=(2, 4, 8, 16, 32))
    return replication_sweep(stream_factory(ORKUT), configs, enforce_balance=False)


def test_fig7i_replication_orkut(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["config", "part_ms", "repl_degree", "imbalance"],
        [[r.label, r.partitioning_ms, r.replication_degree, r.imbalance]
         for r in rows],
        title="Fig. 7i: replication degree on Orkut")
    emit("fig7i_replication_orkut", table)

    by = {r.label: r for r in rows}
    sweep = adwise_rows(rows)
    best = min(r.replication_degree for r in sweep)
    # ADWISE still (slightly) improves on both baselines.
    assert best <= by["HDRF"].replication_degree
    assert best < by["DBH"].replication_degree


def test_fig7i_orkut_margin_smaller_than_brain(benchmark):
    """Cross-figure shape: the ADWISE-vs-HDRF margin on the weakly
    clustered Orkut graph is smaller than on the clustered Brain graph."""
    def run_both():
        orkut_rows = replication_sweep(
            stream_factory(ORKUT),
            standard_configs(ORKUT, multipliers=(16,)),
            enforce_balance=False)
        brain_rows = replication_sweep(
            stream_factory(BRAIN),
            standard_configs(BRAIN, multipliers=(16,)),
            enforce_balance=False)
        return orkut_rows, brain_rows

    orkut_rows, brain_rows = benchmark.pedantic(run_both, rounds=1,
                                                iterations=1)

    def margin(rows):
        by = {r.label: r for r in rows}
        adwise = adwise_rows(rows)[-1]
        return 1 - adwise.replication_degree / by["HDRF"].replication_degree

    assert margin(orkut_rows) < margin(brain_rows)
