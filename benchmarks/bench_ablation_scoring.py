"""Ablation: ADWISE scoring-function components (DESIGN.md §7).

The paper motivates three scoring additions over HDRF-style scoring:
adaptive balancing λ(ι, α), the degree-aware window score, and the
clustering score.  This bench isolates two of the switchable components —
the clustering score and λ adaptation — on the clustered Brain analogue.
"""

from _common import emit, single_edge_latency_ms, stream_factory

from repro.bench.harness import ExperimentConfig, replication_sweep
from repro.bench.reporting import format_table
from repro.bench.workloads import BRAIN, adwise_factory


def _configs():
    base = single_edge_latency_ms(BRAIN)
    preference = base * 8
    return [
        ExperimentConfig("full", adwise_factory(
            preference, use_clustering=True, max_window=128)),
        ExperimentConfig("no-clustering", adwise_factory(
            preference, use_clustering=False, max_window=128)),
        ExperimentConfig("fixed-lambda", adwise_factory(
            preference, use_clustering=True, max_window=128,
            adaptive_lambda=False, initial_lambda=1.1)),
    ]


def run_experiment():
    """Run the ablation under both stream orders.

    The λ story is order-dependent: on a locality-rich adjacency stream
    ADWISE's replication+clustering rewards overwhelm a fixed λ = 1.1 and
    the balance constraint collapses, while λ adaptation (which may rise
    to 5) holds it; on a locally shuffled stream both stay balanced and
    adaptation is merely quality-neutral.
    """
    return {
        order: replication_sweep(stream_factory(BRAIN, order=order),
                                 _configs(), enforce_balance=False)
        for order in ("local-shuffle", "adjacency")
    }


def test_ablation_scoring_components(benchmark):
    by_order = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    tables = []
    for order, rows in by_order.items():
        tables.append(format_table(
            ["variant", "part_ms", "repl_degree", "imbalance"],
            [[r.label, r.partitioning_ms, r.replication_degree, r.imbalance]
             for r in rows],
            title=f"Ablation: scoring components on Brain "
                  f"(L = 8x single-edge, {order} stream)"))
    emit("ablation_scoring", "\n\n".join(tables))

    local = {r.label: r for r in by_order["local-shuffle"]}
    adjacency = {r.label: r for r in by_order["adjacency"]}
    # The clustering score must not hurt on a clustered graph.
    assert (local["full"].replication_degree
            <= local["no-clustering"].replication_degree * 1.05)
    # Adaptive lambda keeps the partitions balanced in both regimes...
    assert local["full"].imbalance < 0.05
    assert adjacency["full"].imbalance < 0.05
    # ...whereas HDRF's fixed expert value (1.1) collapses on the
    # locality-rich adjacency stream: ADWISE's replication+clustering
    # rewards overwhelm it and edges pile onto few partitions.  This is
    # the paper's case for adapting lambda at runtime.
    assert adjacency["fixed-lambda"].imbalance > 0.3
    # Where the fixed value happens to stay balanced, adaptation is
    # quality-neutral.
    assert (local["full"].replication_degree
            <= local["fixed-lambda"].replication_degree * 1.05)
