#!/usr/bin/env python
"""Assemble EXPERIMENTS.md from benchmarks/results/*.txt.

Run after ``pytest benchmarks/ --benchmark-only`` so every reproduction
table exists.  The commentary (paper-vs-measured analysis) is maintained
here; the measured tables are embedded verbatim from the results files so
the document always matches the last benchmark run.
"""

from __future__ import annotations

import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS = os.path.join(ROOT, "benchmarks", "results")
OUTPUT = os.path.join(ROOT, "EXPERIMENTS.md")

#: (result file stem, section header, commentary)
SECTIONS = [
    ("table2_graphs", "Table II — evaluation graph corpus", """
**Paper:** Orkut 3.07M/117M ĉ=0.041 (social), Brain 735k/166M ĉ=0.510
(biological), Web 41M/1.15B ĉ=0.816 (web).

**Measured (scaled analogues):** see table. The corpus is scaled ~3-4
orders of magnitude down but preserves exactly what the paper's analysis
keys on: the clustering-coefficient ordering Orkut < Brain < Web with
Orkut in the "weak" band (<0.1), Brain moderate (~0.4), Web strong (>0.9),
plus right-skewed degree distributions (strongly so for Orkut/Web; the
Brain analogue, like real cortical networks, is flatter but carries a hub
overlay so degree-aware scoring stays meaningful). Average degree is kept
high for Brain (~35) because the spotlight effect (Fig. 8) depends on
vertices having many edges per stream chunk, as they do at 226 average
degree in the real Brain graph.

**Verdict: reproduced** (property bands and ordering; absolute sizes
scaled by design).
"""),
    ("fig1_landscape", "Fig. 1 — partitioning latency vs quality landscape", """
**Paper (qualitative):** hashing strategies sit at minimal latency and
worst quality; Greedy/HDRF improve quality at modest cost; ADWISE spans a
*controllable* region toward high latency / high quality; super-linear
algorithms (Ja-Be-Ja-VC, NE, H-move) anchor the far right.

**Measured:** the orderings all hold — Hash worst quality at lowest
latency; HDRF/Greedy in the middle; the three ADWISE rows form a monotone
latency→quality staircase; NE delivers the best replication degree of all
strategies at all-edge cost, with Ja-Be-Ja-VC improving markedly on its
hash starting point at the highest latency in the table. One scale
artifact: Greedy reaches very low replication by sacrificing balance
entirely (imbalance ≈ 1.0) on locality-rich streams — at paper scale the
balance term constrains it; we report imbalance alongside so the
degenerate trade is visible.

**Verdict: reproduced** (all qualitative positions).
"""),
    ("fig7a_pagerank_brain", "Fig. 7a — PageRank on Brain (stacked total latency)", """
**Paper:** ADWISE reduces total latency by up to 18% vs HDRF and 39% vs
DBH; higher processing run-time makes larger partitioning investments
increasingly worthwhile.

**Measured:** the sweet spot lands at an intermediate latency preference
(~4x the single-edge latency — the paper's §IV guideline recommends ~3x),
beating HDRF by ~9-10% and DBH by ~14-15% on total latency after three
100-iteration blocks. The paper's larger margins come from its much larger
replication deltas at cluster scale (its Brain graph has 226 average
degree vs our ~35); the *shape* — ADWISE wins, intermediate L is optimal,
extreme L overshoots — is exactly Fig. 7a's.

**Verdict: shape reproduced** (winner, sweet-spot position, monotone
quality-vs-L trend; margins compressed by scale).
"""),
    ("fig7b_pagerank_web", "Fig. 7b — PageRank on Web", """
**Paper:** ADWISE cuts total latency 16% vs HDRF, 38% vs DBH; already
beneficial in the first 100-iteration block.

**Measured:** ADWISE wins at every block count with a clear sweet spot;
replication improvement vs HDRF exceeds 10% (paper: 12-25%), vs DBH
more than 25%. The Web stream uses the `local-shuffle` order (coarse
locality, fine-grained disorder) — on a perfectly adjacency-ordered
synthetic community graph HDRF is near-optimal already and the window has
nothing to recover, which is a scale/generator artifact, not a paper
contradiction (real crawl orders are locally disordered).

**Verdict: shape reproduced.**
"""),
    ("fig7c_pagerank_orkut", "Fig. 7c — PageRank on Orkut (clustering score off)", """
**Paper:** improvements shrink on the weakly clustered Orkut: up to 11%
total-latency vs HDRF, 29% vs DBH; replication gain only up to 4%.

**Measured:** same compressed margins — ADWISE's best configuration edges
out HDRF by well under 1% total latency with a ~1-2% replication gain,
and clearly beats DBH. The clustering score is disabled exactly as in the
paper. This is the paper's own observation: with little locality in the
stream, window-based reordering has little to exploit.

**Verdict: shape reproduced** (small-but-positive margins, as the paper
reports for this graph).
"""),
    ("fig7d_subgraph_brain", "Fig. 7d — subgraph isomorphism on Brain (cycles 19/15/21)", """
**Paper:** the communication/computation-heavy SI workload shows the
clearest sweet spot (L=281s): 23% vs HDRF, 37% vs DBH; larger L keeps
reducing processing latency but stops paying off in total.

**Measured:** the cycle searches run for real on the BSP engine (walker
messages with bounded fanout and forwarding probability — the same
message-bounding the paper's clique workload uses); the SI cost-model
preset (4x compute, 6x comm weight vs PageRank) encodes its heavier
per-message work. ADWISE's best configuration beats HDRF and DBH, and the
maximal preference is not the winner.

**Verdict: shape reproduced.**
"""),
    ("fig7e_coloring_web", "Fig. 7e — graph coloring on Web (6 x 50 iterations)", """
**Paper:** after 300 iterations ADWISE (L=800s) cuts total latency 9% vs
HDRF and 47% vs DBH; even a single 50-iteration block slightly favours
ADWISE.

**Measured:** ADWISE wins after 300 iterations against both baselines and
its margin over HDRF grows with block count (asserted in the bench),
mirroring the paper's "the more processing, the more partitioning
investment pays" message.

**Verdict: shape reproduced.**
"""),
    ("fig7f_clique_orkut", "Fig. 7f — clique search on Orkut (sizes 3/4/5, P=0.5)", """
**Paper:** minimum total latency at a modest preference (L=83s), 13%
below HDRF; larger preferences still slightly beat HDRF; very large ones
lose to the growing partitioning share.

**Measured:** the random-walker clique search runs for real (ten seed
vertices, ten repetitions — the paper's setup — with forwarding
probability 0.5). On the weakly clustered Orkut analogue the replication
margin is 1-2% (cf. Fig. 7i), so the total-latency win over HDRF is within
a ±1% band rather than 13%; the qualitative ranking (modest L optimal,
maximal L not the winner, DBH clearly beaten) holds.

**Verdict: shape reproduced with compressed margin** (Orkut's margin is
the paper's smallest too; our scale compresses it further).
"""),
    ("fig7g_replication_brain", "Fig. 7g — replication degree on Brain", """
**Paper:** ADWISE reduces replication degree up to 29% vs HDRF and 46% vs
DBH as partitioning latency grows.

**Measured:** monotone (noisy-monotone asserted) quality improvement with
L; at the largest preference ADWISE sits >8% below HDRF (typically
12-14%) and >12% below DBH (typically ~30%). HDRF < DBH ordering holds
throughout.

**Verdict: shape reproduced** (trend + orderings; magnitudes roughly
half the paper's, consistent with the scale-compressed locality).
"""),
    ("fig7h_replication_web", "Fig. 7h — replication degree on Web", """
**Paper:** 12% below HDRF at a small latency budget, 25% at a large one
(41%/51% vs DBH) — gains grow with the window.

**Measured:** the vs-HDRF gain grows with the budget (asserted) and
reaches >8% (typically ~15-20%); vs DBH ADWISE ends >25% ahead. Same
growth-with-budget signature as the paper.

**Verdict: shape reproduced.**
"""),
    ("fig7i_replication_orkut", "Fig. 7i — replication degree on Orkut", """
**Paper:** replication stays high for every strategy (little locality to
exploit); ADWISE's margin is only up to 4% vs HDRF and 7% vs DBH.

**Measured:** identical signature — all strategies cluster at a high
replication level, ADWISE ahead of HDRF by a few percent and of DBH by a
bit more. A cross-figure assertion verifies the Orkut margin is smaller
than the Brain margin, the paper's clustering-coefficient narrative in
one line.

**Verdict: reproduced.**
"""),
    ("fig8_spotlight", "Fig. 8 — spotlight spread sweep on Brain (z=8, k=32)", """
**Paper:** smaller spreads reduce replication degree by up to 76%, for
all tested strategies; prior systems' maximal spread (32) is the worst
setting.

**Measured:** on the adjacency-ordered Brain stream (file order carries
the locality the spotlight preserves) the staircase reproduces for all
three strategies; DBH improves >40% (typically ~60%) from spread 32 to 4,
HDRF and ADWISE by double-digit percentages. The effect needs realistic
density — with few edges per vertex per chunk there is nothing for a
large spread to spray — which is why the Brain analogue keeps a high
average degree (DESIGN.md §5).

**Verdict: shape reproduced** (monotone staircase for all strategies;
peak reduction ~60% vs the paper's 76% at 226 average degree).
"""),
    ("ablation_scoring", "Ablation — scoring components (beyond the paper's figures)", """
Two switchable components isolated on Brain at L = 8x single-edge:
the clustering score does not hurt (and typically helps) on the clustered
graph, and **λ adaptation is load-bearing**: with HDRF's fixed λ=1.1 under
ADWISE's richer replication+clustering rewards, the balance constraint
collapses entirely on locality-rich adjacency streams (imbalance → 1.0)
while the adaptive λ (which may rise to 5) holds balance below 0.05. This
is the concrete behaviour behind the paper's §III-C argument for adapting
λ at runtime.
"""),
    ("ablation_window", "Ablation — fixed windows vs adaptive policy", """
Larger fixed windows buy quality with latency (the Fig. 7g mechanism in
isolation). The adaptive policy beats every fixed window that costs no
more than it spent — i.e. it finds the trade-off without being told the
right window size, which is its entire job; a from-the-start large fixed
window can edge it out on quality only by spending more.
"""),
    ("ablation_lazy", "Ablation — lazy vs eager window traversal", """
At a fixed window of 32, lazy traversal cuts score computations by >30%
(and with them simulated partitioning latency) at near-identical
replication degree — the paper's §III-B promise ("same decisions, fewer
computations") quantified.
"""),
    ("ablation_restream", "Ablation — restreaming (2-pass, exact degrees)", """
A second pass with the full degree table preloaded never hurts and
usually helps both HDRF and ADWISE slightly, at exactly 2x the
partitioning latency — the related-work restreaming idea ([27]) measured
in this codebase.
"""),
    ("window_evolution", "Supplementary — adaptive window evolution trace", """
The §III-A mechanism made visible: with a generous latency preference the
controller doubles the window repeatedly (every observed size is a power
of two) up to the configured cap; with an infeasibly tight preference it
pins the window at w=1 — the paper's "L too tight degenerates to
single-edge streaming" boundary case.
"""),
]

HEADER = """# EXPERIMENTS — paper vs. measured

Every table and figure of the ADWISE paper (ICDCS 2018), regenerated by
`pytest benchmarks/ --benchmark-only`. Absolute numbers are not
comparable to the paper's (8-node Xeon cluster, 117M-1.15B-edge graphs vs
scaled synthetic analogues on a simulated cluster — see DESIGN.md §5 for
every substitution); what is compared is the *shape*: who wins, roughly
by what factor, where crossovers fall. Each bench asserts its shape, so a
reproduction regression fails the suite.

Conventions: `part_ms` is simulated partitioning latency;
`total@Nblk` is partitioning + N processing blocks (stacked bars of
Fig. 7); `repl_degree` is the replication degree (Eq. 1, lower better);
imbalance is `(max−min)/max` (Eq. 2 reports balance as `<0.05` in the
paper — at our scale the hash-family baselines exceed this, see
DESIGN.md §3 note). ADWISE rows are labelled by their latency preference
L, set as multiples of the measured single-edge (HDRF) latency per the
paper's own guideline.

Run environment: pure Python, deterministic SimulatedClock
(1 µs per score computation, 2 µs per assignment), fixed seeds.
"""


def main() -> int:
    missing = []
    parts = [HEADER]
    for stem, title, commentary in SECTIONS:
        path = os.path.join(RESULTS, f"{stem}.txt")
        parts.append(f"\n## {title}\n")
        parts.append(commentary.strip() + "\n")
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                table = handle.read().strip()
            parts.append("```\n" + table + "\n```\n")
        else:
            missing.append(stem)
            parts.append("*(results file missing — run the benchmarks)*\n")
    with open(OUTPUT, "w", encoding="utf-8") as handle:
        handle.write("\n".join(parts))
    print(f"wrote {OUTPUT}")
    if missing:
        print(f"missing results: {', '.join(missing)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
