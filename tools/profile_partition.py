"""cProfile any partitioner over a synthetic workload: top-N hot spots.

The perf work on the window engine (DESIGN.md §9) lives or dies by where
the per-edge time actually goes, so this tool makes the check a one-liner
instead of an ad-hoc script: build a workload, run one partitioner under
cProfile, print the top functions by cumulative and internal time.

Usage::

    PYTHONPATH=src python tools/profile_partition.py \
        --algorithm adwise --fast --window 64 --top 15
    PYTHONPATH=src python tools/profile_partition.py \
        --algorithm adwise --fast --window-backend object   # PR 1-style path
    PYTHONPATH=src python tools/profile_partition.py \
        --algorithm hdrf --n 2000 --m 8 --partitions 16

Used to verify that an optimisation actually moved the hot path (e.g.
that ``score_batch``/``_rescore_slots`` replaced per-edge ``score_all``
calls at the top of the ADWISE profile) rather than just the benchmark
number.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
import os
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core.adwise import AdwisePartitioner          # noqa: E402
from repro.graph.generators import barabasi_albert_graph  # noqa: E402
from repro.graph.stream import InMemoryEdgeStream, shuffled  # noqa: E402
from repro.partitioning.dbh import DBHPartitioner         # noqa: E402
from repro.partitioning.greedy import GreedyPartitioner   # noqa: E402
from repro.partitioning.hashing import HashPartitioner    # noqa: E402
from repro.partitioning.hdrf import HDRFPartitioner       # noqa: E402


def build_partitioner(args):
    partitions = range(args.partitions)
    if args.algorithm == "adwise":
        return AdwisePartitioner(
            partitions, fast=args.fast, fixed_window=args.window,
            latency_preference_ms=(None if args.window else
                                   args.latency_preference),
            window_backend=args.window_backend)
    simple = {
        "hdrf": HDRFPartitioner,
        "greedy": GreedyPartitioner,
        "dbh": DBHPartitioner,
        "hash": HashPartitioner,
    }
    return simple[args.algorithm](partitions, fast=args.fast)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--algorithm", default="adwise",
                        choices=["adwise", "hdrf", "greedy", "dbh", "hash"])
    parser.add_argument("--fast", action="store_true",
                        help="array-backed state + batched kernels")
    parser.add_argument("--window-backend", default="auto",
                        choices=["auto", "array", "object"],
                        help="ADWISE window engine (default: auto)")
    parser.add_argument("--kernel", default=None,
                        choices=["auto", "cc", "numba", "numpy"],
                        help="force the array-window kernel backend "
                             "(sets REPRO_KERNEL; default: inherit env)")
    parser.add_argument("--window", type=int, default=64,
                        help="fixed ADWISE window size (0 = adaptive)")
    parser.add_argument("--latency-preference", type=float, default=10.0,
                        help="ADWISE latency preference when adaptive")
    parser.add_argument("--partitions", type=int, default=32)
    parser.add_argument("--n", type=int, default=800,
                        help="power-law graph vertices")
    parser.add_argument("--m", type=int, default=10,
                        help="power-law attachment degree")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--top", type=int, default=20,
                        help="rows per profile table")
    parser.add_argument("--sort", default="tottime",
                        choices=["tottime", "cumulative"],
                        help="primary sort of the profile table")
    parser.add_argument("--trace", default=None, metavar="OUT.json",
                        help="also run with repro.obs spans enabled and "
                             "write a Chrome/Perfetto trace of the run "
                             "to this path")
    args = parser.parse_args(argv)
    if args.window == 0:
        args.window = None
    if args.kernel is not None:
        if args.kernel == "auto":
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = args.kernel
    from repro.core import _kernels
    print(f"kernel backend: {_kernels.resolve_backend_name()}")

    graph = barabasi_albert_graph(n=args.n, m=args.m, seed=args.seed)
    edges = list(shuffled(graph.edges(), seed=args.seed + 2))
    partitioner = build_partitioner(args)
    stream = InMemoryEdgeStream(edges)

    if args.trace:
        from repro import obs
        obs.enable()

    profiler = cProfile.Profile()
    wall = time.perf_counter()
    profiler.enable()
    result = partitioner.partition_stream(stream)
    profiler.disable()
    wall = time.perf_counter() - wall

    if args.trace:
        from repro import obs
        obs.write_chrome_trace(args.trace, obs.tracer().spans())
        print(f"chrome trace written to {args.trace} "
              f"({len(obs.tracer().spans())} spans; load in Perfetto or "
              f"chrome://tracing)")
        obs.disable()

    print(f"{partitioner.name} over {len(edges)} power-law edges "
          f"(n={args.n}, m={args.m}, k={args.partitions}, "
          f"fast={args.fast}, backend={args.window_backend}): "
          f"{wall:.2f}s wall, {len(edges) / wall:,.0f} edges/s")
    print(f"replication_degree={result.replication_degree:.3f} "
          f"imbalance={result.imbalance:.4f} "
          f"score_computations={result.score_computations}")
    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.sort_stats(args.sort).print_stats(args.top)
    print(out.getvalue())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
