"""CI gate: fail if the fast-path benchmark regressed against the baseline.

Compares a freshly produced ``bench_fast_path.py`` JSON report against
the committed baseline ``benchmarks/BENCH_seed.json`` and exits non-zero
if any algorithm's fast/legacy *speedup* dropped by more than the
tolerance (default 20%).

Speedup ratios, not raw edges/sec, are compared: absolute throughput is
machine-dependent (the committed baseline was produced on one box, CI
runs on another), while the fast/legacy ratio is measured on the same
machine in the same process and is therefore portable.  Raw throughput
deltas are reported as information only.

This checker is CI's single perf gate, combining two floors per
algorithm:

* the **absolute gate** embedded in the baseline report (the same
  floors ``bench_fast_path.py --check`` enforces) — dropping below it
  always fails;
* the **relative floor** (baseline speedup minus tolerance) — because
  even the ratio has some cross-machine spread (numpy-vs-interpreter
  cost differs by CPU and numpy build), a drop beyond tolerance that
  still clears the absolute gate is downgraded to a *warning*.

Usage::

    PYTHONPATH=src python benchmarks/bench_fast_path.py --smoke \
        --out bench_smoke.json
    python tools/check_bench_regression.py --fresh bench_smoke.json

See DESIGN.md ("Benchmark regression workflow") for when and how to
refresh the baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "benchmarks", "BENCH_seed.json")

#: A fresh speedup below ``(1 - TOLERANCE) * baseline speedup`` fails.
TOLERANCE = 0.20


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def by_algorithm(report: dict) -> dict:
    return {row["algorithm"]: row for row in report["results"]}


def compare(baseline: dict, fresh: dict, tolerance: float) -> tuple:
    """Return ``(problems, warnings)``; empty ``problems`` == pass."""
    problems = []
    warnings = []
    if baseline.get("workload") != fresh.get("workload"):
        problems.append(
            f"workload mismatch: baseline {baseline.get('workload')!r} "
            f"vs fresh {fresh.get('workload')!r} — compare like with like")
        return problems, warnings
    gates = baseline.get("gates", {})
    base_rows = by_algorithm(baseline)
    fresh_rows = by_algorithm(fresh)
    for name, base_row in base_rows.items():
        fresh_row = fresh_rows.get(name)
        if fresh_row is None:
            problems.append(f"{name}: missing from fresh report")
            continue
        if not fresh_row.get("parity", False):
            problems.append(f"{name}: fast/legacy parity broken")
        gate = gates.get(name)
        if gate is not None and fresh_row["speedup"] < gate:
            problems.append(
                f"{name}: speedup {fresh_row['speedup']:.2f}x below the "
                f"absolute gate {gate:.2f}x")
            continue
        floor = base_row["speedup"] * (1.0 - tolerance)
        if fresh_row["speedup"] < floor:
            message = (
                f"{name}: speedup regressed {base_row['speedup']:.2f}x -> "
                f"{fresh_row['speedup']:.2f}x (floor {floor:.2f}x)")
            if gate is not None:
                warnings.append(
                    f"{message} — still above the absolute gate "
                    f"{gate:.2f}x, treating as machine variance")
            else:
                problems.append(message)
    return problems, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True,
                        help="JSON report from a fresh bench_fast_path run")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"committed baseline (default: {DEFAULT_BASELINE})")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE,
                        help="allowed fractional speedup drop (default 0.20)")
    args = parser.parse_args(argv)

    try:
        baseline = load(args.baseline)
        fresh = load(args.fresh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read report: {exc}", file=sys.stderr)
        return 2

    print(f"baseline: {args.baseline} ({baseline['workload']})")
    print(f"fresh:    {args.fresh} ({fresh['workload']})")
    base_rows = by_algorithm(baseline)
    for name, row in by_algorithm(fresh).items():
        base = base_rows.get(name)
        base_speedup = f"{base['speedup']:.2f}x" if base else "n/a"
        print(f"  {name:<18} speedup {row['speedup']:.2f}x "
              f"(baseline {base_speedup}), fast {row['fast_eps']:.0f} e/s")

    problems, warnings = compare(baseline, fresh, args.tolerance)
    if warnings:
        print("\nWARNINGS:")
        for warning in warnings:
            print(f"  - {warning}")
    if problems:
        print("\nREGRESSIONS:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("\nno regression: all speedups within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
