"""Partitioning sessions: the supported programmatic entry point.

A :class:`PartitionSession` wraps any incremental
:class:`~repro.partitioning.base.StreamingPartitioner` behind a small
stable surface — ``ingest / query / stats / snapshot / finalize`` — so
callers (applications, the ``repro.service`` daemon, the CLI client)
never construct partitioners, windows or clocks by hand::

    from repro import open_session

    session = open_session(algorithm="adwise", partitions=8,
                           latency_preference_ms=50.0)
    session.ingest([(0, 1), (1, 2), (0, 2)])
    session.stats().replication_degree
    result = session.finalize()

Sessions are resumable: :meth:`PartitionSession.snapshot` captures the
live mid-stream state — vertex cache, emitted assignments, pending and
windowed edges, adaptive-controller and balancer state, the simulated
clock — as a picklable :class:`SessionSnapshot`, and
:func:`restore_session` rebuilds a session that continues **bit-
identically** to an uninterrupted run (enforced by
``tests/test_session.py``).  This is the graceful-shutdown/restart
mechanism of the service daemon.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.graph.graph import Edge
from repro.partitioning.base import Assignment, PartitionResult
from repro.partitioning.parallel import partitioner_registry
from repro.partitioning.state import StateSnapshot
from repro.simtime import Clock, SimulatedClock

#: Edge-like inputs accepted by :meth:`PartitionSession.ingest`.
EdgeLike = Union[Edge, Tuple[int, int]]


class SessionError(ValueError):
    """Invalid session operation (unknown algorithm, closed session…)."""


@dataclass
class SessionStats:
    """Point-in-time observability snapshot of one session.

    ``edges_ingested`` counts edges accepted by :meth:`ingest`;
    ``assignments_emitted`` counts decisions already made.  The gap
    (``buffered_edges``) is stream the window is still holding — for
    single-edge algorithms it is always zero.
    """

    algorithm: str
    num_partitions: int
    edges_ingested: int
    assignments_emitted: int
    buffered_edges: int
    replication_degree: float
    imbalance: float
    window_size: int
    latency_ms: float

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "num_partitions": self.num_partitions,
            "edges_ingested": self.edges_ingested,
            "assignments_emitted": self.assignments_emitted,
            "buffered_edges": self.buffered_edges,
            "replication_degree": self.replication_degree,
            "imbalance": self.imbalance,
            "window_size": self.window_size,
            "latency_ms": self.latency_ms,
        }


@dataclass
class SessionSnapshot:
    """Picklable image of a live session (see module docstring).

    ``algorithm_state`` holds the window-algorithm extras (window image,
    pending edges, controller/balancer state) and is ``None`` for
    single-edge algorithms.  Built on the PR-2 :class:`StateSnapshot`
    for the vertex cache.
    """

    algorithm: str
    partitions: List[int]
    knobs: Dict[str, object]
    expected_edges: int
    state: StateSnapshot
    assignments: List[Tuple[int, int, int]]
    clock: Dict[str, float]
    start_ms: float
    edges_ingested: int
    algorithm_state: Optional[dict] = None
    version: int = 1
    extras: Dict[str, object] = field(default_factory=dict)
    #: Ingest-batch sequence high-water mark at snapshot time — the
    #: service daemon's WAL recovery replays only records newer than
    #: this (read back with ``getattr(snapshot, "seq", 0)`` so
    #: pre-WAL pickles stay loadable).
    seq: int = 0

    def save(self, path: str) -> None:
        """Persist to ``path`` (pickle — floats round-trip bit-exactly)."""
        with open(path, "wb") as handle:
            pickle.dump(self, handle, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path: str) -> "SessionSnapshot":
        with open(path, "rb") as handle:
            snapshot = pickle.load(handle)
        if not isinstance(snapshot, cls):
            raise SessionError(f"{path} does not contain a SessionSnapshot")
        return snapshot


def _coerce_partitions(partitions: Union[int, Sequence[int]]) -> List[int]:
    if isinstance(partitions, int):
        if partitions < 1:
            raise SessionError("partitions must be >= 1")
        return list(range(partitions))
    ids = list(partitions)
    if not ids:
        raise SessionError("at least one partition required")
    return ids


def _build_partitioner(algorithm: str, partition_ids: List[int],
                       clock: Clock, knobs: Dict[str, object]):
    registry = partitioner_registry()
    try:
        cls = registry[algorithm]
    except KeyError:
        raise SessionError(
            f"unknown algorithm {algorithm!r} "
            f"(known: {', '.join(sorted(registry))})") from None
    if not cls.supports_incremental:
        raise SessionError(
            f"{algorithm} is an offline algorithm and cannot serve an "
            f"incremental session; use partition_stream")
    try:
        return cls(partition_ids, clock=clock, **knobs)
    except TypeError as exc:
        raise SessionError(f"bad knobs for {algorithm}: {exc}") from None


def open_session(algorithm: str = "adwise",
                 partitions: Union[int, Sequence[int]] = 32,
                 expected_edges: int = 0,
                 clock: Optional[Clock] = None,
                 **knobs) -> "PartitionSession":
    """Open a live partitioning session.

    Parameters
    ----------
    algorithm:
        Any incremental algorithm from the shared registry (the CLI's
        ``--algorithm`` choices minus the offline ones): ``adwise``,
        ``hdrf``, ``dbh``, ``greedy``, ``hash``, ``grid``, ``powerlyra``.
    partitions:
        Partition count ``k`` (ids ``0..k-1``) or an explicit id list
        (a spotlight spread).
    expected_edges:
        Stream-length hint for ADWISE's latency budget (C2); ``0`` means
        unbounded — the right setting for a continuous stream.
    clock:
        Latency accounting clock; defaults to a deterministic
        :class:`SimulatedClock` (required for snapshot support).
    knobs:
        Forwarded to the algorithm constructor (``fast=True``,
        ``latency_preference_ms=...``, ``fixed_window=...``, ...).
    """
    partition_ids = _coerce_partitions(partitions)
    session_clock = clock if clock is not None else SimulatedClock()
    partitioner = _build_partitioner(algorithm, partition_ids,
                                     session_clock, dict(knobs))
    return PartitionSession(partitioner, algorithm=algorithm,
                            knobs=dict(knobs),
                            expected_edges=expected_edges)


class PartitionSession:
    """A live, incrementally-fed partitioning run (see module docstring).

    Built by :func:`open_session` / :func:`restore_session`; constructing
    one directly requires a partitioner whose stream has not started.
    """

    def __init__(self, partitioner, algorithm: str,
                 knobs: Dict[str, object],
                 expected_edges: int = 0,
                 _restored: bool = False) -> None:
        self.partitioner = partitioner
        self.algorithm = algorithm
        self.knobs = knobs
        self.expected_edges = expected_edges
        self.closed = False
        self.edges_ingested = 0
        self._map: Dict[Edge, int] = {}
        if not _restored:
            partitioner.begin(total_edges=expected_edges)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, edges: Iterable[EdgeLike]) -> List[Assignment]:
        """Feed a batch of edges; return the assignments emitted.

        Accepts :class:`Edge` objects or plain ``(u, v)`` pairs.  With a
        window-based algorithm the returned decisions may cover earlier
        edges, and some input edges stay buffered until the window can
        admit them (or :meth:`finalize` drains it).
        """
        self._require_open()
        batch = [edge if isinstance(edge, Edge) else Edge(*edge)
                 for edge in edges]
        self.edges_ingested += len(batch)
        emitted = self.partitioner.ingest(batch)
        for assignment in emitted:
            self._map[assignment.edge] = assignment.partition
        return emitted

    # ------------------------------------------------------------------
    # Online queries
    # ------------------------------------------------------------------
    def query_vertex(self, vertex: int) -> List[int]:
        """Replica set of ``vertex`` (sorted partition ids; empty if the
        vertex has not been part of any assigned edge yet)."""
        return sorted(self.partitioner.state.replicas(vertex))

    def query_edge(self, u: int, v: int) -> Optional[int]:
        """Partition the edge ``(u, v)`` was assigned to, else ``None``
        (unknown edge, or still buffered in the window)."""
        return self._map.get(Edge(u, v).canonical())

    @property
    def buffered_edges(self) -> int:
        """Edges ingested but not yet assigned (pending + windowed)."""
        pending = getattr(self.partitioner, "_pending", None)
        window = getattr(self.partitioner, "window", None)
        count = len(pending) if pending is not None else 0
        if window is not None:
            count += len(window)
        return count

    def stats(self) -> SessionStats:
        state = self.partitioner.state
        controller = getattr(self.partitioner, "controller", None)
        return SessionStats(
            algorithm=self.algorithm,
            num_partitions=state.num_partitions,
            edges_ingested=self.edges_ingested,
            assignments_emitted=len(self._map),
            buffered_edges=self.buffered_edges,
            replication_degree=state.replication_degree(),
            imbalance=state.imbalance(),
            window_size=(controller.window_size
                         if controller is not None else 0),
            latency_ms=(self.partitioner.clock.now()
                        - self.partitioner._start_ms),
        )

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> SessionSnapshot:
        """Capture the full mid-stream state (see module docstring)."""
        self._require_open()
        partitioner = self.partitioner
        clock = partitioner.clock
        if not isinstance(clock, SimulatedClock):
            raise SessionError(
                "snapshot requires the deterministic SimulatedClock; "
                "wall-clock sessions cannot be resumed bit-identically")
        snapshot = SessionSnapshot(
            algorithm=self.algorithm,
            partitions=list(partitioner.state.partitions),
            knobs=dict(self.knobs),
            expected_edges=self.expected_edges,
            state=partitioner.state.snapshot(),
            assignments=[(e.u, e.v, p) for e, p in self._map.items()],
            clock={
                "score_cost_ms": clock.score_cost_ms,
                "assignment_cost_ms": clock.assignment_cost_ms,
                "score_computations": clock.score_computations,
                "assignments": clock.assignments,
                "advanced_ms": clock._advanced_ms,
            },
            start_ms=partitioner._start_ms,
            edges_ingested=self.edges_ingested,
        )
        window = getattr(partitioner, "window", None)
        if window is not None:
            snapshot.algorithm_state = self._window_algorithm_state()
        return snapshot

    def _window_algorithm_state(self) -> dict:
        """ADWISE extras: window image + pending + controller/balancer."""
        from repro.core.adaptive import AdaptiveWindowController
        from repro.core.window import EdgeWindow

        partitioner = self.partitioner
        controller = partitioner.controller
        return {
            "window_kind": ("object" if isinstance(partitioner.window,
                                                   EdgeWindow)
                            else "array"),
            "window_image": partitioner.window.to_image(),
            "pending": [(e.u, e.v) for e in partitioner._pending],
            "controller": (controller.to_state()
                           if isinstance(controller,
                                         AdaptiveWindowController)
                           else None),
            "balancer_value": (partitioner.scoring.balancer.value
                               if partitioner.scoring.balancer is not None
                               else None),
            "migrate_at": partitioner._migrate_at,
        }

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def finalize(self) -> PartitionResult:
        """Drain buffered work and close the session; returns the same
        :class:`PartitionResult` a batch run would have produced."""
        self._require_open()
        result = self.partitioner.finalize()
        for edge, partition in result.assignments.items():
            self._map[edge] = partition
        self.closed = True
        return result

    def _require_open(self) -> None:
        if self.closed:
            raise SessionError("session already finalized")


def restore_session(snapshot: SessionSnapshot,
                    ) -> PartitionSession:
    """Rebuild a live session from a :class:`SessionSnapshot`.

    The restored session continues bit-identically to the one that was
    snapshot: same future assignments, same adaptive decisions, same
    simulated latency accounting.
    """
    from repro.partitioning.parallel import _state_from_snapshot

    clock = SimulatedClock(
        score_cost_ms=snapshot.clock["score_cost_ms"],
        assignment_cost_ms=snapshot.clock["assignment_cost_ms"])
    clock.score_computations = int(snapshot.clock["score_computations"])
    clock.assignments = int(snapshot.clock["assignments"])
    clock._advanced_ms = snapshot.clock["advanced_ms"]
    partitioner = _build_partitioner(snapshot.algorithm,
                                     list(snapshot.partitions), clock,
                                     dict(snapshot.knobs))
    partitioner.state = _state_from_snapshot(snapshot.state)
    partitioner._streaming = True
    partitioner._start_ms = snapshot.start_ms
    partitioner._assignments = {Edge(u, v): p
                                for u, v, p in snapshot.assignments}
    if snapshot.algorithm_state is not None:
        _restore_window_state(partitioner, snapshot)
    session = PartitionSession(partitioner, algorithm=snapshot.algorithm,
                               knobs=dict(snapshot.knobs),
                               expected_edges=snapshot.expected_edges,
                               _restored=True)
    session.edges_ingested = snapshot.edges_ingested
    session._map = dict(partitioner._assignments)
    return session


def _restore_window_state(partitioner, snapshot: SessionSnapshot) -> None:
    """Rebuild the ADWISE window/controller/balancer from the snapshot."""
    from repro.core.adaptive import (
        AdaptiveWindowController,
        FixedWindowController,
    )
    from repro.core.array_window import ArrayEdgeWindow
    from repro.core.window import EdgeWindow

    algo_state = snapshot.algorithm_state
    partitioner.scoring = partitioner._make_scoring(snapshot.expected_edges)
    if (algo_state["balancer_value"] is not None
            and partitioner.scoring.balancer is not None):
        partitioner.scoring.balancer.value = algo_state["balancer_value"]
    window_cls = (EdgeWindow if algo_state["window_kind"] == "object"
                  else ArrayEdgeWindow)
    partitioner.window = window_cls.from_image(
        partitioner.scoring, algo_state["window_image"],
        lazy=partitioner.lazy, epsilon=partitioner.epsilon,
        max_candidates=partitioner.max_candidates)
    if partitioner.fixed_window is not None:
        partitioner.controller = FixedWindowController(
            partitioner.fixed_window)
    else:
        partitioner.controller = AdaptiveWindowController(
            partitioner.latency_preference_ms,
            total_edges=snapshot.expected_edges,
            start_ms=snapshot.start_ms,
            min_window=partitioner.min_window,
            max_window=partitioner.max_window,
        )
        partitioner.controller.restore_state(algo_state["controller"])
    partitioner._pending = [Edge(u, v) for u, v in algo_state["pending"]]
    partitioner._migrate_at = algo_state["migrate_at"]
