"""Command-line interface: partition an edge-list file with any strategy.

Examples::

    adwise partition graph.txt --algorithm adwise --partitions 32 \
        --latency-preference 500
    adwise stats graph.txt
    adwise process graph.txt graph.parts --cluster --backend process
    adwise pipeline graph.txt --algorithm adwise --partitions 8 \
        --workload pagerank --cluster
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.graph.io import read_graph
from repro.graph.stream import FileEdgeStream
from repro.graph.stats import summarize
from repro.partitioning.parallel import partitioner_registry
from repro.simtime import SimulatedClock, WallClock

#: Single source of truth for --algorithm choices, shared with
#: PartitionerSpec so the serial and parallel paths can never drift.
_ALGORITHMS = partitioner_registry()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="adwise",
        description="Streaming vertex-cut graph partitioning (ADWISE repro)")
    sub = parser.add_subparsers(dest="command", required=True)

    part = sub.add_parser("partition", help="partition an edge-list file")
    part.add_argument("path", help="edge-list file (u v per line)")
    part.add_argument("--algorithm", choices=sorted(_ALGORITHMS),
                      default="adwise")
    part.add_argument("--partitions", type=int, default=32,
                      help="number of partitions k")
    part.add_argument("--latency-preference", type=float, default=None,
                      help="ADWISE latency preference L in ms")
    part.add_argument("--no-clustering", action="store_true",
                      help="disable ADWISE's clustering score")
    part.add_argument("--wall-clock", action="store_true",
                      help="measure wall-clock instead of simulated latency")
    part.add_argument("--fast", action="store_true",
                      help="array-backed partition state + batched scoring "
                           "kernels (adwise/hdrf/dbh/greedy; identical "
                           "output, higher throughput)")
    part.add_argument("--workers", type=int, default=1,
                      help="parallel loading with z partitioner instances "
                           "over byte-offset chunks of the input file "
                           "(paper §III-D); 1 = single-instance streaming")
    part.add_argument("--backend", choices=["process", "simulated"],
                      default=None,
                      help="execution backend for --workers > 1: real OS "
                           "processes (default) or the sequential "
                           "simulator (bit-identical results)")
    part.add_argument("--spread", type=int, default=None,
                      help="partitions each parallel instance may fill "
                           "(default k/z, the spotlight setting; k = "
                           "maximal spread)")
    part.add_argument("--output", default=None,
                      help="write 'u v partition' lines to this file")

    stats = sub.add_parser("stats", help="Table II-style graph summary")
    stats.add_argument("path", help="edge-list file")
    stats.add_argument("--sample", type=int, default=2000,
                       help="vertex sample size for clustering estimate")

    process = sub.add_parser(
        "process",
        help="run a graph algorithm on a partitioned graph "
             "(simulated, or sharded with --cluster)")
    process.add_argument("graph", help="edge-list file")
    process.add_argument("assignments",
                         help="'u v partition' file (see partition "
                              "--output; .gz supported)")
    _add_processing_arguments(process)

    pipeline = sub.add_parser(
        "pipeline",
        help="partition, persist the assignment, then process — the "
             "whole paper pipeline in one invocation")
    pipeline.add_argument("path", help="edge-list file (u v per line)")
    pipeline.add_argument("--algorithm", choices=sorted(_ALGORITHMS),
                          default="adwise")
    pipeline.add_argument("--partitions", type=int, default=32,
                          help="number of partitions k")
    pipeline.add_argument("--latency-preference", type=float, default=None,
                          help="ADWISE latency preference L in ms")
    pipeline.add_argument("--no-clustering", action="store_true",
                          help="disable ADWISE's clustering score")
    pipeline.add_argument("--fast", action="store_true",
                          help="array-backed partition state (adwise/hdrf/"
                               "dbh/greedy)")
    pipeline.add_argument("--load-workers", type=int, default=1,
                          help="parallel loading instances for the "
                               "partitioning stage (1 = serial streaming)")
    pipeline.add_argument("--spread", type=int, default=None,
                          help="partitions per parallel loading instance "
                               "(default k/z)")
    pipeline.add_argument("--output", default=None,
                          help="assignment file to write between the "
                               "stages (default <input>.parts; a .gz "
                               "suffix compresses transparently)")
    _add_processing_arguments(pipeline)

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant partitioning daemon "
             "(ndjson over TCP; see repro.service)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7733,
                       help="TCP port (0 = pick a free port and print it)")
    serve.add_argument("--max-tenants", type=int, default=64,
                       help="maximum concurrently open sessions")
    serve.add_argument("--queue-depth", type=int, default=16,
                       help="per-tenant ingest queue bound (backpressure)")
    serve.add_argument("--snapshot-dir", default=None,
                       help="directory for graceful-shutdown snapshots; "
                            "restored on the next start")
    serve.add_argument("--wal-dir", default=None,
                       help="directory for per-tenant write-ahead logs: "
                            "every ingest batch is logged before it is "
                            "applied, so a killed daemon restarted over "
                            "the same directory resumes every tenant "
                            "bit-identically")
    serve.add_argument("--wal-compact-every", type=int, default=64,
                       help="applied batches between WAL compactions "
                            "(snapshot + truncate; bounds recovery cost)")
    serve.add_argument("--fsync", choices=["always", "batch", "off"],
                       default="batch",
                       help="WAL fsync policy: every append (always), "
                            "batched (default), or page-cache only (off)")
    serve.add_argument("--audit-depth", type=int, default=4096,
                       help="per-tenant decision-log capacity (oldest "
                            "entries drop beyond it; see the audit op)")
    serve.add_argument("--metrics-window", type=int, default=1024,
                       help="per-tenant latency histogram window: batch "
                            "latencies retained for percentile queries")

    resume = sub.add_parser(
        "resume",
        help="restart an interrupted --cluster run from its "
             "--checkpoint-dir (last consistent superstep boundary)")
    resume.add_argument("checkpoint_dir",
                        help="directory a previous run checkpointed into")
    resume.add_argument("--cluster-backend", choices=["serial", "process"],
                        default=None,
                        help="override the original run's backend")
    resume.add_argument("--workers", type=int, default=None,
                        help="override worker count (process backend; the "
                             "checkpoint is keyed by partition, so any "
                             "layout can resume it)")
    resume.add_argument("--max-supersteps", type=int, default=None,
                        help="override the original superstep budget")

    top = sub.add_parser(
        "top",
        help="metrics view of a running daemon: service totals plus a "
             "per-tenant table (Prometheus scrape under the hood)")
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=7733)
    top.add_argument("--raw", action="store_true",
                     help="print the raw Prometheus text exposition "
                          "(what a scraper would ingest) and exit")
    top.add_argument("--watch", type=float, default=None,
                     help="refresh every N seconds until interrupted")

    client = sub.add_parser(
        "client",
        help="stream an edge-list file into a running daemon "
             "and print the tenant's stats")
    client.add_argument("path", help="edge-list file (u v per line)")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=7733)
    client.add_argument("--tenant", default="cli",
                        help="tenant name to open (must not exist yet)")
    client.add_argument("--algorithm", choices=sorted(_ALGORITHMS),
                        default="adwise")
    client.add_argument("--partitions", type=int, default=32,
                        help="number of partitions k")
    client.add_argument("--latency-preference", type=float, default=None,
                        help="ADWISE latency preference L in ms")
    client.add_argument("--batch-size", type=int, default=512,
                        help="edges per ingest request")
    client.add_argument("--keep-open", action="store_true",
                        help="leave the tenant open (skip finalize) so "
                             "later invocations or queries can continue it")
    client.add_argument("--retries", type=int, default=5,
                        help="reconnection attempts after a dropped "
                             "connection (jittered exponential backoff); "
                             "0 fails fast")
    return parser


def _add_processing_arguments(parser: argparse.ArgumentParser) -> None:
    """Processing-stage flags shared by ``process`` and ``pipeline``."""
    parser.add_argument("--workload",
                        choices=["pagerank", "components", "coloring",
                                 "labelprop"],
                        default="pagerank")
    parser.add_argument("--iterations", type=int, default=100)
    parser.add_argument("--machines", type=int, default=None,
                        help="simulated machine count (default 8; with "
                             "--cluster, also the serial backend's "
                             "machine layout — the process backend "
                             "derives machines from --workers instead)")
    parser.add_argument("--mode", choices=["object", "dense"],
                        default=None,
                        help="execution backend (default dense): "
                             "vectorized CSR kernels (dense; falls back "
                             "per program) or the per-vertex reference "
                             "interpreter (object); not applicable with "
                             "--cluster")
    parser.add_argument("--cluster", action="store_true",
                        help="execute sharded: per-partition CSR shards "
                             "with master/mirror replica sync, measured "
                             "wall-clock and sync traffic next to the "
                             "simulated latency")
    parser.add_argument("--cluster-backend", choices=["serial", "process"],
                        default=None,
                        help="--cluster execution (default serial): "
                             "in-process shards (serial) or one worker "
                             "OS process per machine (process)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for --cluster-backend "
                             "process (default: one per partition, "
                             "capped at the CPU count)")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        help="with --cluster: checkpoint shard state every "
                             "N supersteps, enabling rollback recovery "
                             "from worker deaths")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="with --checkpoint-every: persist checkpoints "
                             "here so an interrupted run can be restarted "
                             "with `adwise resume`")
    parser.add_argument("--heartbeat-timeout", type=float, default=None,
                        help="with --cluster-backend process: per-reply "
                             "bound in seconds before a wedged worker is "
                             "declared dead (default 30)")


#: Algorithms whose constructors take the ``fast`` state flag.
_FAST_CAPABLE = {"adwise", "hdrf", "dbh", "greedy"}


def _run_parallel_partition(args: argparse.Namespace) -> int:
    """Parallel loading: z instances over byte-offset chunks of the file."""
    from repro.partitioning.parallel import ParallelLoader, PartitionerSpec

    kwargs: dict = {"fast": True} if args.fast else {}
    if args.algorithm == "adwise":
        kwargs["latency_preference_ms"] = args.latency_preference
        kwargs["use_clustering"] = not args.no_clustering
    spec = PartitionerSpec(args.algorithm, kwargs)
    try:
        loader = ParallelLoader(
            spec, partitions=list(range(args.partitions)),
            num_instances=args.workers, spread=args.spread,
            clock_factory=WallClock if args.wall_clock else SimulatedClock,
            backend=args.backend or "process")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # run_file skips the parent-side line-count pass a FileEdgeStream
    # constructor would do; workers count their own slices lazily.
    result = loader.run_file(args.path)
    print(f"algorithm:          {result.algorithm}")
    print(f"backend:            {result.backend} "
          f"({result.num_instances} workers, spread {result.spread})")
    print(f"edges assigned:     {sum(result.partition_sizes.values())}")
    print(f"replication degree: {result.replication_degree:.4f}")
    print(f"imbalance:          {result.imbalance:.4f}")
    print(f"latency:            {result.latency_ms:.2f} ms "
          f"({'wall' if args.wall_clock else 'simulated'}, max over "
          f"instances)")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            for edge, partition in result.assignments.items():
                handle.write(f"{edge.u} {edge.v} {partition}\n")
        print(f"assignments written to {args.output}")
    return 0


def _run_partition(args: argparse.Namespace) -> int:
    clock = WallClock() if args.wall_clock else SimulatedClock()
    partitions = list(range(args.partitions))
    if args.fast and args.algorithm not in _FAST_CAPABLE:
        print(f"error: --fast is not supported for {args.algorithm} "
              f"(supported: {', '.join(sorted(_FAST_CAPABLE))})",
              file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.workers > 1:
        return _run_parallel_partition(args)
    if args.backend is not None or args.spread is not None:
        print("error: --backend/--spread only apply to parallel loading; "
              "pass --workers N (N > 1)", file=sys.stderr)
        return 2
    extra = {"fast": True} if args.fast else {}
    if args.algorithm == "adwise":
        extra.update(latency_preference_ms=args.latency_preference,
                     use_clustering=not args.no_clustering)
    partitioner = _ALGORITHMS[args.algorithm](partitions, clock=clock,
                                              **extra)
    stream = FileEdgeStream(args.path)
    result = partitioner.partition_stream(stream)
    print(f"algorithm:          {result.algorithm}")
    print(f"edges assigned:     {result.state.assigned_edges}")
    print(f"replication degree: {result.replication_degree:.4f}")
    print(f"imbalance:          {result.imbalance:.4f}")
    print(f"latency:            {result.latency_ms:.2f} ms "
          f"({'wall' if args.wall_clock else 'simulated'})")
    for key, value in sorted(result.extras.items()):
        print(f"{key}:{' ' * max(1, 19 - len(key))}{value:g}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            for edge, partition in result.assignments.items():
                handle.write(f"{edge.u} {edge.v} {partition}\n")
        print(f"assignments written to {args.output}")
    return 0


def _run_stats(args: argparse.Namespace) -> int:
    graph = read_graph(args.path)
    summary = summarize(args.path, graph, clustering_sample=args.sample)
    print("name         |V|        |E|          c-hat    maxdeg   skew")
    print(summary.row())
    return 0


def _validate_processing_flags(args: argparse.Namespace) -> Optional[str]:
    """Static flag-combination errors, checked *before* any work runs
    (a pipeline may spend minutes partitioning first)."""
    if args.cluster_backend is not None and not args.cluster:
        return "--cluster-backend only applies with --cluster"
    cluster_backend = args.cluster_backend or "serial"
    if args.workers is not None and not (
            args.cluster and cluster_backend == "process"):
        return "--workers only applies to --cluster --cluster-backend process"
    if args.workers is not None and args.workers < 1:
        return "--workers must be >= 1"
    if args.mode is not None and args.cluster:
        return ("--mode selects the simulator's backend; --cluster always "
                "runs sharded dense kernels (with engine fallback)")
    if (args.machines is not None and args.cluster
            and cluster_backend == "process"):
        return ("--machines does not apply to --cluster-backend process "
                "(machines are the workers; pass --workers)")
    if args.checkpoint_every is not None:
        if not args.cluster:
            return "--checkpoint-every only applies with --cluster"
        if args.checkpoint_every < 1:
            return "--checkpoint-every must be >= 1"
    if args.checkpoint_dir is not None and args.checkpoint_every is None:
        return "--checkpoint-dir requires --checkpoint-every"
    if args.heartbeat_timeout is not None:
        if not (args.cluster and cluster_backend == "process"):
            return ("--heartbeat-timeout only applies to --cluster "
                    "--cluster-backend process")
        if args.heartbeat_timeout <= 0:
            return "--heartbeat-timeout must be positive"
    return None


def _print_cluster_report(report, stats) -> None:
    print(f"workload:            {report.algorithm}")
    print(f"execution:           cluster ({report.backend}, "
          f"{report.num_shards} shards, {report.num_machines} "
          f"machines{'' if report.sharded else ', unsharded fallback'})")
    print(f"supersteps:          {report.supersteps}")
    print(f"converged:           {report.converged}")
    print(f"messages sent:       {report.messages_sent}")
    print(f"simulated latency:   {report.latency_ms:.2f} ms")
    print(f"measured wall:       {report.wall_ms_total:.2f} ms")
    if report.sharded:
        print(f"sync messages:       "
              f"{report.remote_sync_messages} remote + "
              f"{report.local_sync_messages} local "
              f"({report.sync_payload_bytes} payload bytes)")
    if report.checkpoints_written:
        print(f"checkpoints:         {report.checkpoints_written} "
              f"({report.checkpoint_wall_ms:.2f} ms)")
    for event in report.recoveries:
        print(f"recovery:            machine {event.machine} died at "
              f"superstep {event.superstep_detected} ({event.reason}); "
              f"replayed {event.supersteps_lost} supersteps from "
              f"{event.resumed_from} in {event.wall_ms:.2f} ms")
    if stats is not None:
        print(f"replication degree:  {stats.replication_degree:.4f}")


def _run_resume(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterEngine, ClusterError

    if args.workers is not None and args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.max_supersteps is not None and args.max_supersteps < 1:
        print("error: --max-supersteps must be >= 1", file=sys.stderr)
        return 2
    if (args.workers is not None
            and args.cluster_backend not in (None, "process")):
        print("error: --workers only applies to --cluster-backend process",
              file=sys.stderr)
        return 2
    try:
        report = ClusterEngine.resume(
            args.checkpoint_dir,
            backend=args.cluster_backend,
            num_workers=args.workers,
            max_supersteps=args.max_supersteps)
    except (ClusterError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"resumed from:        {args.checkpoint_dir}")
    _print_cluster_report(report, None)
    return 0


def _execute_processing(graph, assignments, partitions,
                        args: argparse.Namespace) -> int:
    """Processing stage shared by ``process`` and ``pipeline``."""
    from repro.engine.algorithms import (
        ConnectedComponents,
        GreedyColoring,
        LabelPropagation,
        PageRank,
    )
    from repro.engine.cost import cost_model_for
    from repro.engine.placement import Placement
    from repro.engine.runtime import Engine

    programs = {
        "pagerank": lambda: PageRank(iterations=args.iterations),
        "components": lambda: ConnectedComponents(),
        "coloring": lambda: GreedyColoring(max_iterations=args.iterations),
        "labelprop": lambda: LabelPropagation(max_iterations=args.iterations),
    }
    workload = "pagerank" if args.workload != "coloring" else "coloring"
    cost_model = cost_model_for(workload)
    program = programs[args.workload]()
    max_supersteps = args.iterations + 2
    machines = args.machines if args.machines is not None else 8
    mode = args.mode if args.mode is not None else "dense"

    if args.cluster:
        from repro.cluster import ClusterEngine, ClusterError
        from repro.graph.shard import ShardedGraph

        sharded = ShardedGraph.from_assignments(
            assignments, partitions=partitions,
            vertices=graph.vertices())
        kwargs: dict = {"checkpoint_every": args.checkpoint_every,
                        "checkpoint_dir": args.checkpoint_dir}
        if (args.cluster_backend or "serial") == "process":
            if args.heartbeat_timeout is not None:
                kwargs["heartbeat_timeout"] = args.heartbeat_timeout
            engine = ClusterEngine(sharded, cost_model,
                                   backend="process",
                                   num_workers=args.workers, **kwargs)
        else:
            engine = ClusterEngine(sharded, cost_model, backend="serial",
                                   num_machines=machines, **kwargs)
        try:
            report = engine.run(program, max_supersteps=max_supersteps)
        except ClusterError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        _print_cluster_report(report, engine.placement.stats())
        return 0

    placement = Placement(assignments, partitions,
                          num_machines=machines)
    engine = Engine(graph, placement, cost_model, mode=mode)
    report = engine.run(program, max_supersteps=max_supersteps)
    print(f"workload:            {report.algorithm}")
    print(f"mode:                {mode}")
    print(f"supersteps:          {report.supersteps}")
    print(f"converged:           {report.converged}")
    print(f"messages sent:       {report.messages_sent}")
    print(f"simulated latency:   {report.latency_ms:.2f} ms "
          f"({machines} machines)")
    stats = placement.stats()
    print(f"replication degree:  {stats.replication_degree:.4f}")
    return 0


def _run_process(args: argparse.Namespace) -> int:
    from repro.partitioning.partition_io import read_assignments

    error = _validate_processing_flags(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    graph = read_graph(args.graph)
    assignments = read_assignments(args.assignments)
    partitions = sorted(set(assignments.values()))
    return _execute_processing(graph, assignments, partitions, args)


def _run_pipeline(args: argparse.Namespace) -> int:
    """Chain partition -> write_assignments -> (sharded) process."""
    from repro.partitioning.partition_io import write_assignments

    error = _validate_processing_flags(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.fast and args.algorithm not in _FAST_CAPABLE:
        print(f"error: --fast is not supported for {args.algorithm} "
              f"(supported: {', '.join(sorted(_FAST_CAPABLE))})",
              file=sys.stderr)
        return 2
    if args.load_workers < 1:
        print("error: --load-workers must be >= 1", file=sys.stderr)
        return 2

    partitions = list(range(args.partitions))
    kwargs: dict = {"fast": True} if args.fast else {}
    if args.algorithm == "adwise":
        kwargs.update(latency_preference_ms=args.latency_preference,
                      use_clustering=not args.no_clustering)

    if args.load_workers > 1:
        from repro.partitioning.parallel import (
            ParallelLoader,
            PartitionerSpec,
        )
        try:
            loader = ParallelLoader(
                PartitionerSpec(args.algorithm, kwargs),
                partitions=partitions,
                num_instances=args.load_workers, spread=args.spread,
                backend="process")
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        result = loader.run_file(args.path)
        assignments = result.assignments
    else:
        if args.spread is not None:
            print("error: --spread only applies to parallel loading; "
                  "pass --load-workers N (N > 1)", file=sys.stderr)
            return 2
        partitioner = _ALGORITHMS[args.algorithm](
            partitions, clock=SimulatedClock(), **kwargs)
        result = partitioner.partition_stream(FileEdgeStream(args.path))
        assignments = result.assignments

    output = args.output or f"{args.path}.parts"
    written = write_assignments(
        output, assignments,
        header=f"algorithm={args.algorithm} k={args.partitions}")
    print(f"partitioned:         {written} edges "
          f"({args.algorithm}, k={args.partitions}, "
          f"replication {result.replication_degree:.4f})")
    print(f"assignments written: {output}")

    graph = read_graph(args.path)
    return _execute_processing(graph, assignments, partitions, args)


def _run_serve(args: argparse.Namespace) -> int:
    from repro.service.server import run_service

    if args.max_tenants < 1 or args.queue_depth < 1:
        print("error: --max-tenants and --queue-depth must be >= 1",
              file=sys.stderr)
        return 2
    if args.wal_compact_every < 1:
        print("error: --wal-compact-every must be >= 1", file=sys.stderr)
        return 2
    if args.audit_depth < 1 or args.metrics_window < 1:
        print("error: --audit-depth and --metrics-window must be >= 1",
              file=sys.stderr)
        return 2

    def announce(service) -> None:
        durability = ("wal" if service.wal_dir is not None else
                      "snapshots" if service.snapshot_dir is not None
                      else "none")
        print(f"listening on {service.host}:{service.port} "
              f"(max {service.max_tenants} tenants, queue depth "
              f"{service.queue_depth}, durability {durability})",
              flush=True)

    try:
        run_service(host=args.host, port=args.port,
                    max_tenants=args.max_tenants,
                    queue_depth=args.queue_depth,
                    snapshot_dir=args.snapshot_dir,
                    wal_dir=args.wal_dir,
                    wal_compact_every=args.wal_compact_every,
                    fsync=args.fsync,
                    audit_depth=args.audit_depth,
                    metrics_window=args.metrics_window,
                    ready_callback=announce)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _parse_prometheus(text: str) -> dict:
    """Parse text exposition into ``{(name, labels-tuple): value}``.

    Just enough of the format for the ``top`` view: ``#``-comment lines
    are skipped, labels are ``key="value"`` pairs with no escapes the
    exporter doesn't itself produce.
    """
    series: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            key, value = line.rsplit(" ", 1)
        except ValueError:
            continue
        name, labels = key, ()
        if "{" in key and key.endswith("}"):
            name, _, raw = key.partition("{")
            labels = tuple(sorted(
                (pair.split("=", 1)[0],
                 pair.split("=", 1)[1].strip('"'))
                for pair in raw[:-1].split(",") if "=" in pair))
        try:
            series[(name, labels)] = float(value)
        except ValueError:
            continue
    return series


def _render_top(text: str, tenants: list) -> None:
    series = _parse_prometheus(text)

    def scalar(name: str, **labels: str) -> float:
        return series.get((name, tuple(sorted(labels.items()))), 0.0)

    uptime = scalar("repro_service_uptime_seconds")
    print(f"service: {len(tenants)} tenant(s), up {uptime:.1f}s")
    header = (f"{'TENANT':<16} {'ALGO':<8} {'EDGES':>10} {'E/S':>9} "
              f"{'QUEUE':>5} {'SEQ':>6} {'P99MS':>7} {'DUR':>4}")
    print(header)
    for info in sorted(tenants, key=lambda t: t["tenant"]):
        name = info["tenant"]
        eps = scalar("repro_tenant_edges_per_second", tenant=name)
        p99_s = scalar("repro_tenant_ingest_latency_seconds",
                       quantile="0.99", tenant=name)
        print(f"{name:<16} {info['algorithm']:<8} "
              f"{info['edges_ingested']:>10} {eps:>9.0f} "
              f"{info['queue_depth']:>5} {info['applied_seq']:>6} "
              f"{p99_s * 1000.0:>7.2f} "
              f"{'wal' if info['durable'] else '-':>4}")


def _run_top(args: argparse.Namespace) -> int:
    import time as _time

    from repro.service.client import ServiceClient, ServiceError

    if args.watch is not None and args.watch <= 0:
        print("error: --watch must be positive", file=sys.stderr)
        return 2
    try:
        with ServiceClient(host=args.host, port=args.port) as client:
            while True:
                text = client.metrics_text()
                if args.raw:
                    print(text, end="")
                else:
                    _render_top(text, client.tenants())
                if args.watch is None:
                    return 0
                _time.sleep(args.watch)
                print()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0
    except (ServiceError, ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _run_client(args: argparse.Namespace) -> int:
    from repro.graph.stream import iter_edge_file
    from repro.service.client import ServiceClient, ServiceError

    if args.batch_size < 1:
        print("error: --batch-size must be >= 1", file=sys.stderr)
        return 2
    if args.retries < 0:
        print("error: --retries must be >= 0", file=sys.stderr)
        return 2
    knobs: dict = {}
    if args.algorithm == "adwise" and args.latency_preference is not None:
        knobs["latency_preference_ms"] = args.latency_preference
    try:
        with ServiceClient(host=args.host, port=args.port,
                           max_retries=args.retries) as client:
            client.open(args.tenant, algorithm=args.algorithm,
                        partitions=args.partitions, **knobs)
            batch: list = []
            pending: list = []
            for edge in iter_edge_file(args.path):
                batch.append((edge.u, edge.v))
                if len(batch) >= args.batch_size:
                    pending.append(client.ingest_async(args.tenant, batch))
                    batch = []
            if batch:
                pending.append(client.ingest_async(args.tenant, batch))
            client.drain(pending)
            stats = client.stats(args.tenant)
            session = stats["session"]
            metrics = stats["metrics"]
            print(f"tenant:             {args.tenant}")
            print(f"algorithm:          {session['algorithm']}")
            print(f"edges ingested:     {session['edges_ingested']}")
            print(f"replication degree: "
                  f"{session['replication_degree']:.4f}")
            print(f"imbalance:          {session['imbalance']:.4f}")
            print(f"throughput:         "
                  f"{metrics['edges_per_second']:.0f} edges/s "
                  f"(p99 batch {metrics['p99_ingest_ms']:.2f} ms)")
            if not args.keep_open:
                result = client.finalize(args.tenant)
                print(f"finalized:          "
                      f"{len(result['assignments'])} assignments, "
                      f"replication "
                      f"{result['replication_degree']:.4f}")
    except (ServiceError, ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "partition":
        return _run_partition(args)
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "process":
        return _run_process(args)
    if args.command == "pipeline":
        return _run_pipeline(args)
    if args.command == "resume":
        return _run_resume(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "top":
        return _run_top(args)
    if args.command == "client":
        return _run_client(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
