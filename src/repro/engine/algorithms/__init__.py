"""Vertex-centric graph algorithms (the paper's evaluation workloads)."""

from repro.engine.algorithms.pagerank import PageRank
from repro.engine.algorithms.coloring import GreedyColoring
from repro.engine.algorithms.components import ConnectedComponents
from repro.engine.algorithms.sssp import SingleSourceShortestPaths
from repro.engine.algorithms.subgraph_iso import CycleSearch
from repro.engine.algorithms.clique import CliqueSearch
from repro.engine.algorithms.label_propagation import LabelPropagation
from repro.engine.algorithms.kcore import KCore
from repro.engine.algorithms.triangles import TriangleCount
from repro.engine.algorithms.bfs import BreadthFirstSearch

__all__ = [
    "PageRank",
    "GreedyColoring",
    "ConnectedComponents",
    "SingleSourceShortestPaths",
    "CycleSearch",
    "CliqueSearch",
    "LabelPropagation",
    "KCore",
    "TriangleCount",
    "BreadthFirstSearch",
]
