"""Subgraph isomorphism workload: searching for cycles of fixed length.

The paper's Fig. 7d searches the Brain graph "consecutively for three
subgraphs: circles of different lengths (path lengths of 19, 15, and 21)"
— an NP-complete subgraph-isomorphism instance solved with distributed
message passing.  We implement the same walker pattern: seed vertices emit
path messages carrying (origin, visited-set); vertices extend simple paths
to their neighbors; a message returning to its origin with the target
length closes a cycle.

Message volume is the workload's defining property (communication- and
computation-heavy), so forwarding is bounded by a per-vertex fanout and a
probabilistic forwarding factor — the same mechanism the paper uses for
its clique search — to keep the search tractable while preserving its
messaging-heavy character.
"""

from __future__ import annotations

import random
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.engine.vertex_program import Context, VertexProgram

# Message: (origin, steps_taken, visited vertices)
_Message = Tuple[int, int, FrozenSet[int]]


class CycleSearch(VertexProgram):
    """Find simple cycles of length ``cycle_length`` through seed vertices.

    State is the number of cycles this vertex has observed closing at it.
    """

    name = "subgraph_isomorphism"

    def __init__(self, cycle_length: int, seeds: Sequence[int],
                 fanout: int = 3, forward_probability: float = 1.0,
                 seed: int = 0) -> None:
        if cycle_length < 3:
            raise ValueError("cycle_length must be >= 3")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        if not 0.0 < forward_probability <= 1.0:
            raise ValueError("forward_probability must be in (0, 1]")
        self.cycle_length = cycle_length
        self.seeds = list(seeds)
        self.fanout = fanout
        self.forward_probability = forward_probability
        self._rng = random.Random(seed)

    def initial_state(self, vertex: int, degree: int) -> int:
        return 0

    def _forward_targets(self, neighbors: List[int],
                         exclude: Set[int]) -> List[int]:
        candidates = [n for n in neighbors if n not in exclude]
        if len(candidates) <= self.fanout:
            return candidates
        return self._rng.sample(candidates, self.fanout)

    def compute(self, vertex: int, state: int, messages: List[_Message],
                neighbors: List[int], ctx: Context) -> int:
        found = state
        if ctx.superstep == 0:
            if vertex in self.seeds:
                visited = frozenset((vertex,))
                for target in self._forward_targets(neighbors, {vertex}):
                    ctx.send(target, (vertex, 1, visited))
            ctx.vote_halt()
            return found
        for origin, steps, visited in messages:
            if steps == self.cycle_length - 1:
                # One more hop must close the cycle at the origin.
                if origin in neighbors:
                    found += 1
                continue
            if steps >= self.cycle_length - 1:
                continue
            if self._rng.random() > self.forward_probability:
                continue
            new_visited = visited | {vertex}
            exclude = set(new_visited)
            for target in self._forward_targets(neighbors, exclude):
                ctx.send(target, (origin, steps + 1, new_visited))
        ctx.vote_halt()
        return found
