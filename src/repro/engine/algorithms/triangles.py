"""Distributed triangle counting.

Three supersteps: vertices introduce themselves, forward the learned
neighbor set, and intersect advertised neighbor sets with their own.
Each triangle is counted once per corner; :meth:`total` divides by three.
"""

from __future__ import annotations

from typing import FrozenSet, List, Union

from repro.engine.vertex_program import Context, VertexProgram

_Message = Union[int, FrozenSet[int]]


class TriangleCount(VertexProgram):
    """State is the number of triangle corners observed at the vertex."""

    name = "triangles"

    def initial_state(self, vertex: int, degree: int) -> int:
        return 0

    def compute(self, vertex: int, state: int, messages: List[_Message],
                neighbors: List[int], ctx: Context) -> int:
        if ctx.superstep == 0:
            ctx.send_all(neighbors, vertex)
        elif ctx.superstep == 1:
            peers = frozenset(messages)
            ctx.send_all(neighbors, peers)
        elif ctx.superstep == 2:
            mine = set(neighbors)
            hits = sum(len(mine & peers) for peers in messages)
            ctx.vote_halt()
            return hits // 2  # each triangle counted twice per corner
        else:
            ctx.vote_halt()
        return state

    @staticmethod
    def total(states) -> int:
        """Total triangle count from a finished report's states."""
        return sum(states.values()) // 3
