"""Connected components via min-label propagation (HashMin)."""

from __future__ import annotations

from typing import List

from repro.engine.vertex_program import Context, VertexProgram


class ConnectedComponents(VertexProgram):
    """State is the smallest vertex id seen in the component so far."""

    name = "components"

    def initial_state(self, vertex: int, degree: int) -> int:
        return vertex

    def compute(self, vertex: int, state: int, messages: List[int],
                neighbors: List[int], ctx: Context) -> int:
        candidate = min(messages) if messages else state
        if ctx.superstep == 0:
            ctx.send_all(neighbors, state)
            return state
        if candidate < state:
            ctx.send_all(neighbors, candidate)
            return candidate
        ctx.vote_halt()
        return state
