"""Connected components via min-label propagation (HashMin)."""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.engine.dense import DenseKernel
from repro.engine.vertex_program import Context, VertexProgram
from repro.graph.csr import CSRGraph

_NO_MESSAGE = np.iinfo(np.int64).max


class _DenseComponents(DenseKernel):
    """Frontier-masked HashMin: labels are original vertex ids (int64).

    Superstep 0 floods every vertex's id; afterwards only vertices whose
    label improved re-broadcast, and everything else halts — the same
    shrinking frontier the object path produces, so superstep and message
    counts match exactly (integer states: bit-exact parity).
    """

    def __init__(self, csr: CSRGraph) -> None:
        super().__init__(csr)
        self.label = csr.vertex_ids.astype(np.int64, copy=True)
        self.msg_min = np.full(csr.num_vertices, _NO_MESSAGE, dtype=np.int64)

    def step(self, superstep: int, mask: np.ndarray) -> Tuple[int, Any]:
        if superstep == 0:
            senders = mask
            self.active = mask.copy()  # nobody halts in the seeding step
        else:
            candidate = np.where(self.has_msg, self.msg_min, self.label)
            senders = mask & (candidate < self.label)
            self.label[senders] = candidate[senders]
            self.active = senders  # improved vertices stay active
        self.has_msg, self.msg_min = self.scatter_min(
            senders, self.label, _NO_MESSAGE)
        return self.sent_from(senders), None

    def states(self) -> Dict[int, Any]:
        return dict(zip(self.csr.vertex_ids.tolist(), self.label.tolist()))


class ConnectedComponents(VertexProgram):
    """State is the smallest vertex id seen in the component so far."""

    name = "components"
    #: Kernel follows the sharded contract: one trailing scatter_min.
    shardable = True

    def initial_state(self, vertex: int, degree: int) -> int:
        return vertex

    def compute(self, vertex: int, state: int, messages: List[int],
                neighbors: List[int], ctx: Context) -> int:
        candidate = min(messages) if messages else state
        if ctx.superstep == 0:
            ctx.send_all(neighbors, state)
            return state
        if candidate < state:
            ctx.send_all(neighbors, candidate)
            return candidate
        ctx.vote_halt()
        return state

    def dense_kernel(self, csr: CSRGraph) -> _DenseComponents:
        return _DenseComponents(csr)
