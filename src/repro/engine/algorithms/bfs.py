"""Breadth-first search with parent pointers.

Like SSSP but additionally records each vertex's BFS parent, giving a
shortest-path tree — the building block for reachability queries and
diameter estimation on the engine.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.engine.vertex_program import Context, VertexProgram

# Message: (sender, distance offered)
_Message = Tuple[int, float]


class BreadthFirstSearch(VertexProgram):
    """State is ``(distance, parent)``; parent is None for source/unreached."""

    name = "bfs"

    def __init__(self, source: int) -> None:
        self.source = source

    def initial_state(self, vertex: int,
                      degree: int) -> Tuple[float, Optional[int]]:
        if vertex == self.source:
            return (0.0, None)
        return (math.inf, None)

    def compute(self, vertex: int, state: Tuple[float, Optional[int]],
                messages: List[_Message], neighbors: List[int],
                ctx: Context) -> Tuple[float, Optional[int]]:
        distance, parent = state
        if ctx.superstep == 0:
            if vertex == self.source:
                ctx.send_all(neighbors, (vertex, 1.0))
            ctx.vote_halt()
            return state
        best = None
        for sender, offered in messages:
            if best is None or offered < best[1]:
                best = (sender, offered)
        if best is not None and best[1] < distance:
            distance, parent = best[1], best[0]
            ctx.send_all(neighbors, (vertex, distance + 1.0))
        ctx.vote_halt()
        return (distance, parent)

    @staticmethod
    def path_to(states, vertex: int) -> List[int]:
        """Reconstruct the path source -> vertex from a finished report."""
        distance, parent = states[vertex]
        if math.isinf(distance):
            return []
        path = [vertex]
        while parent is not None:
            path.append(parent)
            _, parent = states[parent]
        path.reverse()
        return path
