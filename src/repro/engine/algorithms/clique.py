"""Fixed-size clique search via random-walker probabilistic flooding.

Implements the paper's Fig. 7f workload exactly as described: "vertices
exchange messages of partially found cliques and probabilistically
(P = 0.5) forward these messages if they are connected to all vertices in
the partial clique message".  Walkers start from randomly chosen seed
vertices; a vertex extending a partial clique to the target size records a
find.
"""

from __future__ import annotations

import random
from typing import FrozenSet, List, Sequence, Set, Tuple

from repro.engine.vertex_program import Context, VertexProgram

# Message: the partial clique (a frozen vertex set).
_Message = FrozenSet[int]


class CliqueSearch(VertexProgram):
    """Search for cliques of ``clique_size``; state counts finds at a vertex."""

    name = "clique"

    def __init__(self, clique_size: int, seeds: Sequence[int],
                 forward_probability: float = 0.5,
                 fanout: int = 4, seed: int = 0) -> None:
        if clique_size < 2:
            raise ValueError("clique_size must be >= 2")
        if not 0.0 < forward_probability <= 1.0:
            raise ValueError("forward_probability must be in (0, 1]")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.clique_size = clique_size
        self.seeds = list(seeds)
        self.forward_probability = forward_probability
        self.fanout = fanout
        self._rng = random.Random(seed)

    def initial_state(self, vertex: int, degree: int) -> int:
        return 0

    def _targets(self, neighbors: List[int], exclude: Set[int]) -> List[int]:
        candidates = [n for n in neighbors if n not in exclude]
        if len(candidates) <= self.fanout:
            return candidates
        return self._rng.sample(candidates, self.fanout)

    def compute(self, vertex: int, state: int, messages: List[_Message],
                neighbors: List[int], ctx: Context) -> int:
        found = state
        neighbor_set = set(neighbors)
        if ctx.superstep == 0:
            if vertex in self.seeds:
                partial = frozenset((vertex,))
                for target in self._targets(neighbors, {vertex}):
                    ctx.send(target, partial)
            ctx.vote_halt()
            return found
        for partial in messages:
            # Extend only if this vertex closes a clique with every member.
            if not partial <= neighbor_set:
                continue
            extended = partial | {vertex}
            if len(extended) == self.clique_size:
                found += 1
                continue
            if self._rng.random() > self.forward_probability:
                continue
            for target in self._targets(neighbors, set(extended)):
                ctx.send(target, frozenset(extended))
        ctx.vote_halt()
        return found
