"""Single-source shortest paths (unit edge weights, BFS-style relaxation)."""

from __future__ import annotations

import math
from typing import List

from repro.engine.vertex_program import Context, VertexProgram


class SingleSourceShortestPaths(VertexProgram):
    """State is the best-known distance from the source (inf if unreached)."""

    name = "sssp"

    def __init__(self, source: int) -> None:
        self.source = source

    def initial_state(self, vertex: int, degree: int) -> float:
        return 0.0 if vertex == self.source else math.inf

    def compute(self, vertex: int, state: float, messages: List[float],
                neighbors: List[int], ctx: Context) -> float:
        candidate = min(messages) if messages else math.inf
        if ctx.superstep == 0:
            if vertex == self.source:
                ctx.send_all(neighbors, 1.0)
            ctx.vote_halt()
            return state
        if candidate < state:
            ctx.send_all(neighbors, candidate + 1.0)
            ctx.vote_halt()
            return candidate
        ctx.vote_halt()
        return state
