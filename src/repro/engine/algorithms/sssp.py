"""Single-source shortest paths (unit edge weights, BFS-style relaxation)."""

from __future__ import annotations

import math
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.engine.dense import DenseKernel
from repro.engine.vertex_program import Context, VertexProgram
from repro.graph.csr import CSRGraph


class _DenseSSSP(DenseKernel):
    """Frontier-masked BFS relaxation over distance arrays.

    Every vertex halts every superstep (the object program is purely
    message-driven), so the compute mask after the seeding step is exactly
    the receive mask; a vertex relaxes and re-broadcasts only when the
    combined (min) incoming distance improves on its own.  Distances are
    exact small integers stored as float64, so parity is bit-exact even
    though the state is floating point.
    """

    def __init__(self, csr: CSRGraph, source: int) -> None:
        super().__init__(csr)
        n = csr.num_vertices
        self.dist = np.full(n, np.inf)
        self.msg_min = np.full(n, np.inf)
        self.source_index = csr.index_of.get(source)
        if self.source_index is not None:
            self.dist[self.source_index] = 0.0

    def step(self, superstep: int, mask: np.ndarray) -> Tuple[int, Any]:
        n = self.csr.num_vertices
        if superstep == 0:
            senders = np.zeros(n, dtype=bool)
            if self.source_index is not None:
                senders[self.source_index] = True
            values = np.ones(n)
        else:
            senders = mask & self.has_msg & (self.msg_min < self.dist)
            self.dist[senders] = self.msg_min[senders]
            values = self.dist + 1.0
        self.has_msg, self.msg_min = self.scatter_min(senders, values, np.inf)
        self.active = np.zeros(n, dtype=bool)  # everyone votes to halt
        return self.sent_from(senders), None

    def states(self) -> Dict[int, Any]:
        return dict(zip(self.csr.vertex_ids.tolist(), self.dist.tolist()))


class SingleSourceShortestPaths(VertexProgram):
    """State is the best-known distance from the source (inf if unreached)."""

    name = "sssp"
    #: Kernel follows the sharded contract: one trailing scatter_min.
    shardable = True

    def __init__(self, source: int) -> None:
        self.source = source

    def initial_state(self, vertex: int, degree: int) -> float:
        return 0.0 if vertex == self.source else math.inf

    def compute(self, vertex: int, state: float, messages: List[float],
                neighbors: List[int], ctx: Context) -> float:
        candidate = min(messages) if messages else math.inf
        if ctx.superstep == 0:
            if vertex == self.source:
                ctx.send_all(neighbors, 1.0)
            ctx.vote_halt()
            return state
        if candidate < state:
            ctx.send_all(neighbors, candidate + 1.0)
            ctx.vote_halt()
            return candidate
        ctx.vote_halt()
        return state

    def dense_kernel(self, csr: CSRGraph) -> _DenseSSSP:
        return _DenseSSSP(csr, self.source)
