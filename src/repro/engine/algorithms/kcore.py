"""k-core decomposition by iterative peeling.

A vertex belongs to the k-core if it has at least ``k`` neighbors that
also belong.  Vertices announce when they drop out; remaining vertices
re-evaluate their effective degree as removal messages arrive.  The final
state is True for members of the k-core.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.engine.vertex_program import Context, VertexProgram


class KCore(VertexProgram):
    """State is ``(alive, removed_neighbor_count)``."""

    name = "kcore"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def initial_state(self, vertex: int, degree: int) -> Tuple[bool, int]:
        return (True, 0)

    def compute(self, vertex: int, state: Tuple[bool, int],
                messages: List[int], neighbors: List[int],
                ctx: Context) -> Tuple[bool, int]:
        alive, removed = state
        if not alive:
            ctx.vote_halt()
            return state
        removed += len(messages)
        effective_degree = len(neighbors) - removed
        if effective_degree < self.k:
            # Drop out and notify the neighborhood exactly once.
            ctx.send_all(neighbors, 1)
            ctx.vote_halt()
            return (False, removed)
        ctx.vote_halt()
        return (True, removed)

    @staticmethod
    def members(states) -> List[int]:
        """Vertices in the k-core, from a finished report's states."""
        return sorted(v for v, (alive, _) in states.items() if alive)
