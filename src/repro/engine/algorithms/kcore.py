"""k-core decomposition by iterative peeling.

A vertex belongs to the k-core if it has at least ``k`` neighbors that
also belong.  Vertices announce when they drop out; remaining vertices
re-evaluate their effective degree as removal messages arrive.  The final
state is True for members of the k-core.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.engine.dense import DenseKernel
from repro.engine.vertex_program import Context, VertexProgram
from repro.graph.csr import CSRGraph


class _DenseKCore(DenseKernel):
    """Frontier-masked peeling over ``alive``/``removed`` arrays.

    Every vertex halts every superstep; the cascade is carried purely by
    removal messages, combined per target as a count.  Dead vertices that
    still receive messages are computed (they are in the mask, exactly as
    in the object path) but discard them.  Integer state: bit-exact
    parity.
    """

    def __init__(self, csr: CSRGraph, k: int) -> None:
        super().__init__(csr)
        n = csr.num_vertices
        self.k = k
        self.alive = np.ones(n, dtype=bool)
        self.removed = np.zeros(n, dtype=np.int64)
        self.msg_count = np.zeros(n, dtype=np.int64)

    def step(self, superstep: int, mask: np.ndarray) -> Tuple[int, Any]:
        degrees = self.csr.degrees
        if superstep == 0:
            dropping = mask & (degrees < self.k)
        else:
            updating = mask & self.has_msg & self.alive
            self.removed[updating] += self.msg_count[updating]
            dropping = updating & (degrees - self.removed < self.k)
        self.alive[dropping] = False
        sent = self.sent_from(dropping)
        self.has_msg, self.msg_count = self.scatter_count(dropping)
        self.active = np.zeros(self.csr.num_vertices, dtype=bool)
        return sent, None

    def states(self) -> Dict[int, Any]:
        return {vid: (alive, removed)
                for vid, alive, removed in zip(self.csr.vertex_ids.tolist(),
                                               self.alive.tolist(),
                                               self.removed.tolist())}


class KCore(VertexProgram):
    """State is ``(alive, removed_neighbor_count)``."""

    name = "kcore"
    #: Kernel follows the sharded contract: one trailing scatter_count,
    #: degrees read as logical degrees (the peeling threshold).
    shardable = True

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def initial_state(self, vertex: int, degree: int) -> Tuple[bool, int]:
        return (True, 0)

    def compute(self, vertex: int, state: Tuple[bool, int],
                messages: List[int], neighbors: List[int],
                ctx: Context) -> Tuple[bool, int]:
        alive, removed = state
        if not alive:
            ctx.vote_halt()
            return state
        removed += len(messages)
        effective_degree = len(neighbors) - removed
        if effective_degree < self.k:
            # Drop out and notify the neighborhood exactly once.
            ctx.send_all(neighbors, 1)
            ctx.vote_halt()
            return (False, removed)
        ctx.vote_halt()
        return (True, removed)

    @staticmethod
    def members(states) -> List[int]:
        """Vertices in the k-core, from a finished report's states."""
        return sorted(v for v, (alive, _) in states.items() if alive)

    def dense_kernel(self, csr: CSRGraph) -> _DenseKCore:
        return _DenseKCore(csr, self.k)
