"""Community detection by synchronous label propagation.

Every vertex starts in its own community and repeatedly adopts the most
frequent label among its neighbors (ties broken toward the smaller
label).  Converges quickly on clustered graphs; the global aggregate
counts label changes per superstep, and the program stops itself when a
superstep changes nothing — exercising the engine's aggregator and
early-stop hooks.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.engine.vertex_program import Context, VertexProgram


class LabelPropagation(VertexProgram):
    """State is the vertex's current community label."""

    name = "label_propagation"

    def __init__(self, max_iterations: int = 50) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.max_iterations = max_iterations

    def initial_state(self, vertex: int, degree: int) -> int:
        return vertex

    def compute(self, vertex: int, state: int, messages: List[int],
                neighbors: List[int], ctx: Context) -> int:
        new_label = state
        if ctx.superstep > 0 and messages:
            counts: Dict[int, int] = {}
            for label in messages:
                counts[label] = counts.get(label, 0) + 1
            # Most frequent label; smaller label wins ties.
            new_label = min(counts, key=lambda lbl: (-counts[lbl], lbl))
        self._changed = (new_label != state)
        if ctx.superstep < self.max_iterations:
            ctx.send_all(neighbors, new_label)
        else:
            ctx.vote_halt()
        return new_label

    def aggregate(self, vertex: int, state: int) -> int:
        return 1 if getattr(self, "_changed", False) else 0

    def should_stop(self, aggregate: int, superstep: int) -> bool:
        # No label changed in the last superstep (skip the seeding step).
        return superstep > 1 and aggregate == 0

    def is_stationary(self) -> bool:
        return True
