"""Community detection by synchronous label propagation.

Every vertex starts in its own community and repeatedly adopts the most
frequent label among its neighbors (ties broken toward the smaller
label).  Converges quickly on clustered graphs; the global aggregate
counts label changes per superstep, and the program stops itself when a
superstep changes nothing — exercising the engine's aggregator and
early-stop hooks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.engine.dense import DenseKernel
from repro.engine.vertex_program import Context, VertexProgram
from repro.graph.csr import CSRGraph


class _DenseLabelPropagation(DenseKernel):
    """Whole-frontier label propagation with a vectorized per-vertex mode.

    Until the halt superstep every vertex stays active and broadcasts its
    label, so each receiver's inbox is exactly its neighbors' labels — the
    per-vertex "most frequent label, ties to the smallest" reduces to a
    segmented mode over the CSR slot array: sort slots by (row, label),
    collapse equal-label runs, and pick each row's best run by
    (count desc, label asc).  Integer labels make parity bit-exact,
    including the per-superstep changed-vertex aggregate.
    """

    def __init__(self, csr: CSRGraph, max_iterations: int) -> None:
        super().__init__(csr)
        self.max_iterations = max_iterations
        self.label = csr.vertex_ids.astype(np.int64, copy=True)
        self._pending = False  # full-frontier messages in flight

    def _winning_labels(self) -> np.ndarray:
        """Per-vertex most-frequent neighbor label (ties -> smallest);
        vertices without neighbors keep their current label."""
        csr = self.csr
        rows = csr.rows
        if len(rows) == 0:
            return self.label.copy()
        slot_labels = self.label[csr.indices]
        order = np.lexsort((slot_labels, rows))
        row = rows[order]
        lab = slot_labels[order]
        # Collapse equal (row, label) runs into (row, label, count).
        starts = np.empty(len(row), dtype=bool)
        starts[0] = True
        starts[1:] = (row[1:] != row[:-1]) | (lab[1:] != lab[:-1])
        run_ids = np.cumsum(starts) - 1
        counts = np.bincount(run_ids)
        run_row = row[starts]
        run_label = lab[starts]
        # Best run per row: highest count, then smallest label.
        pick = np.lexsort((run_label, -counts, run_row))
        picked_row = run_row[pick]
        first = np.empty(len(pick), dtype=bool)
        first[0] = True
        first[1:] = picked_row[1:] != picked_row[:-1]
        winners = self.label.copy()
        winners[picked_row[first]] = run_label[pick][first]
        return winners

    def step(self, superstep: int, mask: np.ndarray) -> Tuple[int, Any]:
        aggregate = 0
        if superstep > 0 and self._pending:
            new_label = self._winning_labels()
            receivers = mask & (self.csr.degrees > 0)
            changed = receivers & (new_label != self.label)
            aggregate = int(changed.sum())
            self.label[receivers] = new_label[receivers]
        if superstep < self.max_iterations:
            self.has_msg = self.csr.degrees > 0
            self._pending = True
            self.active = mask.copy()
            return self.sent_from(mask), aggregate
        self.has_msg = np.zeros(self.csr.num_vertices, dtype=bool)
        self._pending = False
        self.active = np.zeros(self.csr.num_vertices, dtype=bool)
        return 0, aggregate

    def states(self) -> Dict[int, Any]:
        return dict(zip(self.csr.vertex_ids.tolist(), self.label.tolist()))


class LabelPropagation(VertexProgram):
    """State is the vertex's current community label."""

    name = "label_propagation"

    def __init__(self, max_iterations: int = 50) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.max_iterations = max_iterations

    def initial_state(self, vertex: int, degree: int) -> int:
        return vertex

    def compute(self, vertex: int, state: int, messages: List[int],
                neighbors: List[int], ctx: Context) -> int:
        new_label = state
        if ctx.superstep > 0 and messages:
            counts: Dict[int, int] = {}
            for label in messages:
                counts[label] = counts.get(label, 0) + 1
            # Most frequent label; smaller label wins ties.
            new_label = min(counts, key=lambda lbl: (-counts[lbl], lbl))
        self._changed = (new_label != state)
        if ctx.superstep < self.max_iterations:
            ctx.send_all(neighbors, new_label)
        else:
            ctx.vote_halt()
        return new_label

    def aggregate(self, vertex: int, state: int) -> int:
        return 1 if getattr(self, "_changed", False) else 0

    def should_stop(self, aggregate: int, superstep: int) -> bool:
        # No label changed in the last superstep (skip the seeding step).
        return superstep > 1 and aggregate == 0

    def is_stationary(self) -> bool:
        return True

    def dense_kernel(self, csr: CSRGraph) -> _DenseLabelPropagation:
        return _DenseLabelPropagation(csr, self.max_iterations)
