"""PageRank — the paper's lightweight reference workload.

Standard synchronous PageRank with damping 0.85 on the undirected graph
(each edge contributes in both directions).  Vertices exchange numeric
values and do trivial arithmetic — the paper's canonical example of a
*communication-light* workload, hence ``is_stationary`` so the harness can
use the analytic latency shortcut for the 100-iteration blocks of Fig. 7a-c.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.engine.dense import DenseKernel
from repro.engine.vertex_program import Context, VertexProgram
from repro.graph.csr import CSRGraph

DAMPING = 0.85


class _DensePageRank(DenseKernel):
    """Whole-frontier PageRank: ranks and combined contributions as arrays.

    Mirrors :meth:`PageRank.compute` exactly: every vertex stays active
    through superstep ``iterations`` (isolated vertices included — they
    just never send), the per-target message combination is the sum the
    object path's combiner produces, and the rank update reads the
    combined inbox (zero where no message arrived).  Float sums are
    reassociated relative to the object path, so parity is ``allclose``
    rather than bit-exact.
    """

    def __init__(self, csr: CSRGraph, iterations: int) -> None:
        super().__init__(csr)
        self.iterations = iterations
        n = csr.num_vertices
        self.rank = np.ones(n, dtype=np.float64)
        self.incoming = np.zeros(n, dtype=np.float64)

    def step(self, superstep: int, mask: np.ndarray) -> Tuple[int, Any]:
        if superstep > 0:
            # sum(messages) is 0.0 for computed vertices with no inbox,
            # which self.incoming already encodes.
            self.rank[mask] = (1.0 - DAMPING) + DAMPING * self.incoming[mask]
        if superstep < self.iterations:
            senders = mask & (self.csr.degrees > 0)
            share = np.zeros_like(self.rank)
            share[senders] = self.rank[senders] / self.csr.degrees[senders]
            self.has_msg, self.incoming = self.scatter_sum(senders, share)
            self.active = mask.copy()
            return self.sent_from(senders), None
        self.has_msg[:] = False
        self.active[:] = False  # every computed vertex voted to halt
        return 0, None

    def states(self) -> Dict[int, Any]:
        return dict(zip(self.csr.vertex_ids.tolist(), self.rank.tolist()))


class PageRank(VertexProgram):
    """Synchronous PageRank; state is the vertex's current rank.

    Uses the engine's message combiner: rank contributions addressed to
    the same vertex are summed in flight, so each vertex receives a single
    pre-combined message — the standard Pregel optimisation.
    """

    name = "pagerank"
    #: Kernel follows the sharded contract: one trailing scatter_sum per
    #: superstep, degrees read as logical degrees (the rank share).
    shardable = True

    def __init__(self, iterations: int = 100) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations

    def combine(self, accumulated: float, message: float) -> float:
        return accumulated + message

    def initial_state(self, vertex: int, degree: int) -> float:
        return 1.0

    def compute(self, vertex: int, state: float, messages: List[float],
                neighbors: List[int], ctx: Context) -> float:
        if ctx.superstep == 0:
            rank = state
        else:
            rank = (1.0 - DAMPING) + DAMPING * sum(messages)
        if ctx.superstep < self.iterations:
            if neighbors:
                share = rank / len(neighbors)
                ctx.send_all(neighbors, share)
        else:
            ctx.vote_halt()
        return rank

    def is_stationary(self) -> bool:
        return True

    def dense_kernel(self, csr: CSRGraph) -> _DensePageRank:
        return _DensePageRank(csr, self.iterations)
