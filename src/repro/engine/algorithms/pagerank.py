"""PageRank — the paper's lightweight reference workload.

Standard synchronous PageRank with damping 0.85 on the undirected graph
(each edge contributes in both directions).  Vertices exchange numeric
values and do trivial arithmetic — the paper's canonical example of a
*communication-light* workload, hence ``is_stationary`` so the harness can
use the analytic latency shortcut for the 100-iteration blocks of Fig. 7a-c.
"""

from __future__ import annotations

from typing import List

from repro.engine.vertex_program import Context, VertexProgram

DAMPING = 0.85


class PageRank(VertexProgram):
    """Synchronous PageRank; state is the vertex's current rank.

    Uses the engine's message combiner: rank contributions addressed to
    the same vertex are summed in flight, so each vertex receives a single
    pre-combined message — the standard Pregel optimisation.
    """

    name = "pagerank"

    def __init__(self, iterations: int = 100) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations

    def combine(self, accumulated: float, message: float) -> float:
        return accumulated + message

    def initial_state(self, vertex: int, degree: int) -> float:
        return 1.0

    def compute(self, vertex: int, state: float, messages: List[float],
                neighbors: List[int], ctx: Context) -> float:
        if ctx.superstep == 0:
            rank = state
        else:
            rank = (1.0 - DAMPING) + DAMPING * sum(messages)
        if ctx.superstep < self.iterations:
            if neighbors:
                share = rank / len(neighbors)
                ctx.send_all(neighbors, share)
        else:
            ctx.vote_halt()
        return rank

    def is_stationary(self) -> bool:
        return True
