"""Greedy parallel graph coloring (the PowerGraph coloring workload).

Synchronous conflict-resolution coloring: every vertex announces its color;
on conflict the lower-priority endpoint (smaller degree, then smaller id)
picks the smallest color unused by its neighbors.  Converges to a proper
coloring; the paper's Fig. 7e runs it in blocks of 50 iterations on the Web
graph.  Activity stays near-total until late convergence, so the harness
treats it as stationary for block-latency purposes.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.engine.vertex_program import Context, VertexProgram

# Message: (sender, sender_color, sender_priority)
_Message = Tuple[int, int, Tuple[int, int]]


class GreedyColoring(VertexProgram):
    """State is the vertex's current color (non-negative int)."""

    name = "coloring"

    def __init__(self, max_iterations: int = 100) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.max_iterations = max_iterations

    @staticmethod
    def _priority(vertex: int, degree: int) -> Tuple[int, int]:
        """Higher tuple wins conflicts (high degree first, then high id)."""
        return (degree, vertex)

    def initial_state(self, vertex: int, degree: int) -> int:
        return 0

    def compute(self, vertex: int, state: int, messages: List[_Message],
                neighbors: List[int], ctx: Context) -> int:
        my_priority = self._priority(vertex, len(neighbors))
        color = state
        if ctx.superstep > 0:
            # Colors my stronger neighbors currently hold.
            blocked = {msg_color for sender, msg_color, priority in messages
                       if priority > my_priority}
            conflicted = any(
                msg_color == color and priority > my_priority
                for sender, msg_color, priority in messages)
            if conflicted:
                color = 0
                while color in blocked:
                    color += 1
        if ctx.superstep < self.max_iterations:
            ctx.send_all(neighbors, (vertex, color, my_priority))
        else:
            ctx.vote_halt()
        return color

    def is_stationary(self) -> bool:
        return True
