"""Vertex-program API (Pregel-style "think like a vertex").

A :class:`VertexProgram` defines per-vertex state and a ``compute`` step
invoked once per superstep for every active vertex.  Vertices communicate
by sending messages along edges; a vertex stays active while it sends or
receives messages (or until it halts).  The engine executes programs on the
logical graph, so algorithm results are exact regardless of partitioning —
the partitioning only affects the simulated latency.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Tuple


class Context:
    """Per-superstep facilities handed to ``compute``."""

    def __init__(self, superstep: int, num_vertices: int) -> None:
        self.superstep = superstep
        self.num_vertices = num_vertices
        self._outbox: List[Tuple[int, Any]] = []
        self._halted = False

    def send(self, target: int, message: Any) -> None:
        """Send ``message`` to ``target`` for delivery next superstep."""
        self._outbox.append((target, message))

    def send_all(self, targets: Iterable[int], message: Any) -> None:
        for target in targets:
            self.send(target, message)

    def vote_halt(self) -> None:
        """Deactivate this vertex until a message wakes it."""
        self._halted = True

    @property
    def outbox(self) -> List[Tuple[int, Any]]:
        return self._outbox

    @property
    def halted(self) -> bool:
        return self._halted

    def _reset(self) -> None:
        """Recycle this context for the next vertex of the same superstep.

        The engine reuses one ``Context`` per superstep instead of
        allocating one per vertex; a fresh outbox list (rather than
        ``clear()``) keeps any reference a program captured intact.
        """
        self._outbox = []
        self._halted = False


class VertexProgram:
    """Base class for vertex-centric algorithms.

    Subclasses implement :meth:`initial_state` and :meth:`compute`; the
    engine owns iteration and message routing.
    """

    #: Name used by cost-model presets and reports.
    name = "abstract"

    #: True when this program's :meth:`dense_kernel` follows the sharded
    #: execution contract (see :mod:`repro.engine.dense`), so the cluster
    #: runtime (:mod:`repro.cluster`) may run it shard-locally with
    #: master/mirror replica synchronisation.  Programs without the flag
    #: (or without a kernel) run on the cluster engine's unsharded
    #: fallback path instead.
    shardable = False

    def initial_state(self, vertex: int, degree: int) -> Any:
        """State of ``vertex`` before superstep 0."""
        raise NotImplementedError

    def compute(self, vertex: int, state: Any, messages: List[Any],
                neighbors: List[int], ctx: Context) -> Any:
        """One superstep for ``vertex``; return the new state.

        ``messages`` are those sent to this vertex in the previous
        superstep; ``neighbors`` is the vertex's adjacency list.  Use
        ``ctx.send`` / ``ctx.vote_halt`` for control.
        """
        raise NotImplementedError

    def is_stationary(self) -> bool:
        """True if every superstep activates (nearly) all vertices.

        Stationary programs admit the analytic latency shortcut
        (:meth:`repro.engine.cost.CostModel.iterations_cost_ms`).
        """
        return False

    # ------------------------------------------------------------------
    # Optional hooks
    # ------------------------------------------------------------------
    def combine(self, accumulated: Any, message: Any) -> Any:
        """Optional message combiner (Pregel-style).

        When overridden (returning anything but ``NotImplemented``), the
        engine folds all messages addressed to one vertex into a single
        value instead of queueing a list — e.g. PageRank sums its float
        contributions.  ``compute`` then receives a one-element message
        list containing the combined value.
        """
        return NotImplemented

    def aggregate(self, vertex: int, state: Any) -> Any:
        """Optional per-vertex contribution to a global aggregate.

        After every superstep the engine sums the non-``None``
        contributions of all computed vertices and records the total in
        the report (and feeds it to :meth:`should_stop`).
        """
        return None

    def should_stop(self, aggregate: Any, superstep: int) -> bool:
        """Optional global convergence test, given the superstep aggregate."""
        return False

    def dense_kernel(self, csr) -> Any:
        """Optional vectorized backend for ``Engine(mode="dense")``.

        Return a :class:`~repro.engine.dense.DenseKernel` implementing
        this program's supersteps as whole-frontier numpy operations over
        the given :class:`~repro.graph.csr.CSRGraph`, or ``None`` (the
        default) to run on the per-vertex object path.  A kernel must be
        result-equivalent to :meth:`compute`: identical states, superstep
        and message counts, and aggregates (bit-identical for integer
        state, floating-point-reassociation close for float state).
        """
        return None
