"""The BSP engine: superstep loop, message routing, latency simulation.

Runs a :class:`~repro.engine.vertex_program.VertexProgram` over a logical
:class:`~repro.graph.Graph` while charging simulated latency from a
:class:`~repro.engine.cost.CostModel` applied to the partitioning's
:class:`~repro.engine.placement.Placement`.  Superstep semantics follow
Pregel: all vertices start active; a vertex deactivates by voting to halt
and reactivates when it receives a message; execution stops when no vertex
is active and no messages are in flight, or after ``max_supersteps``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.graph.graph import Graph
from repro.engine.cost import CostModel, SuperstepCost
from repro.engine.placement import Placement
from repro.engine.vertex_program import Context, VertexProgram


@dataclass
class SimulationReport:
    """Result of one engine run."""

    algorithm: str
    supersteps: int
    latency_ms: float
    superstep_costs: List[SuperstepCost]
    states: Dict[int, Any]
    messages_sent: int
    converged: bool
    aggregates: List[Any] = None  # one entry per superstep (None if unused)

    @property
    def average_superstep_ms(self) -> float:
        if not self.superstep_costs:
            return 0.0
        return sum(c.total_ms for c in self.superstep_costs) / len(
            self.superstep_costs)


class Engine:
    """Deterministic BSP executor with placement-driven latency."""

    def __init__(self, graph: Graph, placement: Placement,
                 cost_model: Optional[CostModel] = None) -> None:
        self.graph = graph
        self.placement = placement
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self._stats = placement.stats()
        # Adjacency snapshot: vertex programs receive plain lists.
        self._neighbors: Dict[int, List[int]] = {
            v: sorted(graph.neighbors(v)) for v in graph.vertices()}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, program: VertexProgram,
            max_supersteps: int = 100) -> SimulationReport:
        """Execute ``program`` until convergence or ``max_supersteps``."""
        if max_supersteps < 1:
            raise ValueError("max_supersteps must be >= 1")
        vertices = list(self._neighbors)
        num_vertices = len(vertices)
        states: Dict[int, Any] = {
            v: program.initial_state(v, len(self._neighbors[v]))
            for v in vertices}
        # A program opts into combining by overriding the hook.
        use_combiner = type(program).combine is not VertexProgram.combine
        active: Set[int] = set(vertices)
        inbox: Dict[int, List[Any]] = {}
        costs: List[SuperstepCost] = []
        aggregates: List[Any] = []
        total_messages = 0
        converged = False
        superstep = 0
        while superstep < max_supersteps:
            if not active and not inbox:
                converged = True
                break
            compute_set = active | set(inbox)
            next_inbox: Dict[int, List[Any]] = {}
            next_active: Set[int] = set()
            sent_this_step = 0
            aggregate: Any = None
            for vertex in compute_set:
                ctx = Context(superstep, num_vertices)
                messages = inbox.get(vertex, [])
                states[vertex] = program.compute(
                    vertex, states[vertex], messages,
                    self._neighbors[vertex], ctx)
                for target, message in ctx.outbox:
                    if target not in self._neighbors:
                        raise KeyError(
                            f"message to unknown vertex {target} "
                            f"from {vertex}")
                    if use_combiner:
                        if target in next_inbox:
                            next_inbox[target][0] = program.combine(
                                next_inbox[target][0], message)
                        else:
                            next_inbox[target] = [message]
                    else:
                        next_inbox.setdefault(target, []).append(message)
                sent_this_step += len(ctx.outbox)
                if not ctx.halted:
                    next_active.add(vertex)
                contribution = program.aggregate(vertex, states[vertex])
                if contribution is not None:
                    aggregate = (contribution if aggregate is None
                                 else aggregate + contribution)
            active_fraction = (len(compute_set) / num_vertices
                               if num_vertices else 0.0)
            costs.append(self.cost_model.superstep_cost(
                self._stats, active_fraction))
            aggregates.append(aggregate)
            total_messages += sent_this_step
            inbox = next_inbox
            active = next_active
            superstep += 1
            if program.should_stop(aggregate, superstep):
                converged = True
                break
        else:
            converged = not active and not inbox
        return SimulationReport(
            algorithm=program.name,
            supersteps=len(costs),
            latency_ms=sum(c.total_ms for c in costs),
            superstep_costs=costs,
            states=states,
            messages_sent=total_messages,
            converged=converged,
            aggregates=aggregates,
        )

    # ------------------------------------------------------------------
    # Analytic shortcut for stationary workloads
    # ------------------------------------------------------------------
    def stationary_latency_ms(self, iterations: int,
                              active_fraction: float = 1.0) -> float:
        """Latency of ``iterations`` identical supersteps (e.g. PageRank).

        Equivalent to running a stationary program for ``iterations``
        supersteps but O(1): used by the benchmark harness so that the
        paper's 100-iteration PageRank blocks stay cheap in pure Python.
        """
        return self.cost_model.iterations_cost_ms(
            self.placement, iterations, active_fraction)
