"""The BSP engine: superstep loop, message routing, latency simulation.

Runs a :class:`~repro.engine.vertex_program.VertexProgram` over a logical
:class:`~repro.graph.Graph` while charging simulated latency from a
:class:`~repro.engine.cost.CostModel` applied to the partitioning's
:class:`~repro.engine.placement.Placement`.  Superstep semantics follow
Pregel: all vertices start active; a vertex deactivates by voting to halt
and reactivates when it receives a message; execution stops when no vertex
is active and no messages are in flight, or after ``max_supersteps``.

Two execution backends share those semantics:

* ``mode="object"`` — the reference interpreter: one ``compute`` call per
  active vertex per superstep over dict/set state.
* ``mode="dense"`` — vectorized: supersteps run as whole-frontier numpy
  operations over a :class:`~repro.graph.csr.CSRGraph` when the program
  provides a :meth:`~repro.engine.vertex_program.VertexProgram.dense_kernel`;
  programs without one transparently fall back to the object path.
  Results are equivalent by construction (the differential test layer
  asserts it) and latency is charged from the same ``active_fraction``,
  so both modes produce identical cost traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro import obs
from repro.graph.graph import Graph
from repro.graph.csr import CSRGraph
from repro.engine.cost import CostModel, SuperstepCost
from repro.engine.placement import Placement
from repro.engine.vertex_program import Context, VertexProgram

#: Engine execution backends.
MODES = ("object", "dense")


@dataclass
class SimulationReport:
    """Result of one engine run."""

    algorithm: str
    supersteps: int
    latency_ms: float
    superstep_costs: List[SuperstepCost]
    states: Dict[int, Any]
    messages_sent: int
    converged: bool
    #: One entry per superstep (``None`` where the program has no aggregate).
    aggregates: List[Any] = field(default_factory=list)

    @property
    def average_superstep_ms(self) -> float:
        if not self.superstep_costs:
            return 0.0
        return sum(c.total_ms for c in self.superstep_costs) / len(
            self.superstep_costs)


class Engine:
    """Deterministic BSP executor with placement-driven latency."""

    def __init__(self, graph: Graph, placement: Placement,
                 cost_model: Optional[CostModel] = None,
                 mode: str = "object") -> None:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; known: {MODES}")
        self.graph = graph
        self.placement = placement
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.mode = mode
        self._stats = placement.stats()
        self._object_neighbors: Optional[Dict[int, List[int]]] = None
        self._csr: Optional[CSRGraph] = None

    @property
    def csr(self) -> CSRGraph:
        """CSR snapshot of the graph (built once, on first dense run)."""
        if self._csr is None:
            self._csr = CSRGraph.from_graph(self.graph)
        return self._csr

    @property
    def _neighbors(self) -> Dict[int, List[int]]:
        """Adjacency snapshot for the object path (vertex programs receive
        plain sorted lists).  Lazy, so pure dense-kernel runs never pay
        for the dict-of-lists representation."""
        if self._object_neighbors is None:
            self._object_neighbors = {
                v: sorted(self.graph.neighbors(v))
                for v in self.graph.vertices()}
        return self._object_neighbors

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, program: VertexProgram,
            max_supersteps: int = 100) -> SimulationReport:
        """Execute ``program`` until convergence or ``max_supersteps``."""
        if max_supersteps < 1:
            raise ValueError("max_supersteps must be >= 1")
        if (self.mode == "dense"
                and type(program).dense_kernel
                is not VertexProgram.dense_kernel):
            kernel = program.dense_kernel(self.csr)
            if kernel is not None:
                return self._run_dense(program, kernel, max_supersteps)
            # No kernel after all: fall through to the object path.
        return self._run_object(program, max_supersteps)

    def _run_object(self, program: VertexProgram,
                    max_supersteps: int) -> SimulationReport:
        """Reference interpreter: one ``compute`` call per active vertex."""
        known = self._neighbors
        vertices = list(known)
        num_vertices = len(vertices)
        compute = program.compute
        states: Dict[int, Any] = {
            v: program.initial_state(v, len(known[v])) for v in vertices}
        # A program opts into combining by overriding the hook.
        use_combiner = type(program).combine is not VertexProgram.combine
        active: Set[int] = set(vertices)
        inbox: Dict[int, List[Any]] = {}
        costs: List[SuperstepCost] = []
        aggregates: List[Any] = []
        total_messages = 0
        converged = False
        superstep = 0
        while superstep < max_supersteps:
            if not active and not inbox:
                converged = True
                break
            compute_set = active | set(inbox)
            next_inbox: Dict[int, List[Any]] = {}
            next_active: Set[int] = set()
            sent_this_step = 0
            aggregate: Any = None
            # One recycled Context per superstep (``Context._reset``)
            # instead of an allocation per vertex.
            ctx = Context(superstep, num_vertices)
            with obs.span("engine.superstep", mode="object",
                          program=program.name, superstep=superstep,
                          active=len(compute_set)):
                for vertex in compute_set:
                    messages = inbox.get(vertex, [])
                    states[vertex] = compute(
                        vertex, states[vertex], messages, known[vertex], ctx)
                    outbox = ctx.outbox
                    for target, message in outbox:
                        if target not in known:
                            raise KeyError(
                                f"message to unknown vertex {target} "
                                f"from {vertex}")
                        if use_combiner:
                            if target in next_inbox:
                                next_inbox[target][0] = program.combine(
                                    next_inbox[target][0], message)
                            else:
                                next_inbox[target] = [message]
                        else:
                            next_inbox.setdefault(target, []).append(message)
                    sent_this_step += len(outbox)
                    if not ctx.halted:
                        next_active.add(vertex)
                    contribution = program.aggregate(vertex, states[vertex])
                    if contribution is not None:
                        aggregate = (contribution if aggregate is None
                                     else aggregate + contribution)
                    ctx._reset()
            obs.counter("repro_engine_supersteps_total",
                        mode="object", program=program.name).inc()
            obs.counter("repro_engine_messages_total", mode="object",
                        program=program.name).inc(sent_this_step)
            active_fraction = (len(compute_set) / num_vertices
                               if num_vertices else 0.0)
            costs.append(self.cost_model.superstep_cost(
                self._stats, active_fraction))
            aggregates.append(aggregate)
            total_messages += sent_this_step
            inbox = next_inbox
            active = next_active
            superstep += 1
            if program.should_stop(aggregate, superstep):
                converged = True
                break
        else:
            converged = not active and not inbox
        return SimulationReport(
            algorithm=program.name,
            supersteps=len(costs),
            latency_ms=sum(c.total_ms for c in costs),
            superstep_costs=costs,
            states=states,
            messages_sent=total_messages,
            converged=converged,
            aggregates=aggregates,
        )

    def _run_dense(self, program: VertexProgram, kernel,
                   max_supersteps: int) -> SimulationReport:
        """Vectorized loop: one ``DenseKernel.step`` per superstep.

        Mirrors ``_run_object`` exactly — compute set, activation,
        convergence, message counting and the ``active_fraction`` the cost
        model is charged from — so the two backends differ only in how a
        superstep's per-vertex work is executed.
        """
        num_vertices = self.csr.num_vertices
        costs: List[SuperstepCost] = []
        aggregates: List[Any] = []
        total_messages = 0
        converged = False
        superstep = 0
        while superstep < max_supersteps:
            mask = kernel.compute_mask()
            computed = int(mask.sum())
            if computed == 0:
                converged = True
                break
            with obs.span("engine.superstep", mode="dense",
                          program=program.name, superstep=superstep,
                          active=computed):
                sent, aggregate = kernel.step(superstep, mask)
            obs.counter("repro_engine_supersteps_total",
                        mode="dense", program=program.name).inc()
            obs.counter("repro_engine_messages_total",
                        mode="dense", program=program.name).inc(int(sent))
            active_fraction = (computed / num_vertices
                               if num_vertices else 0.0)
            costs.append(self.cost_model.superstep_cost(
                self._stats, active_fraction))
            aggregates.append(aggregate)
            total_messages += int(sent)
            superstep += 1
            if program.should_stop(aggregate, superstep):
                converged = True
                break
        else:
            converged = not kernel.compute_mask().any()
        return SimulationReport(
            algorithm=program.name,
            supersteps=len(costs),
            latency_ms=sum(c.total_ms for c in costs),
            superstep_costs=costs,
            states=kernel.states(),
            messages_sent=total_messages,
            converged=converged,
            aggregates=aggregates,
        )

    # ------------------------------------------------------------------
    # Analytic shortcut for stationary workloads
    # ------------------------------------------------------------------
    def stationary_latency_ms(self, iterations: int,
                              active_fraction: float = 1.0) -> float:
        """Latency of ``iterations`` identical supersteps (e.g. PageRank).

        Equivalent to running a stationary program for ``iterations``
        supersteps but O(1): used by the benchmark harness so that the
        paper's 100-iteration PageRank blocks stay cheap in pure Python.
        """
        return self.cost_model.iterations_cost_ms(
            self.placement, iterations, active_fraction)
