"""Placement: how a vertex-cut partitioning maps onto worker machines.

Derived from an edge → partition assignment plus a partition → machine map
(by default ``k`` partitions are distributed in contiguous blocks over ``z``
machines, mirroring the paper's setup of 8 machines × 4 partitions).  The
placement exposes the quantities the cost model needs:

* edges per machine (compute load),
* per-vertex machine span (which machines hold a replica),
* per-machine replica-synchronisation message counts — a vertex spanning
  ``s`` machines costs ``2·(s − 1)`` messages per superstep (gather to the
  master, scatter back), the PowerGraph synchronisation pattern the paper's
  replication-degree objective stands in for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.graph.graph import Edge


@dataclass(frozen=True)
class PlacementStats:
    """Aggregates the cost model consumes.

    Replica synchronisation is counted at *partition* granularity — each
    partition is a worker process holding replicas, exactly as in
    PowerGraph/GrapH — and split into remote messages (master and mirror
    partitions on different machines, crossing the network) and local
    messages (same machine: no network hop, but still serialisation and
    replica-maintenance work, so cheaper rather than free).
    """

    edges_per_machine: Dict[int, int]
    remote_sync_per_machine: Dict[int, int]
    local_sync_per_machine: Dict[int, int]
    replication_degree: float
    machine_span_degree: float

    @property
    def sync_messages_per_machine(self) -> Dict[int, int]:
        """Total (remote + local) sync messages per machine."""
        return {m: self.remote_sync_per_machine.get(m, 0)
                + self.local_sync_per_machine.get(m, 0)
                for m in self.edges_per_machine}


class Placement:
    """Edge-to-partition-to-machine layout of a partitioned graph."""

    def __init__(self, assignments: Mapping[Edge, int],
                 partitions: Sequence[int],
                 num_machines: int,
                 machine_of_partition: Optional[Mapping[int, int]] = None
                 ) -> None:
        if num_machines < 1:
            raise ValueError("num_machines must be >= 1")
        self.partitions = list(partitions)
        self.num_machines = num_machines
        if machine_of_partition is None:
            machine_of_partition = self.contiguous_machine_map(
                self.partitions, num_machines)
        self.machine_of_partition = dict(machine_of_partition)
        missing = [p for p in self.partitions
                   if p not in self.machine_of_partition]
        if missing:
            raise ValueError(f"partitions without a machine: {missing}")

        self.partition_edges: Dict[int, List[Edge]] = {
            p: [] for p in self.partitions}
        self.vertex_partitions: Dict[int, Set[int]] = {}
        for edge, partition in assignments.items():
            if partition not in self.partition_edges:
                raise ValueError(f"assignment to unknown partition {partition}")
            self.partition_edges[partition].append(edge)
            for vertex in (edge.u, edge.v):
                self.vertex_partitions.setdefault(vertex, set()).add(partition)

        self.vertex_machines: Dict[int, Set[int]] = {
            v: {self.machine_of_partition[p] for p in parts}
            for v, parts in self.vertex_partitions.items()}
        self.master_machine: Dict[int, int] = {
            v: min(machines) for v, machines in self.vertex_machines.items()}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def contiguous_machine_map(partitions: Sequence[int],
                               num_machines: int) -> Dict[int, int]:
        """Assign partitions to machines in contiguous, near-equal blocks.

        Matches the paper's deployment: machine ``i`` hosts the ``k/z``
        partitions its own partitioner instance (spotlight) filled.
        """
        k = len(partitions)
        base, extra = divmod(k, num_machines)
        mapping: Dict[int, int] = {}
        index = 0
        for machine in range(num_machines):
            size = base + (1 if machine < extra else 0)
            for _ in range(size):
                if index < k:
                    mapping[partitions[index]] = machine
                    index += 1
        return mapping

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def edges_on_machine(self, machine: int) -> int:
        return sum(len(self.partition_edges[p])
                   for p in self.partitions
                   if self.machine_of_partition[p] == machine)

    def span(self, vertex: int) -> int:
        """Number of machines holding a replica of ``vertex``."""
        return len(self.vertex_machines.get(vertex, ()))

    def stats(self) -> PlacementStats:
        """Precompute the per-machine aggregates for the cost model.

        A vertex replicated on ``s`` partitions costs ``2·(s − 1)`` message
        pairs per superstep: the master partition (its lowest partition id)
        exchanges one gather and one scatter message with each mirror
        partition.  Each message charges both endpoint machines; it counts
        as *remote* when master and mirror live on different machines and
        *local* otherwise.
        """
        edges_per_machine = {m: 0 for m in range(self.num_machines)}
        for partition, edges in self.partition_edges.items():
            edges_per_machine[self.machine_of_partition[partition]] += len(edges)
        remote = {m: 0 for m in range(self.num_machines)}
        local = {m: 0 for m in range(self.num_machines)}
        for vertex, parts in self.vertex_partitions.items():
            if len(parts) <= 1:
                continue
            master_part = min(parts)
            master_machine = self.machine_of_partition[master_part]
            for partition in parts:
                if partition == master_part:
                    continue
                mirror_machine = self.machine_of_partition[partition]
                if mirror_machine == master_machine:
                    # Gather + scatter, both on one machine.
                    local[master_machine] += 2
                    local[mirror_machine] += 2
                else:
                    remote[master_machine] += 2
                    remote[mirror_machine] += 2
        num_vertices = max(1, len(self.vertex_partitions))
        replication = (sum(len(p) for p in self.vertex_partitions.values())
                       / num_vertices)
        machine_span = (sum(len(m) for m in self.vertex_machines.values())
                        / num_vertices)
        return PlacementStats(
            edges_per_machine=edges_per_machine,
            remote_sync_per_machine=remote,
            local_sync_per_machine=local,
            replication_degree=replication,
            machine_span_degree=machine_span,
        )
