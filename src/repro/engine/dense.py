"""Dense (vectorized) superstep kernels over a CSR graph.

The object-mode engine interprets a vertex program one vertex at a time;
``mode="dense"`` instead runs each superstep as a handful of whole-frontier
numpy operations over a :class:`~repro.graph.csr.CSRGraph`.  A program
opts in by returning a :class:`DenseKernel` from
:meth:`~repro.engine.vertex_program.VertexProgram.dense_kernel`; programs
without a kernel transparently fall back to the object path.

A kernel owns the dense mirror of the engine's per-superstep state:

* ``self.active`` — boolean mask of vertices that did not vote to halt in
  the previous superstep (all vertices before superstep 0);
* a message buffer (kernel-specific arrays) plus a boolean receive mask.

The engine's dense loop only asks two things of a kernel each superstep:
the *compute mask* (``active | has-messages``, exactly the object path's
``active | set(inbox)``), and a :meth:`DenseKernel.step` that advances all
masked vertices at once and reports ``(messages_sent, aggregate)`` with
object-path-identical counting (one message per ``ctx.send``, i.e. the
sender's degree for a ``send_all``).  Latency is charged by the engine
from the same ``active_fraction`` as in object mode, so dense and object
runs produce identical cost traces.

Message exchange is expressed with the scatter helpers below: a send mask
selects adjacency slots via the CSR ``rows`` array, and per-target
combination is a segment sum (``np.bincount``), min (``np.minimum.at``)
or count over the selected ``indices``.

Sharded execution (the cluster runtime's contract)
--------------------------------------------------
:mod:`repro.cluster` runs one kernel instance per partition over a
:class:`~repro.graph.shard.ShardCSR` and keeps replicas consistent by
combining the scatter helpers' per-shard partial results at each vertex's
master replica (sum/min/count are all associative) and broadcasting the
combined value back to the mirrors.  A kernel is safe to shard — and its
program may declare :attr:`~repro.engine.vertex_program.VertexProgram.
shardable` — when it follows the message-buffer discipline:

* all inter-vertex data flows through ``scatter_sum`` / ``scatter_min`` /
  ``scatter_count``, at most one call per superstep, issued as the *last*
  data exchange of :meth:`step` (results are stored, and only read in the
  next superstep — never consumed within the same ``step`` call);
* ``csr.degrees`` is read as the vertex's *logical* (whole-graph) degree
  — true on a shard too, where :class:`~repro.graph.shard.ShardCSR`
  presents global degrees while the slot layout stays shard-local;
* per-vertex aggregate contributions are masked with ``self.owned``.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.graph.csr import CSRGraph


class DenseKernel:
    """One vertex program's vectorized superstep implementation.

    Subclasses allocate their state arrays in ``__init__`` and implement
    :meth:`step` and :meth:`states`; the default :meth:`compute_mask`
    covers the standard Pregel activation rule.
    """

    def __init__(self, csr: CSRGraph) -> None:
        self.csr = csr
        n = csr.num_vertices
        #: Vertices that did not halt in the previous superstep.
        self.active = np.ones(n, dtype=bool)
        #: Vertices with a pending message for the next superstep.
        self.has_msg = np.zeros(n, dtype=bool)
        #: Vertices this kernel instance *owns* for global accounting.
        #: All of them on a whole-graph run; under the sharded cluster
        #: runtime (:mod:`repro.cluster`) only master replicas, so that
        #: per-shard aggregate contributions sum to the global aggregate
        #: without double-counting mirrors.  Kernels computing aggregates
        #: must mask their per-vertex contributions with ``self.owned``.
        self.owned = np.ones(n, dtype=bool)

    # ------------------------------------------------------------------
    # Engine-facing protocol
    # ------------------------------------------------------------------
    def compute_mask(self) -> np.ndarray:
        """Vertices to compute this superstep (``active | inbox``)."""
        return self.active | self.has_msg

    def step(self, superstep: int, mask: np.ndarray) -> Tuple[int, Any]:
        """Advance all vertices in ``mask`` one superstep.

        Returns ``(messages_sent, aggregate)`` where ``messages_sent``
        counts individual sends exactly as the object path does and
        ``aggregate`` is the superstep's global aggregate (``None`` if the
        program does not aggregate).
        """
        raise NotImplementedError

    def states(self) -> Dict[int, Any]:
        """Final per-vertex states, keyed by *original* vertex id."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Scatter helpers (send to all neighbors, combine per target)
    # ------------------------------------------------------------------
    def _sending_slots(self, send_mask: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """``(targets, sources)`` of every adjacency slot whose source
        vertex is in ``send_mask`` (full-frontier sends skip the filter —
        slots only exist for vertices with neighbors)."""
        csr = self.csr
        sel = send_mask[csr.rows]
        if sel.all():
            return csr.indices, csr.rows
        return csr.indices[sel], csr.rows[sel]

    def scatter_sum(self, send_mask: np.ndarray,
                    values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Each sender sends ``values[sender]`` to all neighbors; messages
        addressed to one target are summed.  Returns ``(recv_mask, sums)``.
        """
        n = self.csr.num_vertices
        targets, sources = self._sending_slots(send_mask)
        sums = np.bincount(targets, weights=values[sources], minlength=n)
        recv = np.zeros(n, dtype=bool)
        recv[targets] = True
        return recv, sums

    def scatter_min(self, send_mask: np.ndarray, values: np.ndarray,
                    sentinel: Any) -> Tuple[np.ndarray, np.ndarray]:
        """Like :meth:`scatter_sum` but combines with ``min``; targets
        without a message hold ``sentinel``."""
        n = self.csr.num_vertices
        targets, sources = self._sending_slots(send_mask)
        mins = np.full(n, sentinel, dtype=values.dtype)
        np.minimum.at(mins, targets, values[sources])
        recv = np.zeros(n, dtype=bool)
        recv[targets] = True
        return recv, mins

    def scatter_count(self, send_mask: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Each sender sends one unit message to all neighbors; messages
        are counted per target.  Returns ``(recv_mask, counts)``."""
        n = self.csr.num_vertices
        targets, _ = self._sending_slots(send_mask)
        counts = np.bincount(targets, minlength=n)
        recv = np.zeros(n, dtype=bool)
        recv[targets] = True
        return recv, counts

    def sent_from(self, send_mask: np.ndarray) -> int:
        """Message count of a ``send_all`` from every vertex in the mask."""
        return int(self.csr.degrees[send_mask].sum())
