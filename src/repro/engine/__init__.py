"""Distributed graph-processing engine simulator.

A deterministic stand-in for the GrapH/PowerGraph-style engine the paper
runs on its 8-node cluster.  Vertex programs execute Pregel-style supersteps
on the logical graph (results are exact); *latency* is simulated from the
placement: per-superstep time is the maximum over machines of local compute
plus replica-synchronisation communication, so partitioning quality
(replication degree, balance) maps onto processing latency through exactly
the mechanism the paper describes.
"""

from repro.engine.placement import Placement
from repro.engine.cost import CostModel, SuperstepCost
from repro.engine.dense import DenseKernel
from repro.engine.runtime import Engine, SimulationReport
from repro.engine.vertex_program import Context, VertexProgram

__all__ = [
    "Placement",
    "CostModel",
    "SuperstepCost",
    "DenseKernel",
    "Engine",
    "SimulationReport",
    "Context",
    "VertexProgram",
]
