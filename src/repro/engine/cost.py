"""Latency cost model of the simulated cluster.

Translates a :class:`~repro.engine.placement.Placement` into per-superstep
latency.  The model mirrors the paper's testbed mechanics:

* **compute** — each machine scans the edges of its partitions for every
  active vertex: ``edge_compute_ms × active_fraction × edges_on_machine``.
* **communication** — replica synchronisation messages cross the (shared,
  1-GbE-like) network: ``message_ms × active_fraction × sync_messages``.
* a superstep finishes when the *slowest* machine finishes (BSP barrier),
  so imbalance directly stretches latency.

Workload weight knobs (``compute_weight``, ``comm_weight``) express how
heavy an algorithm's per-edge work and per-message payload are relative to
PageRank (weight 1.0) — the paper distinguishes "lightweight" PageRank from
communication- and computation-heavy subgraph isomorphism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.engine.placement import Placement, PlacementStats


@dataclass(frozen=True)
class SuperstepCost:
    """Latency breakdown of one superstep (milliseconds)."""

    compute_ms: float
    comm_ms: float
    total_ms: float
    bottleneck_machine: int


@dataclass
class CostModel:
    """Deterministic cluster cost model.

    Defaults are calibrated so that a ~100k-edge graph on 8 machines yields
    PageRank iterations in the tens of milliseconds of simulated time —
    scaled-down but proportionate to the paper's cluster numbers.
    """

    edge_compute_ms: float = 0.0005
    message_ms: float = 0.002
    #: Relative cost of a same-machine replica-sync message: no network
    #: hop, but serialisation and replica maintenance remain.
    local_message_factor: float = 0.3
    superstep_overhead_ms: float = 1.0
    compute_weight: float = 1.0
    comm_weight: float = 1.0

    def superstep_cost(self, stats: PlacementStats,
                       active_fraction: float = 1.0) -> SuperstepCost:
        """Latency of one superstep with the given fraction of active vertices."""
        if not 0.0 <= active_fraction <= 1.0:
            raise ValueError(
                f"active_fraction must be in [0, 1], got {active_fraction}")
        worst_total = 0.0
        worst_compute = 0.0
        worst_comm = 0.0
        bottleneck = 0
        for machine, edges in stats.edges_per_machine.items():
            compute = (self.edge_compute_ms * self.compute_weight
                       * active_fraction * edges)
            weighted_msgs = (
                stats.remote_sync_per_machine.get(machine, 0)
                + self.local_message_factor
                * stats.local_sync_per_machine.get(machine, 0))
            comm = (self.message_ms * self.comm_weight * active_fraction
                    * weighted_msgs)
            total = compute + comm
            if total > worst_total:
                worst_total = total
                worst_compute = compute
                worst_comm = comm
                bottleneck = machine
        return SuperstepCost(
            compute_ms=worst_compute,
            comm_ms=worst_comm,
            total_ms=worst_total + self.superstep_overhead_ms,
            bottleneck_machine=bottleneck,
        )

    def iterations_cost_ms(self, placement: Placement, iterations: int,
                           active_fraction: float = 1.0) -> float:
        """Analytic latency of ``iterations`` stationary supersteps.

        Valid for algorithms whose activity is (near-)constant per iteration
        — PageRank and synchronous graph coloring — where every superstep
        costs the same.  Message-driven algorithms (subgraph isomorphism,
        clique search) must be *run* on the engine instead, since their
        active sets vary superstep to superstep.
        """
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        per_step = self.superstep_cost(placement.stats(), active_fraction)
        return per_step.total_ms * iterations


#: Workload presets: relative per-edge compute and per-message payload
#: weights of the paper's four algorithms (PageRank is the unit).
WORKLOAD_WEIGHTS: Dict[str, Dict[str, float]] = {
    "pagerank": {"compute_weight": 1.0, "comm_weight": 1.0},
    "coloring": {"compute_weight": 1.2, "comm_weight": 1.5},
    "subgraph_isomorphism": {"compute_weight": 4.0, "comm_weight": 6.0},
    "clique": {"compute_weight": 2.5, "comm_weight": 4.0},
}


def cost_model_for(workload: str, **overrides: float) -> CostModel:
    """Build a :class:`CostModel` preset for one of the paper's workloads."""
    if workload not in WORKLOAD_WEIGHTS:
        raise KeyError(
            f"unknown workload {workload!r}; known: {sorted(WORKLOAD_WEIGHTS)}")
    params = dict(WORKLOAD_WEIGHTS[workload])
    params.update(overrides)
    return CostModel(**params)
