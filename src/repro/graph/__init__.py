"""Graph substrate: data structures, IO, edge streams, generators, statistics."""

from repro.graph.graph import Edge, Graph
from repro.graph.csr import CSRGraph
from repro.graph.stream import (
    EdgeStream,
    FileChunkStream,
    FileEdgeStream,
    InMemoryEdgeStream,
    chunk_file_stream,
    chunk_stream,
    locally_shuffled,
    shuffled,
)
from repro.graph.generators import (
    barabasi_albert_graph,
    brain_like_graph,
    community_powerlaw_graph,
    orkut_like_graph,
    powerlaw_cluster_graph,
    rmat_graph,
    watts_strogatz_graph,
    web_like_graph,
)
from repro.graph.metis import read_metis, write_metis
from repro.graph.stats import (
    average_clustering,
    degree_histogram,
    degrees,
    GraphSummary,
    summarize,
)

__all__ = [
    "Edge",
    "Graph",
    "CSRGraph",
    "EdgeStream",
    "FileChunkStream",
    "FileEdgeStream",
    "InMemoryEdgeStream",
    "chunk_file_stream",
    "chunk_stream",
    "locally_shuffled",
    "shuffled",
    "read_metis",
    "write_metis",
    "barabasi_albert_graph",
    "brain_like_graph",
    "community_powerlaw_graph",
    "orkut_like_graph",
    "powerlaw_cluster_graph",
    "rmat_graph",
    "watts_strogatz_graph",
    "web_like_graph",
    "average_clustering",
    "degree_histogram",
    "degrees",
    "GraphSummary",
    "summarize",
]
