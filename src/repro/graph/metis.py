"""METIS adjacency-list format support.

METIS files are the lingua franca of the (edge-cut) partitioning world and
a common interchange format for graph corpora: a header line
``num_vertices num_edges`` followed by one line per vertex listing its
(1-indexed) neighbors.  Reading and writing this format lets the library
exchange graphs with METIS/ParMETIS tooling and load published corpora.
"""

from __future__ import annotations

import os

from repro.graph.graph import Graph

_COMMENT = "%"


def write_metis(path: "str | os.PathLike", graph: Graph) -> int:
    """Write ``graph`` in METIS format; return the vertex count.

    METIS requires contiguous 1-indexed vertices, so vertices are
    renumbered by sorted order; the mapping is deterministic (sorted ids).
    """
    vertices = sorted(graph.vertices())
    index = {v: i + 1 for i, v in enumerate(vertices)}
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"{len(vertices)} {graph.num_edges}\n")
        for v in vertices:
            nbrs = sorted(index[n] for n in graph.neighbors(v))
            handle.write(" ".join(str(n) for n in nbrs) + "\n")
    return len(vertices)


def read_metis(path: "str | os.PathLike") -> Graph:
    """Read a METIS adjacency file into a :class:`Graph` (0-indexed)."""
    graph = Graph()
    with open(path, "r", encoding="utf-8") as handle:
        raw = handle.readlines()
    # Comments are dropped; blank lines are kept — an isolated vertex's
    # adjacency line is legitimately empty.
    lines = [line for line in raw
             if not line.lstrip().startswith(_COMMENT)]
    while lines and not lines[0].strip():
        lines.pop(0)
    if not lines:
        raise ValueError(f"empty METIS file: {os.fspath(path)!r}")
    header = lines[0].split()
    if len(header) < 2:
        raise ValueError(f"malformed METIS header: {lines[0]!r}")
    num_vertices, num_edges = int(header[0]), int(header[1])
    body = lines[1:]
    if len(body) < num_vertices or any(
            line.strip() for line in body[num_vertices:]):
        raise ValueError(
            f"METIS header promises {num_vertices} vertices, "
            f"file has {sum(1 for _ in body)} adjacency lines")
    body = body[:num_vertices]
    for zero_based, line in enumerate(body):
        graph.add_vertex(zero_based)
        for token in line.split():
            neighbor = int(token) - 1
            if not 0 <= neighbor < num_vertices:
                raise ValueError(
                    f"neighbor {token} out of range on line "
                    f"{zero_based + 2}")
            if neighbor != zero_based:
                graph.add_edge(zero_based, neighbor)
    if graph.num_edges != num_edges:
        raise ValueError(
            f"METIS header promises {num_edges} edges, "
            f"adjacency lists encode {graph.num_edges}")
    return graph
