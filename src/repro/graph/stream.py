"""Edge streams — the input model of streaming partitioning.

A stream is a single-pass, ordered sequence of edges with a *known or
estimated length*; the adaptive window controller uses the number of
remaining edges to budget its latency preference (condition C2 in the
paper).  Streams deliberately expose an iterator-with-length interface
instead of a plain iterator.
"""

from __future__ import annotations

import os
import random
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.graph.graph import Edge
from repro.graph.io import (
    byte_spans,
    count_edges,
    count_edges_span,
    iter_edge_file,
    iter_edge_file_span,
)


class EdgeStream:
    """A single-pass stream of edges of known total length."""

    def __iter__(self) -> Iterator[Edge]:
        raise NotImplementedError

    def __len__(self) -> int:
        """Total number of edges the stream will deliver."""
        raise NotImplementedError


class InMemoryEdgeStream(EdgeStream):
    """Stream over an in-memory edge sequence (tests, generators)."""

    def __init__(self, edges: Sequence[Edge]) -> None:
        self._edges = [Edge(u, v) for u, v in edges]

    def __iter__(self) -> Iterator[Edge]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    @property
    def edges(self) -> List[Edge]:
        return self._edges


class FileEdgeStream(EdgeStream):
    """Stream edges from an edge-list file.

    The length is determined by a line-count pass on construction — the same
    mechanism the paper suggests ("line count on the graph file").
    """

    def __init__(self, path: "str | os.PathLike") -> None:
        self._path = os.fspath(path)
        self._length = count_edges(self._path)

    def __iter__(self) -> Iterator[Edge]:
        return iter_edge_file(self._path)

    def __len__(self) -> int:
        return self._length

    @property
    def path(self) -> str:
        return self._path


class FileChunkStream(EdgeStream):
    """Stream edges from one byte span ``[start, end)`` of an edge file.

    The out-of-core unit of parallel loading: a chunk is just
    ``(path, start, end)`` — trivially picklable across a process
    boundary — and iterating it reads only that slice of the file, so
    ``z`` workers can stream a multi-GB input concurrently without any
    of them materialising the graph.  Spans must lie on line boundaries
    (see :func:`repro.graph.io.byte_spans`).
    """

    def __init__(self, path: "str | os.PathLike", start: int, end: int,
                 length: Optional[int] = None) -> None:
        self._path = os.fspath(path)
        self.start = start
        self.end = end
        # Counted lazily on first __len__: only window-based partitioners
        # read stream lengths, and deferring the counting pass keeps it
        # out of the parent process — each worker counts its own slice.
        self._length = length

    def __iter__(self) -> Iterator[Edge]:
        return iter_edge_file_span(self._path, self.start, self.end)

    def __len__(self) -> int:
        if self._length is None:
            self._length = count_edges_span(self._path, self.start, self.end)
        return self._length

    @property
    def path(self) -> str:
        return self._path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FileChunkStream({self._path!r}, "
                f"[{self.start}, {self.end}))")


def chunk_file_stream(path: "str | os.PathLike",
                      num_chunks: int) -> List[FileChunkStream]:
    """Split an edge file into ``num_chunks`` out-of-core chunk streams.

    Byte-offset analogue of :func:`chunk_stream`: spans are contiguous,
    line-aligned, and cover the file exactly once, so concatenating the
    chunks reproduces :func:`repro.graph.io.iter_edge_file` order.
    Chunk sizes are near-equal in *bytes* rather than edges — the
    realistic splitting a distributed file system offers.
    """
    return [FileChunkStream(path, start, end)
            for start, end in byte_spans(path, num_chunks)]


def shuffled(edges: Iterable[Edge], seed: int = 0) -> InMemoryEdgeStream:
    """Return an in-memory stream with edges in random order.

    Streaming partitioners are sensitive to stream order; evaluations use a
    fixed seed so runs are reproducible.
    """
    rng = random.Random(seed)
    pool = list(edges)
    rng.shuffle(pool)
    return InMemoryEdgeStream(pool)


def locally_shuffled(edges: Iterable[Edge], buffer_size: int = 1024,
                     seed: int = 0) -> InMemoryEdgeStream:
    """Reservoir-style running shuffle: local disorder, global order kept.

    Maintains a buffer of ``buffer_size`` edges and repeatedly emits a
    random buffer element, so each edge lands near its original position
    but local neighborhoods are scrambled.  This models real-world edge
    files (crawl / export order): strong coarse-grained locality with fine-
    grained disorder — exactly the regime where a window-based partitioner
    can recover locality that single-edge streaming loses.
    """
    if buffer_size < 1:
        raise ValueError("buffer_size must be >= 1")
    rng = random.Random(seed)
    buffer: List[Edge] = []
    out: List[Edge] = []
    for edge in edges:
        buffer.append(edge)
        if len(buffer) > buffer_size:
            index = rng.randrange(len(buffer))
            buffer[index], buffer[-1] = buffer[-1], buffer[index]
            out.append(buffer.pop())
    rng.shuffle(buffer)
    out.extend(buffer)
    return InMemoryEdgeStream(out)


def chunk_stream(stream: EdgeStream, num_chunks: int) -> List[InMemoryEdgeStream]:
    """Split a stream into ``num_chunks`` contiguous, near-equal chunks.

    This models the parallel loading setup of the paper: each of the ``z``
    machines streams a disjoint contiguous chunk of the global edge file.
    Chunks differ in size by at most one edge, preserving the balanced-input
    assumption the spotlight optimisation relies on.
    """
    if num_chunks < 1:
        raise ValueError("num_chunks must be >= 1")
    edges = list(stream)
    total = len(edges)
    base, extra = divmod(total, num_chunks)
    chunks: List[InMemoryEdgeStream] = []
    start = 0
    for i in range(num_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(InMemoryEdgeStream(edges[start:start + size]))
        start += size
    return chunks


def interleave_chunks(chunks: Sequence[EdgeStream],
                      seed: Optional[int] = None) -> InMemoryEdgeStream:
    """Round-robin merge chunks back into one stream (utility for tests)."""
    iters = [iter(c) for c in chunks]
    rng = random.Random(seed) if seed is not None else None
    merged: List[Edge] = []
    active = list(range(len(iters)))
    while active:
        order = list(active)
        if rng is not None:
            rng.shuffle(order)
        for idx in order:
            try:
                merged.append(next(iters[idx]))
            except StopIteration:
                active.remove(idx)
    return InMemoryEdgeStream(merged)
