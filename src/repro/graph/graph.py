"""Core graph data structures.

The partitioners operate on *edge streams* and never need a materialised
graph; :class:`Graph` exists for the substrate around them — generators,
statistics, and the processing-engine simulator, which needs adjacency
lookups to run vertex programs.

Vertices are plain integers.  Edges are undirected for partitioning purposes
(vertex-cut replication is symmetric in the endpoints) and stored in a
canonical ``(min, max)`` orientation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, NamedTuple, Set, Tuple


class Edge(NamedTuple):
    """An undirected edge between vertices ``u`` and ``v``."""

    u: int
    v: int

    def canonical(self) -> "Edge":
        """Return the edge with endpoints ordered ``u <= v``."""
        if self.u <= self.v:
            return self
        return Edge(self.v, self.u)

    def other(self, vertex: int) -> int:
        """Return the endpoint that is not ``vertex``.

        Raises ``ValueError`` if ``vertex`` is not an endpoint.
        """
        if vertex == self.u:
            return self.v
        if vertex == self.v:
            return self.u
        raise ValueError(f"vertex {vertex} is not incident to {self}")

    def is_loop(self) -> bool:
        """Return True if both endpoints coincide."""
        return self.u == self.v


class Graph:
    """A simple undirected graph backed by adjacency sets.

    Parallel edges are collapsed; self-loops are rejected because vertex-cut
    partitioning (and the paper's datasets) treat them as degenerate.
    """

    def __init__(self, edges: Iterable[Tuple[int, int]] = ()) -> None:
        self._adj: Dict[int, Set[int]] = {}
        self._num_edges = 0
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: int) -> None:
        """Ensure ``v`` exists in the graph (possibly isolated)."""
        self._adj.setdefault(v, set())

    def add_edge(self, u: int, v: int) -> bool:
        """Insert edge ``(u, v)``; return True if it was new."""
        if u == v:
            raise ValueError(f"self-loop ({u}, {v}) not supported")
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> Iterator[int]:
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Yield each edge exactly once, in canonical orientation."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    yield Edge(u, v)

    def edge_list(self) -> List[Edge]:
        """Return all edges as a list (deterministic insertion-ish order)."""
        return list(self.edges())

    def neighbors(self, v: int) -> Set[int]:
        """Return the neighbor set of ``v`` (a live reference; do not mutate)."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        return u in self._adj and v in self._adj[u]

    def has_vertex(self, v: int) -> bool:
        return v in self._adj

    def subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Return the induced subgraph on ``vertices``."""
        keep = set(vertices)
        sub = Graph()
        for v in keep:
            if v in self._adj:
                sub.add_vertex(v)
        for u in keep:
            for v in self._adj.get(u, ()):
                if v in keep and u < v:
                    sub.add_edge(u, v)
        return sub

    def __contains__(self, v: int) -> bool:
        return v in self._adj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(|V|={self.num_vertices}, |E|={self.num_edges})"
