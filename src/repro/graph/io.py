"""Edge-list file IO.

The paper's partitioners consume graphs stored "in a large file, a graph
database, or a distributed file system" as a stream of edges.  We support the
ubiquitous whitespace-separated edge-list format used by SNAP / KONECT
datasets: one ``u v`` pair per line, ``#`` or ``%`` comment lines ignored.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Tuple

from repro.graph.graph import Edge, Graph

_COMMENT_PREFIXES = ("#", "%")


def parse_edge_line(line: str) -> "Edge | None":
    """Parse one edge-list line; return None for blanks/comments.

    Raises ``ValueError`` on malformed lines so corrupt inputs fail loudly
    rather than silently dropping edges.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith(_COMMENT_PREFIXES):
        return None
    parts = stripped.split()
    if len(parts) < 2:
        raise ValueError(f"malformed edge line: {line!r}")
    return Edge(int(parts[0]), int(parts[1]))


def iter_edge_file(path: "str | os.PathLike") -> Iterator[Edge]:
    """Stream edges from an edge-list file without materialising the graph."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            edge = parse_edge_line(line)
            if edge is not None:
                yield edge


def read_graph(path: "str | os.PathLike") -> Graph:
    """Load a full :class:`Graph` from an edge-list file."""
    graph = Graph()
    for edge in iter_edge_file(path):
        if not edge.is_loop():
            graph.add_edge(edge.u, edge.v)
    return graph


def write_edges(path: "str | os.PathLike",
                edges: Iterable[Tuple[int, int]],
                header: str = "") -> int:
    """Write edges to an edge-list file; return the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v in edges:
            handle.write(f"{u} {v}\n")
            count += 1
    return count


def write_graph(path: "str | os.PathLike", graph: Graph,
                header: str = "") -> int:
    """Write all edges of ``graph`` to ``path``; return the edge count."""
    return write_edges(path, graph.edges(), header=header)


def count_edges(path: "str | os.PathLike") -> int:
    """Count edges in a file (the paper's "line count on the graph file").

    The adaptive controller needs ``|E|`` up front to budget the latency
    preference; this mirrors how the authors obtain it.
    """
    total = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if stripped and not stripped.startswith(_COMMENT_PREFIXES):
                total += 1
    return total
