"""Edge-list file IO.

The paper's partitioners consume graphs stored "in a large file, a graph
database, or a distributed file system" as a stream of edges.  We support the
ubiquitous whitespace-separated edge-list format used by SNAP / KONECT
datasets: one ``u v`` pair per line, ``#`` or ``%`` comment lines ignored.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, List, Tuple

from repro.graph.graph import Edge, Graph

_COMMENT_PREFIXES = ("#", "%")


def parse_edge_line(line: str) -> "Edge | None":
    """Parse one edge-list line; return None for blanks/comments.

    Raises ``ValueError`` on malformed lines so corrupt inputs fail loudly
    rather than silently dropping edges.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith(_COMMENT_PREFIXES):
        return None
    parts = stripped.split()
    if len(parts) < 2:
        raise ValueError(f"malformed edge line: {line!r}")
    return Edge(int(parts[0]), int(parts[1]))


def iter_edge_file(path: "str | os.PathLike") -> Iterator[Edge]:
    """Stream edges from an edge-list file without materialising the graph."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            edge = parse_edge_line(line)
            if edge is not None:
                yield edge


def read_graph(path: "str | os.PathLike") -> Graph:
    """Load a full :class:`Graph` from an edge-list file."""
    graph = Graph()
    for edge in iter_edge_file(path):
        if not edge.is_loop():
            graph.add_edge(edge.u, edge.v)
    return graph


def write_edges(path: "str | os.PathLike",
                edges: Iterable[Tuple[int, int]],
                header: str = "") -> int:
    """Write edges to an edge-list file; return the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v in edges:
            handle.write(f"{u} {v}\n")
            count += 1
    return count


def write_graph(path: "str | os.PathLike", graph: Graph,
                header: str = "") -> int:
    """Write all edges of ``graph`` to ``path``; return the edge count."""
    return write_edges(path, graph.edges(), header=header)


def byte_spans(path: "str | os.PathLike",
               num_chunks: int) -> List[Tuple[int, int]]:
    """Split an edge file into ``num_chunks`` byte ranges on line boundaries.

    This is the out-of-core analogue of
    :func:`repro.graph.stream.chunk_stream`: the file is divided at
    ``size * i / num_chunks`` byte targets and each boundary is advanced
    to the next newline, so no line straddles two spans and every byte
    of the file belongs to exactly one span.  Workers can then stream
    their span independently without anyone materialising the graph.

    Spans are contiguous, cover ``[0, filesize)`` exactly, and may be
    empty (``start == end``) when the file has fewer lines than chunks.
    """
    if num_chunks < 1:
        raise ValueError("num_chunks must be >= 1")
    path = os.fspath(path)
    size = os.path.getsize(path)
    bounds = [0]
    with open(path, "rb") as handle:
        for i in range(1, num_chunks):
            target = (size * i) // num_chunks
            if target <= bounds[-1]:
                bounds.append(bounds[-1])
                continue
            handle.seek(target)
            # Discard the (possibly partial) line the target landed in;
            # it belongs to the previous span.
            handle.readline()
            bounds.append(min(handle.tell(), size))
    bounds.append(size)
    return [(bounds[i], bounds[i + 1]) for i in range(num_chunks)]


def iter_edge_file_span(path: "str | os.PathLike", start: int,
                        end: int) -> Iterator[Edge]:
    """Stream edges whose lines start inside ``[start, end)`` of the file.

    ``start`` must be a line boundary (0 or a position just past a
    newline), as produced by :func:`byte_spans`.  Reading is binary with
    explicit UTF-8 decoding so byte offsets stay exact; ``\\r`` from
    CRLF files is stripped by the line parser.
    """
    if start < 0 or end < start:
        raise ValueError(f"invalid span [{start}, {end})")
    with open(path, "rb") as handle:
        handle.seek(start)
        position = start
        while position < end:
            line = handle.readline()
            if not line:
                break
            position += len(line)
            edge = parse_edge_line(line.decode("utf-8"))
            if edge is not None:
                yield edge


_COMMENT_PREFIX_BYTES = tuple(p.encode() for p in _COMMENT_PREFIXES)


def count_edges_span(path: "str | os.PathLike", start: int, end: int) -> int:
    """Count edge lines inside ``[start, end)`` (span analogue of
    :func:`count_edges`).

    Applies the same blank/comment filter as :func:`count_edges` without
    parsing endpoints, so counting a slice costs a strip per line rather
    than a full edge parse.
    """
    if start < 0 or end < start:
        raise ValueError(f"invalid span [{start}, {end})")
    total = 0
    with open(path, "rb") as handle:
        handle.seek(start)
        position = start
        while position < end:
            line = handle.readline()
            if not line:
                break
            position += len(line)
            stripped = line.strip()
            if stripped and not stripped.startswith(_COMMENT_PREFIX_BYTES):
                total += 1
    return total


def count_edges(path: "str | os.PathLike") -> int:
    """Count edges in a file (the paper's "line count on the graph file").

    The adaptive controller needs ``|E|`` up front to budget the latency
    preference; this mirrors how the authors obtain it.
    """
    total = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if stripped and not stripped.startswith(_COMMENT_PREFIXES):
                total += 1
    return total
