"""Compressed sparse row (CSR) graph — the engine's vectorized substrate.

:class:`CSRGraph` is an immutable, array-backed snapshot of an undirected
graph: the standard ``indptr``/``indices`` layout over *dense* vertex
indices ``0..n-1``, plus a remap table back to the original (arbitrary
integer) vertex ids.  It is built once — from a :class:`~repro.graph.graph.Graph`
or directly from an edge iterable/stream — and then drives the engine's
``mode="dense"`` superstep kernels: whole-frontier numpy operations over
the adjacency arrays instead of per-vertex dict/set traversal.

Layout invariants:

* ``vertex_ids`` is sorted ascending, so the dense index order equals the
  original-id order (remapping is monotonic — ``min`` over ids and ``min``
  over indices agree, which the label-propagating kernels rely on).
* each undirected edge appears twice in ``indices`` (once per direction);
  ``num_edges`` counts undirected edges, ``len(indices) == 2 * num_edges``.
* within each row, ``indices`` is sorted ascending — matching the sorted
  adjacency snapshot the object-mode engine hands to vertex programs.
* ``indices`` uses int32 when the vertex count allows it (halving memory
  traffic on large graphs) and int64 otherwise.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.graph.graph import Graph

#: Vertex counts below this fit dense indices into int32.
_INT32_MAX = np.iinfo(np.int32).max


class CSRGraph:
    """Immutable CSR adjacency over dense vertex indices.

    Build via :meth:`from_graph`, :meth:`from_edges` or :meth:`from_stream`;
    the constructor takes pre-validated arrays and is not meant to be
    called directly.
    """

    __slots__ = ("indptr", "indices", "degrees", "vertex_ids",
                 "num_vertices", "num_edges", "_index_of", "_rows")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 vertex_ids: np.ndarray) -> None:
        self.indptr = indptr
        self.indices = indices
        self.vertex_ids = vertex_ids
        self.num_vertices = len(vertex_ids)
        self.num_edges = len(indices) // 2
        self.degrees = np.diff(indptr)
        self._index_of: Optional[Dict[int, int]] = None
        self._rows: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[int, int]],
                   vertices: Iterable[int] = ()) -> "CSRGraph":
        """Build from an edge iterable (e.g. an
        :class:`~repro.graph.stream.EdgeStream`).

        Parallel edges are collapsed and self-loops rejected, mirroring
        :class:`~repro.graph.graph.Graph`.  ``vertices`` optionally names
        additional (possibly isolated) vertices to include.
        """
        pairs = np.array([(u, v) for u, v in edges],
                         dtype=np.int64).reshape(-1, 2)
        extra = np.fromiter(vertices, dtype=np.int64)
        if len(pairs) and (pairs[:, 0] == pairs[:, 1]).any():
            loop = pairs[pairs[:, 0] == pairs[:, 1]][0]
            raise ValueError(
                f"self-loop ({loop[0]}, {loop[1]}) not supported")
        vertex_ids = np.unique(np.concatenate([pairs.ravel(), extra]))
        n = len(vertex_ids)
        # Remap endpoints onto dense indices and canonicalise (lo, hi).
        lo = np.searchsorted(vertex_ids, pairs.min(axis=1))
        hi = np.searchsorted(vertex_ids, pairs.max(axis=1))
        if len(lo):
            # Collapse parallel edges: unique (lo, hi) pairs via a single
            # scalar key — n < 2**31 keeps lo * n + hi inside int64.
            key = np.unique(lo * np.int64(max(n, 1)) + hi)
            lo, hi = key // max(n, 1), key % max(n, 1)
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        order = np.lexsort((dst, src))
        dtype = np.int32 if n <= _INT32_MAX else np.int64
        indices = dst[order].astype(dtype, copy=False)
        degrees = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        return cls(indptr, indices, vertex_ids)

    @classmethod
    def from_stream(cls, stream: Iterable[Tuple[int, int]]) -> "CSRGraph":
        """Build directly from an edge stream (single pass)."""
        return cls.from_edges(stream)

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Snapshot a :class:`~repro.graph.graph.Graph` (keeps isolated
        vertices)."""
        return cls.from_edges(
            ((e.u, e.v) for e in graph.edges()), vertices=graph.vertices())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def index_of(self) -> Dict[int, int]:
        """Original vertex id -> dense index (built lazily, cached)."""
        if self._index_of is None:
            self._index_of = {
                int(v): i for i, v in enumerate(self.vertex_ids)}
        return self._index_of

    @property
    def rows(self) -> np.ndarray:
        """Row (source) index of each adjacency slot (lazily cached).

        ``rows[s]`` is the vertex whose adjacency list contains slot ``s``;
        together with ``indices[s]`` it enumerates every directed edge —
        the scatter side of the dense kernels' message exchange.
        """
        if self._rows is None:
            n = self.num_vertices
            arange = np.arange(n, dtype=self.indices.dtype)
            self._rows = np.repeat(arange, self.degrees)
        return self._rows

    def neighbors(self, index: int) -> np.ndarray:
        """Dense neighbor indices of dense vertex ``index`` (a view)."""
        return self.indices[self.indptr[index]:self.indptr[index + 1]]

    def degree(self, index: int) -> int:
        return int(self.degrees[index])

    def original_id(self, index: int) -> int:
        return int(self.vertex_ids[index])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges})"
