"""Synthetic graph generators.

The paper evaluates on three real-world graphs (Table II) chosen for their
*clustering coefficient* spread — Orkut (social, ĉ≈0.04), Brain (biological,
ĉ≈0.51), Web (web, ĉ≈0.82) — and for skewed degree distributions.  Those
datasets are hundreds of millions to billions of edges and are not shipped
here; instead this module provides scale-free generators whose outputs match
the *properties* the paper's mechanisms key on:

* :func:`barabasi_albert_graph` — power-law degrees, vanishing clustering
  (the Orkut analogue).
* :func:`powerlaw_cluster_graph` — Holme–Kim triad closure, power-law degrees
  with moderate, tunable clustering (the Brain analogue).
* :func:`web_like_graph` — dense near-clique communities linked by a few
  high-degree hubs, very strong clustering (the Web analogue).
* :func:`watts_strogatz_graph` and :func:`rmat_graph` — classic substrates
  used by tests and ablations.

All generators take an explicit seed and return :class:`repro.graph.Graph`.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.graph.graph import Graph


def _check_positive(name: str, value: int) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def barabasi_albert_graph(n: int, m: int, seed: int = 0) -> Graph:
    """Preferential-attachment graph: ``n`` vertices, ``m`` edges per newcomer.

    Produces a power-law degree distribution with clustering coefficient that
    vanishes as ``n`` grows — matching the weakly-clustered Orkut social
    network of Table II.
    """
    _check_positive("n", n)
    _check_positive("m", m)
    if m >= n:
        raise ValueError(f"m ({m}) must be < n ({n})")
    rng = random.Random(seed)
    graph = Graph()
    # Repeated-vertices list implements preferential attachment in O(1).
    repeated: List[int] = []
    # Seed with a star over the first m+1 vertices so every newcomer can
    # attach to m distinct targets.
    for v in range(m):
        graph.add_edge(v, m)
        repeated.extend((v, m))
    for source in range(m + 1, n):
        targets = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for t in targets:
            graph.add_edge(source, t)
            repeated.extend((source, t))
    return graph


def powerlaw_cluster_graph(n: int, m: int, p: float, seed: int = 0) -> Graph:
    """Holme–Kim graph: preferential attachment plus triad formation.

    With probability ``p`` each attachment step closes a triangle by linking
    to a random neighbor of the previously chosen target, which injects
    clustering while keeping the power-law degree tail.  ``p≈0.8-0.95`` yields
    the moderate clustering (ĉ around 0.4-0.6) of the Brain graph.
    """
    _check_positive("n", n)
    _check_positive("m", m)
    if m >= n:
        raise ValueError(f"m ({m}) must be < n ({n})")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = random.Random(seed)
    graph = Graph()
    repeated: List[int] = []
    for v in range(m):
        graph.add_edge(v, m)
        repeated.extend((v, m))
    for source in range(m + 1, n):
        count = 0
        last_target: Optional[int] = None
        while count < m:
            if (last_target is not None and rng.random() < p):
                # Triad step: close a triangle through last_target.
                candidates = [w for w in graph.neighbors(last_target)
                              if w != source and not graph.has_edge(source, w)]
                if candidates:
                    target = rng.choice(candidates)
                else:
                    target = rng.choice(repeated)
            else:
                target = rng.choice(repeated)
            if target != source and graph.add_edge(source, target):
                repeated.extend((source, target))
                count += 1
                last_target = target
    return graph


def watts_strogatz_graph(n: int, k: int, p: float, seed: int = 0) -> Graph:
    """Small-world ring lattice with rewiring probability ``p``."""
    _check_positive("n", n)
    if k < 2 or k % 2 != 0:
        raise ValueError(f"k must be an even integer >= 2, got {k}")
    if k >= n:
        raise ValueError(f"k ({k}) must be < n ({n})")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = random.Random(seed)
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            graph.add_edge(v, (v + offset) % n)
    if p > 0:
        for v in range(n):
            for offset in range(1, k // 2 + 1):
                if rng.random() < p:
                    old = (v + offset) % n
                    if graph.degree(v) >= n - 1:
                        continue
                    new = rng.randrange(n)
                    while new == v or graph.has_edge(v, new):
                        new = rng.randrange(n)
                    # Rewire: the lattice edge may already have been rewired.
                    if graph.has_edge(v, old):
                        graph._adj[v].discard(old)
                        graph._adj[old].discard(v)
                        graph._num_edges -= 1
                    graph.add_edge(v, new)
    return graph


def rmat_graph(scale: int, edge_factor: int,
               a: float = 0.57, b: float = 0.19, c: float = 0.19,
               seed: int = 0) -> Graph:
    """Recursive-matrix (R-MAT / Graph500-style) generator.

    Produces ``2**scale`` vertex ids and ``edge_factor * 2**scale`` edge
    samples with a skewed, community-free structure.  Duplicate edges and
    self-loops are dropped, so the realised edge count is slightly lower.
    """
    _check_positive("scale", scale)
    _check_positive("edge_factor", edge_factor)
    d = 1.0 - a - b - c
    if d < 0 or min(a, b, c) < 0:
        raise ValueError("R-MAT probabilities must be non-negative and sum <= 1")
    rng = random.Random(seed)
    n = 1 << scale
    graph = Graph()
    for _ in range(edge_factor * n):
        u = v = 0
        for _ in range(scale):
            r = rng.random()
            u <<= 1
            v <<= 1
            if r < a:
                pass
            elif r < a + b:
                v |= 1
            elif r < a + b + c:
                u |= 1
            else:
                u |= 1
                v |= 1
        if u != v:
            graph.add_edge(u, v)
    return graph


def web_like_graph(num_communities: int, community_size: int,
                   intra_p: float = 0.9, inter_edges: int = 2,
                   seed: int = 0) -> Graph:
    """Web-analogue: dense near-clique communities plus sparse hub links.

    Web graphs have very strong local clustering (Table II reports ĉ≈0.82):
    pages within a site form near-cliques, and a few hub pages link across
    sites.  Each community here is an Erdős–Rényi near-clique with edge
    probability ``intra_p``; each community's hub (vertex 0 of the block)
    draws ``inter_edges`` links to preferentially chosen other hubs.
    """
    _check_positive("num_communities", num_communities)
    if community_size < 3:
        raise ValueError("community_size must be >= 3 for meaningful clustering")
    if not 0.0 < intra_p <= 1.0:
        raise ValueError(f"intra_p must be in (0, 1], got {intra_p}")
    rng = random.Random(seed)
    graph = Graph()
    hubs: List[int] = []
    for comm in range(num_communities):
        base = comm * community_size
        members = list(range(base, base + community_size))
        hubs.append(base)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                if rng.random() < intra_p:
                    graph.add_edge(u, v)
        # Guarantee connectivity inside the community.
        for u in members[1:]:
            if not graph.has_edge(base, u) and rng.random() < 0.5:
                graph.add_edge(base, u)
    # Preferentially link hubs so a few hubs become high-degree connectors.
    hub_weights: List[int] = list(hubs)
    for comm in range(1, num_communities):
        hub = hubs[comm]
        for _ in range(inter_edges):
            target = rng.choice(hub_weights)
            if target != hub:
                graph.add_edge(hub, target)
                hub_weights.extend((hub, target))
    return graph


def community_powerlaw_graph(num_communities: int, community_size: int,
                             intra_p: float = 0.45, overlay_m: int = 6,
                             seed: int = 0) -> Graph:
    """Clustered communities plus a preferential-attachment hub overlay.

    Models graphs like the paper's Brain network: moderate clustering from
    dense local neighbourhoods (Erdős–Rényi communities with edge
    probability ``intra_p`` — local clustering ≈ ``intra_p``) *and* a
    heavy-tailed degree distribution from hub vertices that connect many
    communities (the overlay attaches ``overlay_m`` preferential edges per
    vertex).  Both properties matter: clustering drives ADWISE's CS score,
    and high-degree hubs drive the degree-aware score and the spotlight
    effect (balance-driven spraying of hub edges).
    """
    _check_positive("num_communities", num_communities)
    if community_size < 3:
        raise ValueError("community_size must be >= 3")
    if not 0.0 < intra_p <= 1.0:
        raise ValueError(f"intra_p must be in (0, 1], got {intra_p}")
    if overlay_m < 0:
        raise ValueError("overlay_m must be non-negative")
    rng = random.Random(seed)
    graph = Graph()
    n = num_communities * community_size
    for comm in range(num_communities):
        base = comm * community_size
        members = list(range(base, base + community_size))
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                if rng.random() < intra_p:
                    graph.add_edge(u, v)
        for u in members:
            graph.add_vertex(u)
    if overlay_m > 0:
        # Preferential overlay: vertices attach to already-popular targets.
        repeated: List[int] = list(range(n))
        order = list(range(n))
        rng.shuffle(order)
        for source in order:
            for _ in range(overlay_m):
                target = rng.choice(repeated)
                if target != source and graph.add_edge(source, target):
                    repeated.extend((source, target))
    return graph


# ---------------------------------------------------------------------------
# Named analogues of the paper's Table II corpus (scaled down).
# ---------------------------------------------------------------------------

def orkut_like_graph(n: int = 4000, m: int = 12, seed: int = 0) -> Graph:
    """Scaled Orkut analogue: power-law social graph with weak clustering."""
    return barabasi_albert_graph(n, m, seed=seed)


def brain_like_graph(n: int = 3000, m: int = 10, p: float = 0.92,
                     seed: int = 0) -> Graph:
    """Scaled Brain analogue: skewed degrees with moderate clustering."""
    return powerlaw_cluster_graph(n, m, p, seed=seed)


def web_like_graph_default(num_communities: int = 220,
                           community_size: int = 14,
                           seed: int = 0) -> Graph:
    """Scaled Web analogue with default sizing used by the benchmarks."""
    return web_like_graph(num_communities, community_size,
                          intra_p=0.92, inter_edges=2, seed=seed)
