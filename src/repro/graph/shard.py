"""Per-partition CSR shards of a vertex-cut partitioned graph.

A vertex-cut assignment places every *edge* on exactly one partition; a
vertex is replicated on every partition holding one of its edges.  The
cluster runtime (:mod:`repro.cluster`) executes each partition as an
independent worker over its own :class:`ShardCSR` — the shard-local CSR
adjacency with a remap between global vertex ids and shard-local dense
indices — and keeps replicas consistent through master/mirror
synchronisation, the PowerGraph model the engine's cost layer predicts.

:class:`ShardedGraph` is the sharding product:

* one :class:`Shard` per partition — its :class:`ShardCSR`, an ``owned``
  mask (True where this partition is the vertex's *master*), and the
  master/mirror routing tables;
* master election by the **min-partition rule**: the master replica of a
  vertex lives on the lowest-numbered partition holding it, matching
  :class:`~repro.engine.placement.Placement`'s ``master_machine`` choice
  so measured sync traffic lines up with predicted traffic;
* per-channel routing tables: for a (master ``p``, mirror ``q``) pair the
  shared vertices appear in ``shards[p].master_channels[q]`` and
  ``shards[q].mirror_channels[p]`` as *aligned* local-index arrays, both
  sorted by global vertex id, so gather/scatter is pure fancy indexing.

Isolated vertices (present in the graph but incident to no edge) are not
part of any assignment; they are placed round-robin over the partitions
so shard-local execution still covers them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.graph import Edge, Graph


class ShardCSR(CSRGraph):
    """Shard-local CSR whose ``degrees`` are the *logical* global degrees.

    Dense kernels read ``csr.degrees`` as the algorithmic degree of a
    vertex (PageRank divides by it, k-core thresholds on it), which for a
    replica must be the degree in the *whole* graph, not the shard.  The
    physical layout (``indptr``/``indices``/``rows``) stays shard-local;
    ``local_degrees`` keeps the per-shard adjacency-list lengths the
    runtime needs for exact message counting.
    """

    __slots__ = ("local_degrees",)

    @classmethod
    def build(cls, edges: Iterable[tuple], vertices: Iterable[int],
              global_degrees: Mapping[int, int]) -> "ShardCSR":
        base = CSRGraph.from_edges(edges, vertices=vertices)
        shard = cls(base.indptr, base.indices, base.vertex_ids)
        # Force the slot->row cache while ``degrees`` still reflects the
        # physical shard layout, then swap in the logical view.
        shard.rows
        shard.local_degrees = shard.degrees
        shard.degrees = np.array(
            [global_degrees.get(int(v), 0) for v in shard.vertex_ids],
            dtype=np.int64)
        return shard


@dataclass
class Shard:
    """One partition's slice of the graph plus its replica routing."""

    partition: int
    csr: ShardCSR
    #: True at local indices whose master replica lives on this partition.
    owned: np.ndarray
    #: mirror partition -> local indices of vertices mastered *here* that
    #: have a replica there (sorted by global vertex id).
    master_channels: Dict[int, np.ndarray] = field(default_factory=dict)
    #: master partition -> local indices of vertices mirrored *here*
    #: (sorted by global vertex id, aligned with the master's table).
    mirror_channels: Dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def num_vertices(self) -> int:
        return self.csr.num_vertices

    @property
    def num_owned(self) -> int:
        return int(self.owned.sum())

    @property
    def num_edges(self) -> int:
        return self.csr.num_edges


class ShardedGraph:
    """A vertex-cut partitioned graph split into per-partition CSR shards."""

    def __init__(self, shards: Dict[int, Shard],
                 assignments: Dict[Edge, int],
                 vertex_partitions: Dict[int, List[int]]) -> None:
        self.shards = shards
        self.partitions = sorted(shards)
        self.assignments = assignments
        self.vertex_partitions = vertex_partitions
        self.num_vertices = len(vertex_partitions)
        self.num_edges = len(assignments)
        self._graph: Optional[Graph] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_assignments(cls, assignments: Mapping[Edge, int],
                         partitions: Optional[Sequence[int]] = None,
                         vertices: Iterable[int] = ()) -> "ShardedGraph":
        """Shard an edge -> partition assignment (any partitioner's output).

        ``partitions`` may name partitions beyond those appearing in the
        assignment (they become empty shards); ``vertices`` may name
        additional, possibly isolated, vertices to place.
        """
        normalized: Dict[Edge, int] = {}
        for edge, partition in assignments.items():
            normalized[Edge(edge[0], edge[1]).canonical()] = int(partition)
        parts = sorted(set(normalized.values()) | set(partitions or ()))
        if not parts:
            raise ValueError("no partitions: empty assignment and no "
                             "explicit partition list")

        per_part_edges: Dict[int, List[tuple]] = {p: [] for p in parts}
        vertex_parts: Dict[int, Set[int]] = {}
        global_degrees: Dict[int, int] = {}
        for edge, partition in normalized.items():
            per_part_edges[partition].append((edge.u, edge.v))
            for endpoint in (edge.u, edge.v):
                vertex_parts.setdefault(endpoint, set()).add(partition)
                global_degrees[endpoint] = global_degrees.get(endpoint, 0) + 1

        # Isolated vertices: round-robin over partitions, deterministic.
        extra_vertices: Dict[int, List[int]] = {p: [] for p in parts}
        isolated = sorted(set(int(v) for v in vertices) - set(vertex_parts))
        for index, vertex in enumerate(isolated):
            home = parts[index % len(parts)]
            vertex_parts[vertex] = {home}
            extra_vertices[home].append(vertex)

        vertex_partitions = {v: sorted(ps) for v, ps in vertex_parts.items()}

        # Master election (min-partition rule) and channel membership.
        shared: Dict[tuple, List[int]] = {}
        for vertex, ps in vertex_partitions.items():
            if len(ps) <= 1:
                continue
            master = ps[0]
            for mirror in ps[1:]:
                shared.setdefault((master, mirror), []).append(vertex)

        shards: Dict[int, Shard] = {}
        for partition in parts:
            csr = ShardCSR.build(per_part_edges[partition],
                                 extra_vertices[partition], global_degrees)
            shards[partition] = Shard(
                partition=partition,
                csr=csr,
                owned=np.ones(csr.num_vertices, dtype=bool))

        for (master, mirror), shared_vertices in shared.items():
            ids = np.array(sorted(shared_vertices), dtype=np.int64)
            master_idx = np.searchsorted(shards[master].csr.vertex_ids, ids)
            mirror_idx = np.searchsorted(shards[mirror].csr.vertex_ids, ids)
            shards[master].master_channels[mirror] = master_idx
            shards[mirror].mirror_channels[master] = mirror_idx
            shards[mirror].owned[mirror_idx] = False

        return cls(shards, normalized, vertex_partitions)

    @classmethod
    def from_result(cls, result,
                    vertices: Iterable[int] = ()) -> "ShardedGraph":
        """Shard a :class:`~repro.partitioning.base.PartitionResult` or
        :class:`~repro.partitioning.parallel.ParallelResult`."""
        sizes = getattr(result, "partition_sizes", None)
        if sizes is not None:  # ParallelResult
            partitions: Sequence[int] = sorted(sizes)
        else:
            partitions = list(result.state.partitions)
        return cls.from_assignments(result.assignments,
                                    partitions=partitions,
                                    vertices=vertices)

    @classmethod
    def from_file(cls, path: "str | os.PathLike",
                  partitions: Optional[Sequence[int]] = None,
                  vertices: Iterable[int] = ()) -> "ShardedGraph":
        """Shard a ``u v partition`` assignment file (``.gz`` supported —
        see :mod:`repro.partitioning.partition_io`)."""
        from repro.partitioning.partition_io import read_assignments
        return cls.from_assignments(read_assignments(path),
                                    partitions=partitions, vertices=vertices)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def replication_degree(self) -> float:
        """Average replicas per vertex (isolated vertices count 1)."""
        if not self.vertex_partitions:
            return 0.0
        total = sum(len(ps) for ps in self.vertex_partitions.values())
        return total / len(self.vertex_partitions)

    def master_of(self, vertex: int) -> int:
        """Partition holding ``vertex``'s master replica."""
        return self.vertex_partitions[vertex][0]

    def to_graph(self) -> Graph:
        """Reassemble the logical :class:`~repro.graph.graph.Graph`
        (cached; used by the cluster engine's unsharded fallback path)."""
        if self._graph is None:
            graph = Graph((e.u, e.v) for e in self.assignments)
            for vertex in self.vertex_partitions:
                graph.add_vertex(vertex)
            self._graph = graph
        return self._graph

    def fingerprint(self) -> str:
        """Stable digest of the sharding's shape (sizes per partition).

        Stored inside every cluster checkpoint and verified on restore,
        so a checkpoint can never be silently replayed against a
        different graph or partitioning.  Deliberately layout-free: the
        same sharding on a different machine map fingerprints identically
        (checkpoints are keyed by partition, not machine).
        """
        import hashlib
        parts = [f"{self.num_vertices}|{self.num_edges}"]
        for partition in self.partitions:
            shard = self.shards[partition]
            parts.append(f"|{partition}:{shard.num_vertices}:"
                         f"{shard.num_edges}:{shard.num_owned}")
        return hashlib.sha1("".join(parts).encode()).hexdigest()

    def placement(self, num_machines: Optional[int] = None,
                  machine_of_partition: Optional[Mapping[int, int]] = None):
        """The :class:`~repro.engine.placement.Placement` of this sharding.

        Defaults to one machine per partition (the cluster runtime's
        one-worker-per-partition deployment); pass ``num_machines`` /
        ``machine_of_partition`` for grouped layouts.
        """
        from repro.engine.placement import Placement
        if num_machines is None:
            num_machines = len(self.partitions)
        return Placement(self.assignments, self.partitions,
                         num_machines=num_machines,
                         machine_of_partition=machine_of_partition)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardedGraph(k={len(self.partitions)}, "
                f"|V|={self.num_vertices}, |E|={self.num_edges}, "
                f"rep={self.replication_degree:.2f})")
