"""Graph statistics: degrees, clustering coefficient, summaries.

Table II of the paper characterises each dataset by vertex count, edge count
and (sampled) average local clustering coefficient ĉ — the property that
determines whether ADWISE's clustering score is effective.  This module
reproduces those statistics, with an exact triangle-counting clustering
coefficient for small graphs and a seeded sampling estimator mirroring the
paper's "based on a graph sample" footnote.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.graph.graph import Graph


def degrees(graph: Graph) -> Dict[int, int]:
    """Return the degree of every vertex."""
    return {v: graph.degree(v) for v in graph.vertices()}


def max_degree(graph: Graph) -> int:
    """Return the maximum degree (0 for the empty graph)."""
    return max((graph.degree(v) for v in graph.vertices()), default=0)


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map degree value -> number of vertices with that degree."""
    hist: Dict[int, int] = {}
    for v in graph.vertices():
        d = graph.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def local_clustering(graph: Graph, v: int) -> float:
    """Local clustering coefficient of vertex ``v``.

    Fraction of neighbor pairs of ``v`` that are themselves connected;
    defined as 0 for degree < 2.
    """
    nbrs = list(graph.neighbors(v))
    d = len(nbrs)
    if d < 2:
        return 0.0
    links = 0
    for i, a in enumerate(nbrs):
        a_nbrs = graph.neighbors(a)
        for b in nbrs[i + 1:]:
            if b in a_nbrs:
                links += 1
    return 2.0 * links / (d * (d - 1))


def average_clustering(graph: Graph, sample_size: Optional[int] = None,
                       seed: int = 0) -> float:
    """Average local clustering coefficient ĉ.

    With ``sample_size`` set, estimates ĉ from a uniform vertex sample — the
    approach the paper uses for the billion-edge Web graph.
    """
    verts: List[int] = list(graph.vertices())
    if not verts:
        return 0.0
    if sample_size is not None and sample_size < len(verts):
        rng = random.Random(seed)
        verts = rng.sample(verts, sample_size)
    return sum(local_clustering(graph, v) for v in verts) / len(verts)


def triangle_count(graph: Graph) -> int:
    """Exact number of triangles (each counted once)."""
    total = 0
    for v in graph.vertices():
        nbrs = graph.neighbors(v)
        for u in nbrs:
            if u > v:
                # Count common neighbors w > u to count each triangle once.
                total += sum(1 for w in (nbrs & graph.neighbors(u))
                             if w > u)
    return total


def powerlaw_exponent(graph: Graph, xmin: int = 1) -> float:
    """MLE estimate of the degree power-law exponent α.

    Uses the continuous approximation α = 1 + n / Σ ln(d / (xmin − 0.5))
    over degrees ≥ xmin (Clauset, Shalizi & Newman 2009).  Returns ``inf``
    for degenerate inputs (no vertex at or above ``xmin``).
    """
    import math

    if xmin < 1:
        raise ValueError("xmin must be >= 1")
    degs = [graph.degree(v) for v in graph.vertices()
            if graph.degree(v) >= xmin]
    if not degs:
        return math.inf
    denom = sum(math.log(d / (xmin - 0.5)) for d in degs)
    if denom == 0:
        return math.inf
    return 1.0 + len(degs) / denom


def degree_percentile(graph: Graph, fraction: float) -> int:
    """Degree at the given percentile (0 ≤ fraction ≤ 1) of vertices."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    degs = sorted(graph.degree(v) for v in graph.vertices())
    if not degs:
        return 0
    index = min(len(degs) - 1, int(fraction * len(degs)))
    return degs[index]


def degree_skewness(graph: Graph) -> float:
    """Sample skewness of the degree distribution (0 for < 3 vertices).

    Power-law graphs (the paper's focus) have strongly positive skew; the
    degree-aware replication score exists precisely because of this skew.
    """
    degs = [graph.degree(v) for v in graph.vertices()]
    n = len(degs)
    if n < 3:
        return 0.0
    mean = sum(degs) / n
    var = sum((d - mean) ** 2 for d in degs) / n
    if var == 0:
        return 0.0
    third = sum((d - mean) ** 3 for d in degs) / n
    return third / (var ** 1.5)


@dataclass(frozen=True)
class GraphSummary:
    """Table II-style per-graph summary."""

    name: str
    num_vertices: int
    num_edges: int
    clustering: float
    max_degree: int
    degree_skew: float

    def row(self) -> str:
        """Render as a fixed-width table row matching Table II's columns."""
        return (f"{self.name:<12} {self.num_vertices:>10,} "
                f"{self.num_edges:>12,} {self.clustering:>8.4f} "
                f"{self.max_degree:>8} {self.degree_skew:>8.2f}")


def summarize(name: str, graph: Graph,
              clustering_sample: Optional[int] = 2000,
              seed: int = 0) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    return GraphSummary(
        name=name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        clustering=average_clustering(graph, sample_size=clustering_sample,
                                      seed=seed),
        max_degree=max_degree(graph),
        degree_skew=degree_skewness(graph),
    )
