"""Per-tenant service metrics: throughput and ingest-latency quantiles.

The daemon's observability layer.  Each tenant owns one
:class:`TenantMetrics`; the ingest worker feeds it one observation per
batch (size + enqueue-to-completion latency) and ``stats`` requests read
it back as a plain dict.

Latencies are kept in a bounded ring (most recent ``capacity`` batches)
so a long-lived tenant cannot grow daemon memory; p99 over the recent
window is the quantity an operator actually wants when deciding whether
a tenant is keeping up.
"""

from __future__ import annotations

import time
from typing import List, Optional


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` in [0, 1]) of ``samples``.

    Nearest-rank (not interpolated) so the reported p99 is a latency that
    actually occurred.  Returns 0.0 for an empty sample set.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


class TenantMetrics:
    """Rolling ingest statistics for one tenant."""

    def __init__(self, capacity: int = 1024,
                 clock: Optional[object] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._now = clock if clock is not None else time.monotonic
        self.capacity = capacity
        self.opened_at = self._now()
        self.edges_ingested = 0
        self.batches = 0
        self.queue_high_water = 0
        self._latencies: List[float] = []
        self._cursor = 0

    def observe_batch(self, edges: int, latency_s: float) -> None:
        """Record one completed ingest batch."""
        self.edges_ingested += edges
        self.batches += 1
        if len(self._latencies) < self.capacity:
            self._latencies.append(latency_s)
        else:
            self._latencies[self._cursor] = latency_s
            self._cursor = (self._cursor + 1) % self.capacity

    def observe_queue_depth(self, depth: int) -> None:
        if depth > self.queue_high_water:
            self.queue_high_water = depth

    @property
    def uptime_s(self) -> float:
        return max(self._now() - self.opened_at, 0.0)

    @property
    def edges_per_second(self) -> float:
        """Sustained ingest throughput since the tenant opened."""
        uptime = self.uptime_s
        if uptime <= 0.0:
            return 0.0
        return self.edges_ingested / uptime

    def latency_percentile_ms(self, fraction: float) -> float:
        return percentile(self._latencies, fraction) * 1000.0

    def to_dict(self) -> dict:
        return {
            "edges_ingested": self.edges_ingested,
            "batches": self.batches,
            "uptime_s": self.uptime_s,
            "edges_per_second": self.edges_per_second,
            "queue_high_water": self.queue_high_water,
            "p50_ingest_ms": self.latency_percentile_ms(0.50),
            "p99_ingest_ms": self.latency_percentile_ms(0.99),
        }
