"""Per-tenant service metrics: throughput and ingest-latency quantiles.

The daemon's observability layer.  Each tenant owns one
:class:`TenantMetrics`; the ingest worker feeds it one observation per
batch (size + enqueue-to-completion latency) and ``stats`` requests read
it back as a plain dict.

Latencies live in a :class:`repro.obs.Histogram` — a bounded ring of the
most recent ``capacity`` batches plus cumulative buckets — so a
long-lived tenant cannot grow daemon memory, the reported p99 is a
latency that actually occurred (exact nearest-rank over the window, the
same definition every other percentile in the repo uses), and the
daemon's ``metrics_text`` op can expose the identical series in
Prometheus form without a second bookkeeping path.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.obs.registry import Histogram, nearest_rank


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` clamped into [0, 1]).

    Delegates to the shared :func:`repro.obs.registry.nearest_rank` so
    service p50/p99 and bench percentiles cannot disagree.  Returns 0.0
    for an empty sample set; a single sample is every percentile of
    itself; out-of-range fractions clamp to min/max instead of indexing
    past the ring.
    """
    return nearest_rank(sorted(samples), fraction)


class TenantMetrics:
    """Rolling ingest statistics for one tenant."""

    def __init__(self, capacity: int = 1024,
                 clock: Optional[object] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._now = clock if clock is not None else time.monotonic
        self.capacity = capacity
        self.opened_at = self._now()
        self.edges_ingested = 0
        self.batches = 0
        self.queue_high_water = 0
        # Always-on (independent of the global obs enable flag): these
        # numbers are part of the service protocol's `stats` response.
        self._latency = Histogram(window=capacity)

    def observe_batch(self, edges: int, latency_s: float) -> None:
        """Record one completed ingest batch."""
        self.edges_ingested += edges
        self.batches += 1
        self._latency.observe(latency_s)

    def observe_queue_depth(self, depth: int) -> None:
        if depth > self.queue_high_water:
            self.queue_high_water = depth

    @property
    def uptime_s(self) -> float:
        return max(self._now() - self.opened_at, 0.0)

    @property
    def edges_per_second(self) -> float:
        """Sustained ingest throughput since the tenant opened."""
        uptime = self.uptime_s
        if uptime <= 0.0:
            return 0.0
        return self.edges_ingested / uptime

    @property
    def latency_histogram(self) -> Histogram:
        """The underlying shared-format histogram (for exporters)."""
        return self._latency

    def latency_percentile_ms(self, fraction: float) -> float:
        return self._latency.percentile(fraction) * 1000.0

    def to_dict(self) -> dict:
        return {
            "edges_ingested": self.edges_ingested,
            "batches": self.batches,
            "uptime_s": self.uptime_s,
            "edges_per_second": self.edges_per_second,
            "queue_high_water": self.queue_high_water,
            "metrics_window": self.capacity,
            "p50_ingest_ms": self.latency_percentile_ms(0.50),
            "p99_ingest_ms": self.latency_percentile_ms(0.99),
        }
