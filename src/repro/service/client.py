"""Synchronous, self-healing client for the partitioning daemon.

A blocking wrapper over the line-delimited-JSON protocol (see
:mod:`repro.service.server`), for tests, the ``repro-cli client``
subcommand and the service benchmark.  One client = one logical
connection; requests are tagged with sequential ``id``s and responses
are matched by id, so ingest batches may be pipelined with
:meth:`ingest_async` and collected later with :meth:`drain`.

Self-healing
------------
A dropped TCP connection (daemon crash, network blip, proxy reset) is
not an error the caller sees: the client reconnects with jittered
exponential backoff (``max_retries`` attempts, delays growing from
``retry_base`` to ``retry_max``) and *resends every unresolved
request* under its original id.  That is only safe because the resent
requests are idempotent:

* ingest batches carry a per-tenant ``seq`` (assigned by the client for
  tenants it opened or attached via :meth:`resume_seq`); the daemon
  answers a retried seq from its replay cache instead of partitioning
  the batch twice — exactly-once even when the ack, not the request,
  was lost;
* reads (``ping``/``query``/``stats``/``audit``/``tenants``) are
  harmless to repeat.

If a *non*-idempotent request (``open``, ``finalize``, ``close``,
``shutdown``, or a legacy seq-less ingest) is in flight when the
connection dies, the client refuses to guess and raises
:class:`ServiceConnectionError`.

Errors are typed: :class:`ServiceTimeout` for an overdue response
(instead of a raw ``socket.timeout``), :class:`ServiceConnectionError`
when reconnection is exhausted or unsafe — both subclass
:class:`ServiceError`, which still covers ``ok: false`` answers.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro import obs


class ServiceError(RuntimeError):
    """The daemon answered ``ok: false`` (or broke the protocol)."""


class ServiceConnectionError(ServiceError):
    """Could not (re)connect, or reconnecting would not be safe."""


class ServiceTimeout(ServiceError):
    """No response arrived within the client's ``timeout``."""


class _ConnectionLost(Exception):
    """Internal: the TCP connection died; recovery may resend."""


#: Ops that are safe to resend after a reconnect.  ``ingest`` joins the
#: set only when the payload carries an idempotency ``seq``.
_RETRYABLE_OPS = frozenset({"ping", "query", "stats", "audit", "tenants",
                            "metrics_text"})


class ServiceClient:
    """Blocking ndjson client for :class:`PartitionService`.

    Parameters
    ----------
    timeout:
        Per-read socket timeout; an overdue response raises
        :class:`ServiceTimeout` (and abandons that request id).
    max_retries:
        Reconnection attempts after the first failure, both at
        construction time and after a mid-flight drop.
    retry_base / retry_max:
        Backoff schedule: attempt *n* sleeps
        ``min(retry_max, retry_base * 2**(n-1))`` scaled by a jitter
        factor in ``[0.5, 1.0]``.
    seed:
        Seeds the jitter RNG (deterministic tests).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 30.0, max_retries: int = 5,
                 retry_base: float = 0.05, retry_max: float = 2.0,
                 seed: Optional[int] = None) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if retry_base <= 0 or retry_max < retry_base:
            raise ValueError("need 0 < retry_base <= retry_max")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries = max_retries
        self.retry_base = retry_base
        self.retry_max = retry_max
        self._rng = random.Random(seed)
        self._next_id = 0
        #: id -> full request payload (kept until resolved so recovery
        #: can resend it verbatim under the same id).
        self._pending: Dict[int, dict] = {}
        self._responses: Dict[int, dict] = {}
        #: tenant -> last assigned ingest seq, for tenants this client
        #: opened (or attached with :meth:`resume_seq`).
        self._seq: Dict[str, int] = {}
        self._sock, self._reader = self._connect()

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _connect(self):
        last_error: Optional[OSError] = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                delay = min(self.retry_max,
                            self.retry_base * 2 ** (attempt - 1))
                time.sleep(delay * (0.5 + 0.5 * self._rng.random()))
            try:
                sock = socket.create_connection((self.host, self.port),
                                                timeout=self.timeout)
                return sock, sock.makefile("rb")
            except OSError as exc:
                last_error = exc
        raise ServiceConnectionError(
            f"could not connect to {self.host}:{self.port} after "
            f"{self.max_retries + 1} attempts: {last_error}")

    def _close_socket(self) -> None:
        for closer in (self._reader.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    @staticmethod
    def _retryable(payload: dict) -> bool:
        op = payload.get("op")
        if op == "ingest":
            return "seq" in payload
        return op in _RETRYABLE_OPS

    def _recover(self) -> None:
        """Reconnect and resend every unresolved request.

        Raises :class:`ServiceConnectionError` if any unresolved
        request is not idempotent — resending an ``open`` or a seq-less
        ingest could apply it twice.
        """
        unresolved = {rid: payload
                      for rid, payload in self._pending.items()
                      if rid not in self._responses}
        for payload in unresolved.values():
            if not self._retryable(payload):
                self._close_socket()
                raise ServiceConnectionError(
                    f"connection lost with a non-idempotent "
                    f"{payload.get('op')!r} request in flight — its "
                    f"outcome at the daemon is unknown")
        last_error: Optional[Exception] = None
        for _ in range(self.max_retries + 1):
            self._close_socket()
            try:
                self._sock, self._reader = self._connect()
                for rid in sorted(unresolved):
                    self._transmit(rid, unresolved[rid])
                return
            except OSError as exc:  # resend died: reconnect again
                last_error = exc
        raise ServiceConnectionError(
            f"could not resend {len(unresolved)} pending request(s) "
            f"after reconnecting: {last_error}")

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _transmit(self, request_id: int, payload: dict) -> None:
        self._sock.sendall(
            json.dumps(dict(payload, id=request_id)).encode() + b"\n")

    def _send(self, payload: dict) -> int:
        request_id = self._next_id
        self._next_id += 1
        self._pending[request_id] = payload
        try:
            self._transmit(request_id, payload)
        except OSError:
            self._recover()  # resends this id along with the rest
        return request_id

    def _read_one(self) -> dict:
        try:
            line = self._reader.readline()
        except socket.timeout as exc:
            raise ServiceTimeout(
                f"no response from daemon within {self.timeout}s") from exc
        except OSError as exc:
            raise _ConnectionLost(str(exc)) from exc
        if not line:
            raise _ConnectionLost("connection closed by daemon")
        try:
            response = json.loads(line)
        except ValueError as exc:
            raise ServiceError(
                f"daemon sent an undecodable response: {line[:128]!r}"
            ) from exc
        if not isinstance(response, dict):
            raise ServiceError(
                f"daemon sent a non-object response: {response!r}")
        return response

    def _wait_for(self, request_id: int) -> dict:
        while request_id not in self._responses:
            try:
                response = self._read_one()
            except _ConnectionLost:
                self._recover()
                continue
            except ServiceTimeout:
                # Abandon the id so a late response is dropped as stale
                # instead of accumulating forever.
                self._pending.pop(request_id, None)
                raise
            response_id = response.get("id")
            if response_id is None:
                raise ServiceError(
                    f"daemon sent an un-correlated response "
                    f"(missing 'id'): {response!r}")
            if response_id in self._pending:
                self._responses[response_id] = response
            # else: stale response for an abandoned id — drop it.
        self._pending.pop(request_id, None)
        response = self._responses.pop(request_id)
        if not response.get("ok", False):
            raise ServiceError(response.get("error", "daemon error"))
        return response

    def request(self, payload: dict) -> dict:
        """Send one request and block for its response."""
        return self._wait_for(self._send(payload))

    # ------------------------------------------------------------------
    # Protocol helpers
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def open(self, tenant: str, algorithm: str = "adwise",
             partitions: int = 32, expected_edges: int = 0,
             **knobs) -> dict:
        response = self.request({"op": "open", "tenant": tenant,
                                 "algorithm": algorithm,
                                 "partitions": partitions,
                                 "expected_edges": expected_edges,
                                 "knobs": knobs})
        self._seq[tenant] = 0  # this client owns the tenant's seqs now
        return response

    def resume_seq(self, tenant: str) -> int:
        """Adopt an existing tenant's seq stream (e.g. after a daemon
        crash recovered it from the WAL, or when taking over from
        another client).  Returns the daemon's accepted high-water
        mark; subsequent :meth:`ingest` calls continue from there."""
        seq = int(self.stats(tenant).get("accepted_seq", 0))
        self._seq[tenant] = seq
        return seq

    def ingest(self, tenant: str,
               edges: Iterable[Tuple[int, int]]) -> List[Tuple[int, int, int]]:
        """Ingest a batch; block until it is partitioned.  Returns the
        emitted assignments as ``(u, v, partition)`` triples."""
        return self._assignments(self.request(self._ingest_payload(
            tenant, edges)))

    def ingest_async(self, tenant: str,
                     edges: Iterable[Tuple[int, int]]) -> int:
        """Pipeline a batch without waiting; pair with :meth:`drain`."""
        return self._send(self._ingest_payload(tenant, edges))

    def drain(self, request_ids: Iterable[int]
              ) -> List[Tuple[int, int, int]]:
        """Collect the assignments of previously pipelined batches."""
        out: List[Tuple[int, int, int]] = []
        for request_id in request_ids:
            out.extend(self._assignments(self._wait_for(request_id)))
        return out

    def _ingest_payload(self, tenant: str,
                        edges: Iterable[Tuple[int, int]]) -> dict:
        payload = {"op": "ingest", "tenant": tenant,
                   "edges": [[int(u), int(v)] for u, v in edges]}
        trace_ctx = obs.current_context()
        if trace_ctx is not None:
            # Carry the caller's trace across the ndjson boundary so the
            # daemon's apply-batch span joins this trace.
            payload["trace"] = trace_ctx
        if tenant in self._seq:
            # Idempotency key: makes the batch safe to resend after a
            # reconnect (the daemon replays the cached response).
            self._seq[tenant] += 1
            payload["seq"] = self._seq[tenant]
        return payload

    @staticmethod
    def _assignments(response: dict) -> List[Tuple[int, int, int]]:
        return [(u, v, p) for u, v, p in response.get("assignments", [])]

    def query_vertex(self, tenant: str, vertex: int) -> List[int]:
        return self.request({"op": "query", "tenant": tenant,
                             "vertex": vertex})["replicas"]

    def query_edge(self, tenant: str, u: int, v: int) -> Optional[int]:
        return self.request({"op": "query", "tenant": tenant,
                             "edge": [u, v]})["partition"]

    def stats(self, tenant: str) -> dict:
        return self.request({"op": "stats", "tenant": tenant})

    def audit(self, tenant: str, limit: int = 32) -> dict:
        return self.request({"op": "audit", "tenant": tenant,
                             "limit": limit})

    def tenants(self) -> List[dict]:
        return self.request({"op": "tenants"})["tenants"]

    def metrics_text(self) -> str:
        """Prometheus text exposition of the daemon's metrics."""
        return self.request({"op": "metrics_text"})["metrics_text"]

    def snapshot(self, tenant: str) -> dict:
        return self.request({"op": "snapshot", "tenant": tenant})

    def finalize(self, tenant: str) -> dict:
        response = self.request({"op": "finalize", "tenant": tenant})
        self._seq.pop(tenant, None)
        return response

    def close_tenant(self, tenant: str) -> dict:
        response = self.request({"op": "close", "tenant": tenant})
        self._seq.pop(tenant, None)
        return response

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        self._close_socket()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
