"""Synchronous client for the partitioning daemon.

A thin blocking wrapper over the line-delimited-JSON protocol (see
:mod:`repro.service.server`), for tests, the ``repro-cli client``
subcommand and the service benchmark.  One client = one TCP connection;
requests are tagged with sequential ``id``s and responses are matched
by id, so ingest batches may be pipelined with :meth:`ingest_async` and
collected later with :meth:`drain`.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Iterable, List, Optional, Tuple


class ServiceError(RuntimeError):
    """The daemon answered ``ok: false``."""


class ServiceClient:
    """Blocking ndjson client for :class:`PartitionService`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0
        self._pending: Dict[int, None] = {}
        self._responses: Dict[int, dict] = {}

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _send(self, payload: dict) -> int:
        request_id = self._next_id
        self._next_id += 1
        payload = dict(payload, id=request_id)
        self._sock.sendall(json.dumps(payload).encode() + b"\n")
        self._pending[request_id] = None
        return request_id

    def _read_one(self) -> dict:
        line = self._reader.readline()
        if not line:
            raise ServiceError("connection closed by daemon")
        return json.loads(line)

    def _wait_for(self, request_id: int) -> dict:
        while request_id not in self._responses:
            response = self._read_one()
            self._responses[response.get("id")] = response
        self._pending.pop(request_id, None)
        response = self._responses.pop(request_id)
        if not response.get("ok", False):
            raise ServiceError(response.get("error", "daemon error"))
        return response

    def request(self, payload: dict) -> dict:
        """Send one request and block for its response."""
        return self._wait_for(self._send(payload))

    # ------------------------------------------------------------------
    # Protocol helpers
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def open(self, tenant: str, algorithm: str = "adwise",
             partitions: int = 32, expected_edges: int = 0,
             **knobs) -> dict:
        return self.request({"op": "open", "tenant": tenant,
                             "algorithm": algorithm,
                             "partitions": partitions,
                             "expected_edges": expected_edges,
                             "knobs": knobs})

    def ingest(self, tenant: str,
               edges: Iterable[Tuple[int, int]]) -> List[Tuple[int, int, int]]:
        """Ingest a batch; block until it is partitioned.  Returns the
        emitted assignments as ``(u, v, partition)`` triples."""
        return self._assignments(self.request(self._ingest_payload(
            tenant, edges)))

    def ingest_async(self, tenant: str,
                     edges: Iterable[Tuple[int, int]]) -> int:
        """Pipeline a batch without waiting; pair with :meth:`drain`."""
        return self._send(self._ingest_payload(tenant, edges))

    def drain(self, request_ids: Iterable[int]
              ) -> List[Tuple[int, int, int]]:
        """Collect the assignments of previously pipelined batches."""
        out: List[Tuple[int, int, int]] = []
        for request_id in request_ids:
            out.extend(self._assignments(self._wait_for(request_id)))
        return out

    @staticmethod
    def _ingest_payload(tenant: str,
                        edges: Iterable[Tuple[int, int]]) -> dict:
        return {"op": "ingest", "tenant": tenant,
                "edges": [[int(u), int(v)] for u, v in edges]}

    @staticmethod
    def _assignments(response: dict) -> List[Tuple[int, int, int]]:
        return [(u, v, p) for u, v, p in response.get("assignments", [])]

    def query_vertex(self, tenant: str, vertex: int) -> List[int]:
        return self.request({"op": "query", "tenant": tenant,
                             "vertex": vertex})["replicas"]

    def query_edge(self, tenant: str, u: int, v: int) -> Optional[int]:
        return self.request({"op": "query", "tenant": tenant,
                             "edge": [u, v]})["partition"]

    def stats(self, tenant: str) -> dict:
        return self.request({"op": "stats", "tenant": tenant})

    def audit(self, tenant: str, limit: int = 32) -> dict:
        return self.request({"op": "audit", "tenant": tenant,
                             "limit": limit})

    def tenants(self) -> List[dict]:
        return self.request({"op": "tenants"})["tenants"]

    def snapshot(self, tenant: str) -> dict:
        return self.request({"op": "snapshot", "tenant": tenant})

    def finalize(self, tenant: str) -> dict:
        return self.request({"op": "finalize", "tenant": tenant})

    def close_tenant(self, tenant: str) -> dict:
        return self.request({"op": "close", "tenant": tenant})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
