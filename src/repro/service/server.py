"""The multi-tenant partitioning daemon.

One :class:`PartitionService` process serves many *tenants*.  Each
tenant is a named, long-lived :class:`~repro.api.PartitionSession` —
its own algorithm, partition count and knobs — fed incrementally over
TCP.  The wire protocol is line-delimited JSON: one request object per
line, one response object per line, with an optional ``id`` echoed back
so clients may pipeline requests.

Concurrency model
-----------------
The server is a single asyncio event loop.  Every tenant owns a bounded
``asyncio.Queue`` and one worker task; connection handlers *enqueue*
ingest batches and move on to the next request, while the worker drains
the queue in FIFO order and writes each response when its batch has
been partitioned.  The bounded queue is the backpressure mechanism:
when a tenant's queue is full, ``await queue.put(...)`` suspends the
connection that is feeding it — TCP's flow control then pushes back on
the client — without stalling other tenants.  Because a single worker
serializes each tenant's batches, results are bit-identical to feeding
the same stream through a local session (``tests/test_service.py``
proves parity against :meth:`partition_stream`).

Durability
----------
``shutdown`` (or :meth:`PartitionService.stop`) snapshots every live
tenant to ``snapshot_dir`` via :meth:`PartitionSession.snapshot`; a
daemon started over the same directory resumes those tenants
bit-identically (sessions on a wall clock cannot be snapshot and are
dropped with a warning in the shutdown response).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from typing import Dict, Optional

from repro.api import (
    PartitionSession,
    SessionError,
    SessionSnapshot,
    open_session,
    restore_session,
)
from repro.service.audit import DecisionLog
from repro.service.metrics import TenantMetrics

SNAPSHOT_SUFFIX = ".snapshot"


class Tenant:
    """Daemon-side state for one tenant: session + queue + worker."""

    def __init__(self, name: str, session: PartitionSession,
                 queue_depth: int, audit_depth: int) -> None:
        self.name = name
        self.session = session
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_depth)
        self.metrics = TenantMetrics()
        self.audit = DecisionLog(capacity=audit_depth)
        self.worker: Optional[asyncio.Task] = None
        self.closed = False


class PartitionService:
    """Asyncio TCP daemon multiplexing partitioning sessions.

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    max_tenants:
        Upper bound on concurrently open sessions; ``open`` beyond it
        is refused.
    queue_depth:
        Per-tenant ingest queue bound — the backpressure knob.
    snapshot_dir:
        Directory for shutdown snapshots; ``None`` disables durability.
        On :meth:`start`, any ``*.snapshot`` files there are restored
        as live tenants.
    audit_depth:
        Per-tenant decision-log ring capacity.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 max_tenants: int = 64, queue_depth: int = 16,
                 snapshot_dir: Optional[str] = None,
                 audit_depth: int = 4096) -> None:
        if max_tenants < 1:
            raise ValueError("max_tenants must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.host = host
        self.port = port
        self.max_tenants = max_tenants
        self.queue_depth = queue_depth
        self.snapshot_dir = snapshot_dir
        self.audit_depth = audit_depth
        self.tenants: Dict[str, Tenant] = {}
        self.started_at = 0.0
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind, restore snapshot tenants, and begin accepting clients."""
        restored = self._restore_tenants()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()
        for tenant in restored:
            self._start_worker(tenant)

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` (or a ``shutdown`` request) fires."""
        if self._server is None:
            await self.start()
        await self._stopping.wait()

    async def stop(self) -> dict:
        """Graceful shutdown: quiesce workers, snapshot live tenants."""
        report = {"snapshots": [], "dropped": []}
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for tenant in list(self.tenants.values()):
            await self._quiesce(tenant)
            if tenant.session.closed:
                continue
            if self.snapshot_dir is None:
                report["dropped"].append(tenant.name)
                continue
            try:
                path = self._snapshot_path(tenant.name)
                tenant.session.snapshot().save(path)
                report["snapshots"].append(tenant.name)
            except SessionError:
                # Wall-clock session: not resumable, nothing to persist.
                report["dropped"].append(tenant.name)
        self._stopping.set()
        return report

    def _snapshot_path(self, name: str) -> str:
        os.makedirs(self.snapshot_dir, exist_ok=True)
        return os.path.join(self.snapshot_dir, name + SNAPSHOT_SUFFIX)

    def _restore_tenants(self) -> list:
        restored = []
        if self.snapshot_dir is None or not os.path.isdir(self.snapshot_dir):
            return restored
        for filename in sorted(os.listdir(self.snapshot_dir)):
            if not filename.endswith(SNAPSHOT_SUFFIX):
                continue
            path = os.path.join(self.snapshot_dir, filename)
            name = filename[:-len(SNAPSHOT_SUFFIX)]
            session = restore_session(SessionSnapshot.load(path))
            tenant = Tenant(name, session, self.queue_depth,
                            self.audit_depth)
            self.tenants[name] = tenant
            restored.append(tenant)
            os.remove(path)
        return restored

    # ------------------------------------------------------------------
    # Tenant workers
    # ------------------------------------------------------------------
    def _start_worker(self, tenant: Tenant) -> None:
        tenant.worker = asyncio.get_running_loop().create_task(
            self._ingest_worker(tenant))

    async def _ingest_worker(self, tenant: Tenant) -> None:
        """Drain one tenant's queue; one batch at a time, FIFO."""
        while True:
            item = await tenant.queue.get()
            if item is None:
                tenant.queue.task_done()
                return
            edges, enqueued_at, reply = item
            try:
                assignments = tenant.session.ingest(edges)
                for assignment in assignments:
                    tenant.audit.record(assignment.edge.u,
                                        assignment.edge.v,
                                        assignment.partition)
                tenant.metrics.observe_batch(
                    len(edges), time.monotonic() - enqueued_at)
                response = {
                    "ok": True,
                    "accepted": len(edges),
                    "assignments": [[a.edge.u, a.edge.v, a.partition]
                                    for a in assignments],
                }
            except Exception as exc:  # surface, don't kill the worker
                response = {"ok": False, "error": str(exc)}
            await reply(response)
            tenant.queue.task_done()

    async def _quiesce(self, tenant: Tenant) -> None:
        """Stop a tenant's worker after the queued batches drain."""
        if tenant.worker is None:
            return
        await tenant.queue.put(None)
        await tenant.worker
        tenant.worker = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()

        async def send(payload: dict) -> None:
            async with write_lock:
                writer.write(json.dumps(payload).encode() + b"\n")
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    await send({"ok": False, "error": f"bad request: {exc}"})
                    continue
                stop_after = await self._dispatch(request, send)
                if stop_after:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: dict, send) -> bool:
        """Route one request; returns True when the connection (and the
        daemon, for ``shutdown``) should wind down afterwards."""
        op = request.get("op")
        request_id = request.get("id")

        async def reply(payload: dict) -> None:
            if request_id is not None:
                payload = dict(payload, id=request_id)
            await send(payload)

        try:
            if op == "ping":
                await reply({"ok": True, "pong": True,
                             "tenants": len(self.tenants)})
            elif op == "open":
                await reply(self._op_open(request))
            elif op == "ingest":
                # Replies are sent by the tenant worker (see module
                # docstring); the await below is the backpressure point.
                tenant = self._tenant_of(request)
                edges = [(int(u), int(v))
                         for u, v in request.get("edges", [])]
                tenant.metrics.observe_queue_depth(tenant.queue.qsize() + 1)
                await tenant.queue.put((edges, time.monotonic(), reply))
            elif op == "query":
                await reply(self._op_query(request))
            elif op == "stats":
                await reply(self._op_stats(request))
            elif op == "audit":
                await reply(self._op_audit(request))
            elif op == "finalize":
                await reply(await self._op_finalize(request))
            elif op == "snapshot":
                await reply(await self._op_snapshot(request))
            elif op == "close":
                await reply(await self._op_close(request))
            elif op == "tenants":
                await reply(self._op_tenants())
            elif op == "shutdown":
                report = await self.stop()
                await reply(dict(report, ok=True))
                return True
            else:
                await reply({"ok": False, "error": f"unknown op {op!r}"})
        except (SessionError, KeyError, TypeError, ValueError) as exc:
            await reply({"ok": False, "error": str(exc)})
        return False

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _tenant_of(self, request: dict) -> Tenant:
        name = request.get("tenant")
        if not name or name not in self.tenants:
            raise SessionError(f"unknown tenant {name!r}")
        tenant = self.tenants[name]
        if tenant.closed:
            raise SessionError(f"tenant {name!r} is closed")
        return tenant

    def _op_open(self, request: dict) -> dict:
        name = request.get("tenant")
        if not name or not isinstance(name, str):
            raise SessionError("open requires a tenant name")
        if any(c in name for c in "/\\\0") or name.startswith("."):
            raise SessionError(f"invalid tenant name {name!r}")
        if name in self.tenants:
            raise SessionError(f"tenant {name!r} already exists")
        if len(self.tenants) >= self.max_tenants:
            raise SessionError(
                f"tenant limit reached ({self.max_tenants})")
        knobs = request.get("knobs") or {}
        if not isinstance(knobs, dict):
            raise SessionError("knobs must be an object")
        session = open_session(
            algorithm=request.get("algorithm", "adwise"),
            partitions=request.get("partitions", 32),
            expected_edges=int(request.get("expected_edges", 0)),
            **knobs)
        tenant = Tenant(name, session, self.queue_depth, self.audit_depth)
        self.tenants[name] = tenant
        self._start_worker(tenant)
        return {"ok": True, "tenant": name,
                "algorithm": session.algorithm,
                "partitions": session.partitioner.state.num_partitions}

    def _op_query(self, request: dict) -> dict:
        tenant = self._tenant_of(request)
        if "vertex" in request:
            vertex = int(request["vertex"])
            return {"ok": True, "vertex": vertex,
                    "replicas": tenant.session.query_vertex(vertex)}
        if "edge" in request:
            u, v = request["edge"]
            return {"ok": True, "edge": [int(u), int(v)],
                    "partition": tenant.session.query_edge(int(u), int(v))}
        raise SessionError("query requires 'vertex' or 'edge'")

    def _op_stats(self, request: dict) -> dict:
        tenant = self._tenant_of(request)
        return {"ok": True, "tenant": tenant.name,
                "session": tenant.session.stats().to_dict(),
                "metrics": tenant.metrics.to_dict(),
                "queue_depth": tenant.queue.qsize(),
                "audit": {"recorded": tenant.audit.total_recorded,
                          "retained": len(tenant.audit),
                          "dropped": tenant.audit.dropped}}

    def _op_audit(self, request: dict) -> dict:
        tenant = self._tenant_of(request)
        limit = int(request.get("limit", 32))
        return {"ok": True, "tenant": tenant.name,
                "decisions": [r.to_dict()
                              for r in tenant.audit.tail(limit)],
                "dropped": tenant.audit.dropped}

    async def _op_finalize(self, request: dict) -> dict:
        """Drain the queue, finalize the session, retire the tenant."""
        tenant = self._tenant_of(request)
        tenant.closed = True  # refuse new batches while draining
        await self._quiesce(tenant)
        result = tenant.session.finalize()
        del self.tenants[tenant.name]
        return {"ok": True, "tenant": tenant.name,
                "assignments": sorted(
                    [e.u, e.v, p] for e, p in result.assignments.items()),
                "replication_degree": result.replication_degree,
                "imbalance": result.imbalance,
                "latency_ms": result.latency_ms,
                "extras": result.extras}

    async def _op_snapshot(self, request: dict) -> dict:
        """On-demand snapshot of one live tenant (tenant stays live)."""
        if self.snapshot_dir is None:
            raise SessionError("daemon started without --snapshot-dir")
        tenant = self._tenant_of(request)
        await tenant.queue.join()  # settle in-flight batches first
        path = self._snapshot_path(tenant.name)
        tenant.session.snapshot().save(path)
        return {"ok": True, "tenant": tenant.name, "path": path}

    async def _op_close(self, request: dict) -> dict:
        """Drop a tenant without finalizing (abandon its stream)."""
        tenant = self._tenant_of(request)
        tenant.closed = True
        await self._quiesce(tenant)
        del self.tenants[tenant.name]
        return {"ok": True, "tenant": tenant.name, "closed": True}

    def _op_tenants(self) -> dict:
        return {"ok": True, "tenants": [
            {"tenant": t.name,
             "algorithm": t.session.algorithm,
             "edges_ingested": t.session.edges_ingested,
             "queue_depth": t.queue.qsize()}
            for t in self.tenants.values()]}


def run_service(host: str = "127.0.0.1", port: int = 0,
                max_tenants: int = 64, queue_depth: int = 16,
                snapshot_dir: Optional[str] = None,
                ready_callback=None) -> None:
    """Blocking entry point used by ``repro-cli serve``.

    ``ready_callback(service)`` fires once the socket is bound — the CLI
    uses it to print the actual port (``--port 0``), tests use it to
    learn where to connect.
    """

    async def main() -> None:
        service = PartitionService(host=host, port=port,
                                   max_tenants=max_tenants,
                                   queue_depth=queue_depth,
                                   snapshot_dir=snapshot_dir)
        await service.start()
        if ready_callback is not None:
            ready_callback(service)
        await service.serve_forever()

    asyncio.run(main())


__all__ = ["PartitionService", "Tenant", "run_service", "SNAPSHOT_SUFFIX"]
