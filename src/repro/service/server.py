"""The multi-tenant partitioning daemon.

One :class:`PartitionService` process serves many *tenants*.  Each
tenant is a named, long-lived :class:`~repro.api.PartitionSession` —
its own algorithm, partition count and knobs — fed incrementally over
TCP.  The wire protocol is line-delimited JSON: one request object per
line, one response object per line, with an optional ``id`` echoed back
so clients may pipeline requests.

Concurrency model
-----------------
The server is a single asyncio event loop.  Every tenant owns a bounded
``asyncio.Queue`` and one worker task; connection handlers *enqueue*
ingest batches and move on to the next request, while the worker drains
the queue in FIFO order and writes each response when its batch has
been partitioned.  The bounded queue is the backpressure mechanism:
when a tenant's queue is full, ``await queue.put(...)`` suspends the
connection that is feeding it — TCP's flow control then pushes back on
the client — without stalling other tenants.  Because a single worker
serializes each tenant's batches, results are bit-identical to feeding
the same stream through a local session (``tests/test_service.py``
proves parity against :meth:`partition_stream`).

Durability
----------
Two tiers (see :mod:`repro.service.wal` for the crash-safety design):

* ``wal_dir`` — **crash safe**: every accepted ingest batch is appended
  to a per-tenant write-ahead log *before* it is enqueued, compacted
  into a snapshot every ``wal_compact_every`` batches; a SIGKILL'd
  daemon restarted over the same directory replays the log and resumes
  every tenant bit-identically (``tests/test_service_chaos.py``).
* ``snapshot_dir`` — graceful only: ``shutdown`` (or :meth:`stop`)
  snapshots live tenants; a hard kill loses everything since start.
  Kept for installs that do not need the WAL's write amplification.

Exactly-once ingest
-------------------
Every ingest batch carries a per-tenant ``seq`` (clients that omit it
get server-assigned seqs and no idempotency).  A batch is *accepted*
when its WAL record is durable and it is enqueued, *applied* when the
partitioner has consumed it.  A duplicate seq — a client retry after a
dropped connection or a daemon crash — is answered from a bounded
replay cache (applied batches) or by waiting on the in-flight batch
(accepted ones), never re-partitioned; a seq gap is refused loudly.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.api import (
    PartitionSession,
    SessionError,
    SessionSnapshot,
    open_session,
    restore_session,
)
from repro.service.audit import DecisionLog
from repro.service.metrics import TenantMetrics
from repro.service.wal import (
    FSYNC_MODES,
    FaultHook,
    SimulatedCrash,
    TenantWAL,
    WALError,
    WAL_SNAPSHOT_SUFFIX,
    WAL_SUFFIX,
    read_wal,
    wal_path,
    wal_snapshot_path,
    write_snapshot_atomic,
)

SNAPSHOT_SUFFIX = ".snapshot"


class Tenant:
    """Daemon-side state for one tenant: session + queue + worker."""

    def __init__(self, name: str, session: PartitionSession,
                 queue_depth: int, audit_depth: int,
                 replay_depth: int = 256,
                 metrics_window: int = 1024) -> None:
        self.name = name
        self.session = session
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_depth)
        self.metrics = TenantMetrics(capacity=metrics_window)
        self.audit = DecisionLog(capacity=audit_depth)
        self.worker: Optional[asyncio.Task] = None
        self.closed = False
        #: Write-ahead log handle; ``None`` without ``wal_dir``.
        self.wal: Optional[TenantWAL] = None
        #: Highest seq durably logged + enqueued.
        self.accepted_seq = 0
        #: Highest seq the partitioner has consumed.
        self.applied_seq = 0
        #: Applied seq at the last WAL compaction.
        self.compacted_seq = 0
        #: Bounded ``seq -> response`` cache answering retried batches.
        self.replay: "OrderedDict[int, dict]" = OrderedDict()
        self.replay_depth = replay_depth
        #: Futures of duplicate requests waiting on an in-flight seq.
        self.waiters: Dict[int, List[asyncio.Future]] = {}
        self.last_compact_error: Optional[str] = None


class _LineReader:
    """Bounded ndjson line reader over a raw ``StreamReader``.

    ``asyncio``'s own ``readline`` raises (and wedges the buffer) past
    its limit; this reader instead *discards* an oversized line and
    reports it, so the connection can answer a diagnostic and keep
    serving — garbage input must never kill a connection's task.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 max_line_bytes: int) -> None:
        self._reader = reader
        self._max = max_line_bytes
        self._buffer = bytearray()

    async def readline(self) -> Tuple[Optional[bytes], bool]:
        """Next line as ``(line, overflowed)``; ``(None, False)`` on EOF."""
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline + 1])
                del self._buffer[:newline + 1]
                return line, False
            if len(self._buffer) > self._max:
                return None, await self._discard_line()
            chunk = await self._reader.read(65536)
            if not chunk:
                if self._buffer:  # final line without a newline
                    line = bytes(self._buffer)
                    self._buffer.clear()
                    return line, False
                return None, False
            self._buffer.extend(chunk)

    async def _discard_line(self) -> bool:
        """Drop buffered bytes up to and including the next newline."""
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                del self._buffer[:newline + 1]
                return True
            self._buffer.clear()
            chunk = await self._reader.read(65536)
            if not chunk:
                return True
            self._buffer.extend(chunk)


class PartitionService:
    """Asyncio TCP daemon multiplexing partitioning sessions.

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    max_tenants:
        Upper bound on concurrently open sessions; ``open`` beyond it
        is refused.
    queue_depth:
        Per-tenant ingest queue bound — the backpressure knob.
    snapshot_dir:
        Directory for graceful-shutdown snapshots (restored on start).
    wal_dir:
        Directory for per-tenant write-ahead logs + compaction
        snapshots — crash-safe durability (see module docstring).
        ``None`` disables the WAL; may be combined with
        ``snapshot_dir`` (WAL-covered tenants take precedence).
    wal_compact_every:
        Applied batches between WAL compactions (snapshot + truncate).
    fsync:
        WAL fsync policy: ``always`` / ``batch`` / ``off``.
    max_line_bytes:
        Request-line bound; longer lines are discarded and answered
        with a diagnostic instead of buffered unboundedly.
    replay_depth:
        Per-tenant bound on cached ingest responses for duplicate
        (retried) seqs.
    audit_depth:
        Per-tenant decision-log ring capacity.
    metrics_window:
        Per-tenant latency-sample window for the p50/p99 quantiles
        reported by ``stats`` and ``metrics_text``.
    fault_hook:
        Test-only crash injection: called at every WAL/snapshot/ack
        boundary (see ``wal.SERVICE_INJECTION_POINTS``); raising
        :class:`~repro.service.wal.SimulatedCrash` aborts the daemon
        as a SIGKILL would.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 max_tenants: int = 64, queue_depth: int = 16,
                 snapshot_dir: Optional[str] = None,
                 wal_dir: Optional[str] = None,
                 wal_compact_every: int = 64,
                 fsync: str = "batch",
                 max_line_bytes: int = 1_048_576,
                 replay_depth: int = 256,
                 audit_depth: int = 4096,
                 metrics_window: int = 1024,
                 fault_hook: Optional[FaultHook] = None) -> None:
        if max_tenants < 1:
            raise ValueError("max_tenants must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if wal_compact_every < 1:
            raise ValueError("wal_compact_every must be >= 1")
        if fsync not in FSYNC_MODES:
            raise ValueError(f"fsync must be one of {FSYNC_MODES}")
        if max_line_bytes < 1024:
            raise ValueError("max_line_bytes must be >= 1024")
        if replay_depth < 1:
            raise ValueError("replay_depth must be >= 1")
        if audit_depth < 1:
            raise ValueError("audit_depth must be >= 1")
        if metrics_window < 1:
            raise ValueError("metrics_window must be >= 1")
        self.host = host
        self.port = port
        self.max_tenants = max_tenants
        self.queue_depth = queue_depth
        self.snapshot_dir = snapshot_dir
        self.wal_dir = wal_dir
        self.wal_compact_every = wal_compact_every
        self.fsync = fsync
        self.max_line_bytes = max_line_bytes
        self.replay_depth = replay_depth
        self.audit_depth = audit_depth
        self.metrics_window = metrics_window
        self.fault_hook = fault_hook
        self.tenants: Dict[str, Tenant] = {}
        self.started_at = 0.0
        self.crashed = False
        #: Tenants recovered from the WAL on the last :meth:`start`,
        #: with the number of replayed batches (observability + tests).
        self.recovered: Dict[str, int] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping = asyncio.Event()
        self._connections: Set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind, recover WAL/snapshot tenants, begin accepting clients."""
        restored = self._restore_wal_tenants()
        restored += self._restore_tenants()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()
        for tenant in restored:
            self._start_worker(tenant)

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` (or a ``shutdown`` request) fires."""
        if self._server is None:
            await self.start()
        await self._stopping.wait()

    async def stop(self) -> dict:
        """Graceful shutdown: quiesce workers, persist live tenants."""
        report = {"snapshots": [], "dropped": []}
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for tenant in list(self.tenants.values()):
            await self._quiesce(tenant)
            if tenant.session.closed:
                continue
            if tenant.wal is not None:
                # Final compaction: the WAL directory alone resumes the
                # tenant on the next start.
                try:
                    self._compact(tenant)
                    tenant.wal.close()
                    report["snapshots"].append(tenant.name)
                except SessionError:
                    report["dropped"].append(tenant.name)
                continue
            if self.snapshot_dir is None:
                report["dropped"].append(tenant.name)
                continue
            try:
                path = self._snapshot_path(tenant.name)
                snapshot = tenant.session.snapshot()
                snapshot.seq = tenant.applied_seq
                snapshot.save(path)
                report["snapshots"].append(tenant.name)
            except SessionError:
                # Wall-clock session: not resumable, nothing to persist.
                report["dropped"].append(tenant.name)
        self._stopping.set()
        return report

    async def _abort(self) -> None:
        """Simulated hard crash (a :class:`SimulatedCrash` fired).

        Mirrors a SIGKILL as closely as an in-process stop can: no
        graceful snapshots, workers cancelled mid-batch, connections
        reset.  Durability must come from the WAL alone.
        """
        if self.crashed:
            return
        self.crashed = True
        if self._server is not None:
            self._server.close()
            self._server = None
        current = asyncio.current_task()
        for tenant in self.tenants.values():
            if tenant.worker is not None and tenant.worker is not current:
                tenant.worker.cancel()
            for futures in tenant.waiters.values():
                for future in futures:
                    if not future.done():
                        future.cancel()
            tenant.waiters.clear()
        for writer in list(self._connections):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        self._connections.clear()
        self._stopping.set()

    def _snapshot_path(self, name: str) -> str:
        os.makedirs(self.snapshot_dir, exist_ok=True)
        return os.path.join(self.snapshot_dir, name + SNAPSHOT_SUFFIX)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _restore_tenants(self) -> list:
        """Legacy graceful-shutdown snapshots (``snapshot_dir``)."""
        restored = []
        if self.snapshot_dir is None or not os.path.isdir(self.snapshot_dir):
            return restored
        for filename in sorted(os.listdir(self.snapshot_dir)):
            if not filename.endswith(SNAPSHOT_SUFFIX):
                continue
            name = filename[:-len(SNAPSHOT_SUFFIX)]
            if name in self.tenants:  # WAL recovery already owns it
                continue
            path = os.path.join(self.snapshot_dir, filename)
            snapshot = SessionSnapshot.load(path)
            session = restore_session(snapshot)
            tenant = Tenant(name, session, self.queue_depth,
                            self.audit_depth, self.replay_depth,
                            self.metrics_window)
            seq = int(getattr(snapshot, "seq", 0))
            tenant.accepted_seq = tenant.applied_seq = seq
            tenant.compacted_seq = seq
            self.tenants[name] = tenant
            restored.append(tenant)
            os.remove(path)
        return restored

    def _restore_wal_tenants(self) -> list:
        """Crash recovery: snapshot + WAL replay per tenant (tentpole)."""
        self.recovered = {}
        restored = []
        if self.wal_dir is None:
            return restored
        os.makedirs(self.wal_dir, exist_ok=True)
        names = sorted(
            filename[:-len(WAL_SNAPSHOT_SUFFIX)]
            for filename in os.listdir(self.wal_dir)
            if filename.endswith(WAL_SNAPSHOT_SUFFIX)
            and not filename.startswith("."))
        for name in names:
            restored.append(self._recover_tenant(name))
        for filename in sorted(os.listdir(self.wal_dir)):
            if filename.endswith(WAL_SUFFIX):
                name = filename[:-len(WAL_SUFFIX)]
                if name not in self.tenants:
                    raise WALError(
                        f"{os.path.join(self.wal_dir, filename)}: WAL "
                        f"present without its snapshot — refusing to "
                        f"silently drop tenant {name!r}")
        return restored

    def _recover_tenant(self, name: str) -> Tenant:
        snap_path = wal_snapshot_path(self.wal_dir, name)
        snapshot = SessionSnapshot.load(snap_path)
        applied = int(getattr(snapshot, "seq", 0))
        session = restore_session(snapshot)
        tenant = Tenant(name, session, self.queue_depth,
                        self.audit_depth, self.replay_depth,
                        self.metrics_window)
        log_path = wal_path(self.wal_dir, name)
        replayed = 0
        if os.path.exists(log_path):
            header, records, _torn = read_wal(log_path)
            self._verify_topology(name, header, snapshot, log_path)
            for seq, edges in records:
                if seq <= applied:
                    continue  # duplicate of the snapshot (mid-compact)
                if seq != applied + 1:
                    raise WALError(
                        f"{log_path}: WAL gap — record seq {seq} "
                        f"follows applied seq {applied}")
                self._apply_batch(tenant, seq, edges)
                applied = seq
                replayed += 1
        else:
            header = self._wal_header(name, session)
        tenant.accepted_seq = tenant.applied_seq = applied
        # Bound the *next* recovery: snapshot the recovered state, then
        # start a clean log.  Snapshot-before-truncate: a crash between
        # the two leaves duplicates the replay above skips.
        compaction = session.snapshot()
        compaction.seq = applied
        write_snapshot_atomic(snap_path, compaction,
                              fsync=self.fsync != "off")
        tenant.wal = TenantWAL(log_path, header, fsync=self.fsync,
                               fault_hook=self.fault_hook)
        tenant.compacted_seq = applied
        self.tenants[name] = tenant
        self.recovered[name] = replayed
        return tenant

    @staticmethod
    def _verify_topology(name: str, header: dict,
                         snapshot: SessionSnapshot, path: str) -> None:
        expected = {"tenant": name, "algorithm": snapshot.algorithm,
                    "partitions": [int(p) for p in snapshot.partitions]}
        actual = {key: header.get(key) for key in expected}
        if actual != expected:
            raise WALError(
                f"{path}: WAL/snapshot topology mismatch — WAL header "
                f"{actual} vs snapshot {expected}")

    @staticmethod
    def _wal_header(name: str, session: PartitionSession) -> dict:
        return {"tenant": name, "algorithm": session.algorithm,
                "partitions": [int(p) for p in
                               session.partitioner.state.partitions],
                "format": 1}

    # ------------------------------------------------------------------
    # Tenant workers
    # ------------------------------------------------------------------
    def _start_worker(self, tenant: Tenant) -> None:
        tenant.worker = asyncio.get_running_loop().create_task(
            self._ingest_worker(tenant))

    def _hook(self, point: str, tenant: str, seq: int) -> None:
        if self.fault_hook is not None:
            self.fault_hook(point, tenant, seq)

    def _apply_batch(self, tenant: Tenant, seq: int, edges) -> dict:
        """Partition one batch and cache its response (worker + replay)."""
        try:
            assignments = tenant.session.ingest(edges)
            for assignment in assignments:
                tenant.audit.record(assignment.edge.u,
                                    assignment.edge.v,
                                    assignment.partition)
            response = {
                "ok": True,
                "accepted": len(edges),
                "seq": seq,
                "assignments": [[a.edge.u, a.edge.v, a.partition]
                                for a in assignments],
            }
        except Exception as exc:  # surface, don't kill the worker
            response = {"ok": False, "error": str(exc), "seq": seq}
        tenant.applied_seq = seq
        tenant.replay[seq] = response
        while len(tenant.replay) > tenant.replay_depth:
            tenant.replay.popitem(last=False)
        return response

    @staticmethod
    def _fire_waiters(tenant: Tenant, seq: int, response: dict) -> None:
        for future in tenant.waiters.pop(seq, []):
            if not future.done():
                future.set_result(response)

    async def _ingest_worker(self, tenant: Tenant) -> None:
        """Drain one tenant's queue; one batch at a time, FIFO."""
        while True:
            item = await tenant.queue.get()
            if item is None:
                tenant.queue.task_done()
                return
            seq, edges, enqueued_at, reply, trace_ctx = item
            try:
                # Adopt the client's trace context (sent over ndjson) so
                # this span joins the caller's partition->service trace.
                with obs.use_context(trace_ctx), \
                        obs.span("service.apply_batch", tenant=tenant.name,
                                 seq=seq, edges=len(edges)):
                    response = self._apply_batch(tenant, seq, edges)
                tenant.metrics.observe_batch(
                    len(edges), time.monotonic() - enqueued_at)
                self._fire_waiters(tenant, seq, response)
                self._hook("pre-ack", tenant.name, seq)
                try:
                    await reply(response)
                except (ConnectionError, OSError):
                    # The requesting connection is gone; the response
                    # stays in the replay cache for the client's retry.
                    pass
                if (tenant.wal is not None
                        and tenant.applied_seq - tenant.compacted_seq
                        >= self.wal_compact_every):
                    try:
                        self._compact(tenant)
                    except SimulatedCrash:
                        raise
                    except Exception as exc:
                        tenant.last_compact_error = str(exc)
            except SimulatedCrash:
                tenant.queue.task_done()
                asyncio.get_running_loop().create_task(self._abort())
                return
            tenant.queue.task_done()

    def _compact(self, tenant: Tenant) -> None:
        """Snapshot + truncate: bound WAL replay cost (tentpole)."""
        seq = tenant.applied_seq
        self._hook("pre-compact", tenant.name, seq)
        snapshot = tenant.session.snapshot()
        snapshot.seq = seq
        write_snapshot_atomic(wal_snapshot_path(self.wal_dir, tenant.name),
                              snapshot, fsync=self.fsync != "off")
        self._hook("mid-compact", tenant.name, seq)
        tenant.wal.truncate_through(seq)
        tenant.compacted_seq = seq
        tenant.last_compact_error = None
        self._hook("post-compact", tenant.name, seq)

    async def _quiesce(self, tenant: Tenant) -> None:
        """Stop a tenant's worker after the queued batches drain."""
        if tenant.worker is None:
            return
        await tenant.queue.put(None)
        await tenant.worker
        tenant.worker = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        self._connections.add(writer)

        async def send(payload: dict) -> None:
            async with write_lock:
                writer.write(json.dumps(payload).encode() + b"\n")
                await writer.drain()

        lines = _LineReader(reader, self.max_line_bytes)
        try:
            while True:
                line, overflowed = await lines.readline()
                if overflowed:
                    await send({"ok": False, "error":
                                f"bad request: line exceeds "
                                f"{self.max_line_bytes} bytes"})
                    continue
                if line is None:
                    break
                if not line.strip():
                    continue
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    await send({"ok": False, "error": f"bad request: {exc}"})
                    continue
                stop_after = await self._dispatch(request, send)
                if stop_after:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: dict, send) -> bool:
        """Route one request; returns True when the connection (and the
        daemon, for ``shutdown``) should wind down afterwards."""
        op = request.get("op")
        request_id = request.get("id")
        obs.counter("repro_service_requests_total", op=str(op)).inc()

        async def reply(payload: dict) -> None:
            if request_id is not None:
                payload = dict(payload, id=request_id)
            await send(payload)

        try:
            if op == "ping":
                await reply({"ok": True, "pong": True,
                             "tenants": len(self.tenants)})
            elif op == "open":
                await reply(self._op_open(request))
            elif op == "ingest":
                await self._op_ingest(request, reply)
            elif op == "query":
                await reply(self._op_query(request))
            elif op == "stats":
                await reply(self._op_stats(request))
            elif op == "audit":
                await reply(self._op_audit(request))
            elif op == "finalize":
                await reply(await self._op_finalize(request))
            elif op == "snapshot":
                await reply(await self._op_snapshot(request))
            elif op == "close":
                await reply(await self._op_close(request))
            elif op == "tenants":
                await reply(self._op_tenants())
            elif op == "metrics_text":
                await reply(self._op_metrics_text())
            elif op == "shutdown":
                report = await self.stop()
                await reply(dict(report, ok=True))
                return True
            else:
                await reply({"ok": False, "error": f"unknown op {op!r}"})
        except SimulatedCrash:
            await self._abort()
            return True
        except (SessionError, WALError, KeyError, TypeError,
                ValueError) as exc:
            await reply({"ok": False, "error": str(exc)})
        return False

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _tenant_of(self, request: dict) -> Tenant:
        name = request.get("tenant")
        if not isinstance(name, str) or name not in self.tenants:
            raise SessionError(f"unknown tenant {name!r}")
        tenant = self.tenants[name]
        if tenant.closed:
            raise SessionError(f"tenant {name!r} is closed")
        return tenant

    def _op_open(self, request: dict) -> dict:
        name = request.get("tenant")
        if not name or not isinstance(name, str):
            raise SessionError("open requires a tenant name")
        if any(c in name for c in "/\\\0") or name.startswith("."):
            raise SessionError(f"invalid tenant name {name!r}")
        if name in self.tenants:
            raise SessionError(f"tenant {name!r} already exists")
        if len(self.tenants) >= self.max_tenants:
            raise SessionError(
                f"tenant limit reached ({self.max_tenants})")
        knobs = request.get("knobs") or {}
        if not isinstance(knobs, dict):
            raise SessionError("knobs must be an object")
        session = open_session(
            algorithm=request.get("algorithm", "adwise"),
            partitions=request.get("partitions", 32),
            expected_edges=int(request.get("expected_edges", 0)),
            **knobs)
        tenant = Tenant(name, session, self.queue_depth, self.audit_depth,
                        self.replay_depth, self.metrics_window)
        if self.wal_dir is not None:
            # Snapshot first so a crash between the two writes leaves a
            # resumable tenant (a WAL alone is unrecoverable state).
            os.makedirs(self.wal_dir, exist_ok=True)
            snapshot = session.snapshot()
            snapshot.seq = 0
            write_snapshot_atomic(wal_snapshot_path(self.wal_dir, name),
                                  snapshot, fsync=self.fsync != "off")
            tenant.wal = TenantWAL(wal_path(self.wal_dir, name),
                                   self._wal_header(name, session),
                                   fsync=self.fsync,
                                   fault_hook=self.fault_hook)
        self.tenants[name] = tenant
        self._start_worker(tenant)
        return {"ok": True, "tenant": name,
                "algorithm": session.algorithm,
                "partitions": session.partitioner.state.num_partitions,
                "durable": tenant.wal is not None}

    async def _op_ingest(self, request: dict, reply) -> None:
        """Accept one batch: WAL append -> enqueue (replies come from
        the tenant worker; the ``queue.put`` is the backpressure
        point).  Duplicate seqs answer from the replay cache."""
        tenant = self._tenant_of(request)
        edges = [(int(u), int(v)) for u, v in request.get("edges", [])]
        raw_seq = request.get("seq")
        if raw_seq is None:
            seq = tenant.accepted_seq + 1  # legacy client: no idempotency
        else:
            seq = int(raw_seq)
            if seq < 1:
                raise SessionError("ingest seq must be >= 1")
            if seq <= tenant.applied_seq:
                cached = tenant.replay.get(seq)
                if cached is None:
                    raise SessionError(
                        f"batch seq {seq} was applied but its response "
                        f"left the replay cache "
                        f"(depth {tenant.replay_depth})")
                await reply(dict(cached, replayed=True))
                return
            if seq <= tenant.accepted_seq:
                # Duplicate of an in-flight batch: wait for the worker.
                future = asyncio.get_running_loop().create_future()
                tenant.waiters.setdefault(seq, []).append(future)
                response = await future
                await reply(dict(response, replayed=True))
                return
            if seq != tenant.accepted_seq + 1:
                raise SessionError(
                    f"ingest seq gap for tenant {tenant.name!r}: got "
                    f"{seq}, expected {tenant.accepted_seq + 1}")
        if tenant.wal is not None:
            tenant.wal.append(seq, edges)
        tenant.accepted_seq = seq
        obs.counter("repro_service_edges_total",
                    tenant=tenant.name).inc(len(edges))
        tenant.metrics.observe_queue_depth(tenant.queue.qsize() + 1)
        trace_ctx = request.get("trace")
        if not isinstance(trace_ctx, dict):
            trace_ctx = None
        await tenant.queue.put((seq, edges, time.monotonic(), reply,
                                trace_ctx))

    def _op_query(self, request: dict) -> dict:
        tenant = self._tenant_of(request)
        if "vertex" in request:
            vertex = int(request["vertex"])
            return {"ok": True, "vertex": vertex,
                    "replicas": tenant.session.query_vertex(vertex)}
        if "edge" in request:
            u, v = request["edge"]
            return {"ok": True, "edge": [int(u), int(v)],
                    "partition": tenant.session.query_edge(int(u), int(v))}
        raise SessionError("query requires 'vertex' or 'edge'")

    def _op_stats(self, request: dict) -> dict:
        tenant = self._tenant_of(request)
        return {"ok": True, "tenant": tenant.name,
                "session": tenant.session.stats().to_dict(),
                "metrics": tenant.metrics.to_dict(),
                "queue_depth": tenant.queue.qsize(),
                "accepted_seq": tenant.accepted_seq,
                "applied_seq": tenant.applied_seq,
                "durability": {
                    "wal": tenant.wal is not None,
                    "compacted_seq": tenant.compacted_seq,
                    "last_compact_error": tenant.last_compact_error},
                "audit": {"recorded": tenant.audit.total_recorded,
                          "retained": len(tenant.audit),
                          "capacity": tenant.audit.capacity,
                          "dropped": tenant.audit.dropped}}

    def _op_audit(self, request: dict) -> dict:
        tenant = self._tenant_of(request)
        limit = int(request.get("limit", 32))
        return {"ok": True, "tenant": tenant.name,
                "decisions": [r.to_dict()
                              for r in tenant.audit.tail(limit)],
                "dropped": tenant.audit.dropped}

    def _remove_wal_files(self, tenant: Tenant) -> None:
        if tenant.wal is None:
            return
        tenant.wal.close(remove=True)
        snap_path = wal_snapshot_path(self.wal_dir, tenant.name)
        if os.path.exists(snap_path):
            os.remove(snap_path)

    async def _op_finalize(self, request: dict) -> dict:
        """Drain the queue, finalize the session, retire the tenant."""
        tenant = self._tenant_of(request)
        tenant.closed = True  # refuse new batches while draining
        await self._quiesce(tenant)
        result = tenant.session.finalize()
        del self.tenants[tenant.name]
        self._remove_wal_files(tenant)
        return {"ok": True, "tenant": tenant.name,
                "assignments": sorted(
                    [e.u, e.v, p] for e, p in result.assignments.items()),
                "replication_degree": result.replication_degree,
                "imbalance": result.imbalance,
                "latency_ms": result.latency_ms,
                "extras": result.extras}

    async def _op_snapshot(self, request: dict) -> dict:
        """On-demand snapshot of one live tenant (tenant stays live)."""
        if self.snapshot_dir is None and self.wal_dir is None:
            raise SessionError(
                "daemon started without --snapshot-dir or --wal-dir")
        tenant = self._tenant_of(request)
        await tenant.queue.join()  # settle in-flight batches first
        if tenant.wal is not None:
            self._compact(tenant)
            path = wal_snapshot_path(self.wal_dir, tenant.name)
        else:
            path = self._snapshot_path(tenant.name)
            snapshot = tenant.session.snapshot()
            snapshot.seq = tenant.applied_seq
            snapshot.save(path)
        return {"ok": True, "tenant": tenant.name, "path": path}

    async def _op_close(self, request: dict) -> dict:
        """Drop a tenant without finalizing (abandon its stream)."""
        tenant = self._tenant_of(request)
        tenant.closed = True
        await self._quiesce(tenant)
        del self.tenants[tenant.name]
        self._remove_wal_files(tenant)
        return {"ok": True, "tenant": tenant.name, "closed": True}

    def _op_tenants(self) -> dict:
        return {"ok": True, "tenants": [
            {"tenant": t.name,
             "algorithm": t.session.algorithm,
             "edges_ingested": t.session.edges_ingested,
             "queue_depth": t.queue.qsize(),
             "applied_seq": t.applied_seq,
             "durable": t.wal is not None}
            for t in self.tenants.values()]}

    def _scrape_snapshot(self) -> dict:
        """Scrape-time snapshot: the process registry plus per-tenant
        series synthesized from each tenant's always-on bookkeeping.

        Built at scrape time so the ingest hot path pays nothing for
        these series beyond what ``TenantMetrics`` already records.
        """
        snap = obs.snapshot()
        snap["gauges"].append({
            "name": "repro_service_uptime_seconds", "labels": {},
            "value": max(time.monotonic() - self.started_at, 0.0)})
        snap["gauges"].append({
            "name": "repro_service_tenants", "labels": {},
            "value": float(len(self.tenants))})
        for tenant in sorted(self.tenants.values(), key=lambda t: t.name):
            labels = {"tenant": tenant.name}
            metrics = tenant.metrics
            snap["counters"].extend([
                {"name": "repro_tenant_edges_ingested_total",
                 "labels": labels, "value": float(metrics.edges_ingested)},
                {"name": "repro_tenant_batches_total",
                 "labels": labels, "value": float(metrics.batches)},
                {"name": "repro_tenant_audit_recorded_total",
                 "labels": labels,
                 "value": float(tenant.audit.total_recorded)},
            ])
            snap["gauges"].extend([
                {"name": "repro_tenant_queue_depth",
                 "labels": labels, "value": float(tenant.queue.qsize())},
                {"name": "repro_tenant_queue_high_water",
                 "labels": labels, "value": float(metrics.queue_high_water)},
                {"name": "repro_tenant_applied_seq",
                 "labels": labels, "value": float(tenant.applied_seq)},
                {"name": "repro_tenant_edges_per_second",
                 "labels": labels, "value": metrics.edges_per_second},
            ])
            snap["histograms"].append(
                metrics.latency_histogram.snapshot_entry(
                    "repro_tenant_ingest_latency_seconds", labels))
        return snap

    def _op_metrics_text(self) -> dict:
        """Prometheus text exposition of daemon + tenant series."""
        return {"ok": True,
                "metrics_text": obs.prometheus_text(self._scrape_snapshot())}


def run_service(host: str = "127.0.0.1", port: int = 0,
                max_tenants: int = 64, queue_depth: int = 16,
                snapshot_dir: Optional[str] = None,
                wal_dir: Optional[str] = None,
                wal_compact_every: int = 64,
                fsync: str = "batch",
                max_line_bytes: int = 1_048_576,
                audit_depth: int = 4096,
                metrics_window: int = 1024,
                fault_hook: Optional[FaultHook] = None,
                ready_callback=None) -> None:
    """Blocking entry point used by ``repro-cli serve``.

    ``ready_callback(service)`` fires once the socket is bound — the CLI
    uses it to print the actual port (``--port 0``), tests use it to
    learn where to connect.
    """

    async def main() -> None:
        service = PartitionService(host=host, port=port,
                                   max_tenants=max_tenants,
                                   queue_depth=queue_depth,
                                   snapshot_dir=snapshot_dir,
                                   wal_dir=wal_dir,
                                   wal_compact_every=wal_compact_every,
                                   fsync=fsync,
                                   max_line_bytes=max_line_bytes,
                                   audit_depth=audit_depth,
                                   metrics_window=metrics_window,
                                   fault_hook=fault_hook)
        await service.start()
        if ready_callback is not None:
            ready_callback(service)
        await service.serve_forever()

    asyncio.run(main())


__all__ = ["PartitionService", "Tenant", "run_service", "SNAPSHOT_SUFFIX"]
