"""Decision audit log: a bounded ring of recent partitioning decisions.

Every assignment the daemon emits for a tenant is appended here with a
monotonically increasing sequence number, so an operator (or a test) can
ask "what did the partitioner just decide, and in what order?" without
the daemon retaining the unbounded full history.  ``tail(n)`` returns
the most recent ``n`` records oldest-first; ``dropped`` says how many
older records the ring has already forgotten.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class AuditRecord:
    """One partitioning decision, as the audit trail remembers it."""

    seq: int
    u: int
    v: int
    partition: int

    def to_dict(self) -> dict:
        return {"seq": self.seq, "u": self.u, "v": self.v,
                "partition": self.partition}


class DecisionLog:
    """Fixed-capacity ring buffer of :class:`AuditRecord`."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._records: List[AuditRecord] = []
        self._cursor = 0
        self._next_seq = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def total_recorded(self) -> int:
        """Decisions ever appended (including ones the ring dropped)."""
        return self._next_seq

    @property
    def dropped(self) -> int:
        return self._next_seq - len(self._records)

    def record(self, u: int, v: int, partition: int) -> AuditRecord:
        entry = AuditRecord(self._next_seq, u, v, partition)
        self._next_seq += 1
        if len(self._records) < self.capacity:
            self._records.append(entry)
        else:
            self._records[self._cursor] = entry
            self._cursor = (self._cursor + 1) % self.capacity
        return entry

    def tail(self, count: int) -> List[AuditRecord]:
        """The most recent ``count`` records, oldest-first."""
        if count <= 0:
            return []
        in_order = self._records[self._cursor:] + self._records[:self._cursor]
        return in_order[-count:]
