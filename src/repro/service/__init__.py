"""Partitioning-as-a-service: a multi-tenant asyncio daemon.

This package turns the session API (:mod:`repro.api`) into a long-lived
network service: a single :class:`~repro.service.server.PartitionService`
process multiplexes many tenants, each bound to a live
:class:`~repro.api.PartitionSession`, over a line-delimited-JSON TCP
protocol.  Per-tenant bounded ingest queues provide backpressure, a
metrics/audit layer exposes throughput, replication degree, imbalance
and a decision log, and two durability tiers persist state: graceful
shutdown snapshots (``snapshot_dir``), and a per-tenant write-ahead log
(``wal_dir``, :mod:`repro.service.wal`) that makes a SIGKILL'd daemon
resume every tenant bit-identically after restart, with exactly-once
ingest keyed by ``(tenant, seq)``.

Entry points: ``repro-cli serve`` starts a daemon,
:class:`~repro.service.client.ServiceClient` talks to one (and
transparently reconnects + resends across connection drops).
"""

from repro.service.audit import AuditRecord, DecisionLog
from repro.service.client import (
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
    ServiceTimeout,
)
from repro.service.metrics import TenantMetrics
from repro.service.server import PartitionService
from repro.service.wal import (
    FSYNC_MODES,
    SERVICE_INJECTION_POINTS,
    SimulatedCrash,
    TenantWAL,
    WALError,
    read_wal,
)

__all__ = [
    "AuditRecord",
    "DecisionLog",
    "FSYNC_MODES",
    "PartitionService",
    "SERVICE_INJECTION_POINTS",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceError",
    "ServiceTimeout",
    "SimulatedCrash",
    "TenantMetrics",
    "TenantWAL",
    "WALError",
    "read_wal",
]
