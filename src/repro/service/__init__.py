"""Partitioning-as-a-service: a multi-tenant asyncio daemon.

This package turns the session API (:mod:`repro.api`) into a long-lived
network service: a single :class:`~repro.service.server.PartitionService`
process multiplexes many tenants, each bound to a live
:class:`~repro.api.PartitionSession`, over a line-delimited-JSON TCP
protocol.  Per-tenant bounded ingest queues provide backpressure, a
metrics/audit layer exposes throughput, replication degree, imbalance
and a decision log, and graceful shutdown snapshots every live session
to disk so a restarted daemon resumes bit-identically.

Entry points: ``repro-cli serve`` starts a daemon,
:class:`~repro.service.client.ServiceClient` talks to one.
"""

from repro.service.audit import AuditRecord, DecisionLog
from repro.service.client import ServiceClient, ServiceError
from repro.service.metrics import TenantMetrics
from repro.service.server import PartitionService

__all__ = [
    "AuditRecord",
    "DecisionLog",
    "PartitionService",
    "ServiceClient",
    "ServiceError",
    "TenantMetrics",
]
