"""Per-tenant write-ahead log: crash durability for the service daemon.

The graceful-shutdown snapshots of PR 6 only protect a daemon that is
*asked* to stop; a SIGKILL (OOM kill, node loss, deploy gone wrong)
loses every tenant's state since start.  This module closes that gap
with the classic database recipe, applied per tenant:

* every ingest batch is appended to the tenant's WAL — **before** it is
  enqueued for partitioning — as a length-prefixed, CRC-checksummed
  record ``(tenant_seq, edges)``;
* periodically (``wal_compact_every`` applied batches) the daemon
  snapshots the live session, stamps it with the applied ``seq``
  high-water mark, and rewrites the WAL keeping only records newer than
  the snapshot, so recovery cost stays bounded;
* on start, the daemon restores the newest snapshot and replays WAL
  records with ``seq`` greater than the snapshot's high-water mark,
  skipping duplicates — partitioning is deterministic, so a SIGKILL'd
  daemon restarted over the same directory resumes every tenant
  **bit-identically** to an uninterrupted run.

File layout (one pair per tenant under ``wal_dir``)::

    <tenant>.snapshot     pickled SessionSnapshot, seq high-water mark
    <tenant>.wal          MAGIC + header record + data records

Record framing is ``<u32 length><u32 crc32(payload)><payload>``.  The
header payload is a JSON dict carrying the tenant's topology (name,
algorithm, partition ids) which recovery verifies against the snapshot;
data payloads are JSON ``[seq, [[u, v], ...]]``.  A torn final record —
the crash landed mid-``write`` — fails its length or checksum test and
is discarded: its batch was never enqueued, never acked, and the client
retries it.

Fsync policy (``fsync=``):

* ``always`` — fsync after every append: a record is durable before the
  batch is acknowledged, even against OS/power loss.
* ``batch``  — flush every append, fsync every ``fsync_every`` appends
  (and at every compaction): durable against process crashes
  immediately, against OS crashes within the batch window.  The
  default; the throughput gate in ``bench_service.py --durability``
  runs in this mode.
* ``off``    — flush only; durability rides on the page cache.

Fault injection: the daemon threads a ``fault_hook(point, tenant, seq)``
callable through every WAL/snapshot/ack boundary (the
:data:`SERVICE_INJECTION_POINTS` catalog, the serving-path twin of
``cluster/faults.INJECTION_POINTS``).  A hook that raises
:class:`SimulatedCrash` makes the daemon abort exactly as a SIGKILL
would — no graceful snapshot, connections reset — which is how
``tests/test_service_chaos.py`` proves exactly-once delivery at every
boundary.  :class:`SimulatedCrash` derives from ``BaseException`` so no
``except Exception`` recovery path can accidentally swallow a scheduled
crash.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Callable, List, Optional, Tuple

from repro import obs

#: File magic; bump the trailing byte when the record format changes.
MAGIC = b"ADWISEWAL\x01"

#: ``<u32 payload length><u32 crc32(payload)>``.
_FRAME = struct.Struct("<II")

#: Accepted values for the daemon's ``fsync`` knob.
FSYNC_MODES = ("always", "batch", "off")

#: Crash boundaries of the serving path, in the order one ingest batch
#: crosses them.  The chaos harness kills the daemon at every one:
#:
#: * ``wal-pre-append``   — nothing written: the batch is simply lost
#:   and the client's retry re-submits it;
#: * ``wal-torn-append``  — the crash lands mid-``write``: the torn
#:   record must be detected by checksum and discarded on recovery;
#: * ``wal-post-append``  — the record is durable but the batch was
#:   never enqueued: recovery must replay it exactly once;
#: * ``pre-ack``          — the batch is applied and logged but the
#:   response never left: the retry must be answered from the replay
#:   cache, not re-partitioned;
#: * ``pre-compact``      — before the compaction snapshot is written;
#: * ``mid-compact``      — snapshot replaced, WAL not yet truncated:
#:   recovery must skip the now-duplicate WAL records;
#: * ``post-compact``     — compaction fully committed.
SERVICE_INJECTION_POINTS: Tuple[str, ...] = (
    "wal-pre-append", "wal-torn-append", "wal-post-append",
    "pre-ack", "pre-compact", "mid-compact", "post-compact")

#: Suffixes of the per-tenant files under ``wal_dir``.
WAL_SUFFIX = ".wal"
WAL_SNAPSHOT_SUFFIX = ".snapshot"

#: ``fault_hook`` signature: ``(point, tenant, seq)``.
FaultHook = Callable[[str, str, int], None]


class WALError(RuntimeError):
    """The write-ahead log is unusable (corrupt, mismatched, missing)."""


class SimulatedCrash(BaseException):
    """Raised by a fault hook to kill the daemon at an injection point.

    A ``BaseException`` on purpose: the worker/dispatch error handling
    catches ``Exception`` to keep the daemon alive, and a simulated
    crash must never be survivable the way a bad request is.
    """


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _encode_record(seq: int, edges) -> bytes:
    payload = json.dumps([seq, [[int(u), int(v)] for u, v in edges]],
                         separators=(",", ":")).encode()
    return _frame(payload)


def read_wal(path: str) -> Tuple[dict, List[Tuple[int, list]], bool]:
    """Parse a WAL file into ``(header, records, torn)``.

    ``records`` is ``[(seq, [(u, v), ...]), ...]`` in append order.
    ``torn`` is True when the file ends in a partial or
    checksum-corrupt record — the crash-mid-write case — whose bytes
    are ignored; everything before the tear is returned.  A file whose
    *header* is unreadable is not a WAL at all and raises
    :class:`WALError`.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if not data.startswith(MAGIC):
        raise WALError(f"{path} is not a WAL file (bad magic)")
    offset = len(MAGIC)
    header: Optional[dict] = None
    records: List[Tuple[int, list]] = []
    torn = False
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            torn = True
            break
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        if start + length > len(data):
            torn = True
            break
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            torn = True
            break
        try:
            obj = json.loads(payload)
        except ValueError:
            torn = True
            break
        if header is None:
            if not isinstance(obj, dict):
                raise WALError(f"{path}: first record is not a header")
            header = obj
        else:
            records.append((int(obj[0]),
                            [(int(u), int(v)) for u, v in obj[1]]))
        offset = start + length
    if header is None:
        raise WALError(f"{path}: missing WAL header")
    return header, records, torn


class TenantWAL:
    """Append-side handle on one tenant's write-ahead log.

    Keeps the un-compacted records' framed bytes in memory (bounded by
    ``wal_compact_every`` plus the queue depth) so compaction can
    rewrite the file with only the records newer than the snapshot —
    batches that were accepted into the WAL but not yet applied when
    the snapshot was cut must survive the truncation.
    """

    def __init__(self, path: str, header: dict, fsync: str = "batch",
                 fsync_every: int = 16,
                 fault_hook: Optional[FaultHook] = None) -> None:
        if fsync not in FSYNC_MODES:
            raise WALError(f"unknown fsync mode {fsync!r} "
                           f"(choose from {FSYNC_MODES})")
        if fsync_every < 1:
            raise WALError("fsync_every must be >= 1")
        self.path = path
        self.header = dict(header)
        self.fsync = fsync
        self.fsync_every = fsync_every
        self.fault_hook = fault_hook
        self._tail: List[Tuple[int, bytes]] = []
        self._unsynced = 0
        self._file = open(path, "wb")
        self._file.write(MAGIC + _frame(json.dumps(
            self.header, separators=(",", ":")).encode()))
        self._flush(force=self.fsync != "off")

    @property
    def tenant(self) -> str:
        return str(self.header.get("tenant", "?"))

    def _hook(self, point: str, seq: int) -> None:
        if self.fault_hook is not None:
            self.fault_hook(point, self.tenant, seq)

    def _flush(self, force: bool = False) -> None:
        self._file.flush()
        if self.fsync == "always" or force or (
                self.fsync == "batch"
                and self._unsynced >= self.fsync_every):
            os.fsync(self._file.fileno())
            self._unsynced = 0
            obs.counter("repro_wal_fsyncs_total",
                        tenant=self.tenant).inc()

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------
    def append(self, seq: int, edges) -> None:
        """Durably log one accepted batch (called *before* enqueue)."""
        record = _encode_record(seq, edges)
        self._hook("wal-pre-append", seq)
        try:
            self._hook("wal-torn-append", seq)
        except SimulatedCrash:
            # Simulate the crash landing mid-write: leave a partial
            # record on disk for recovery's checksum to reject.
            self._file.write(record[:max(1, len(record) // 2)])
            self._file.flush()
            raise
        self._file.write(record)
        self._unsynced += 1
        self._flush()
        self._tail.append((seq, record))
        obs.counter("repro_wal_appends_total", tenant=self.tenant).inc()
        obs.counter("repro_wal_bytes_total",
                    tenant=self.tenant).inc(len(record))
        self._hook("wal-post-append", seq)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def truncate_through(self, seq: int) -> None:
        """Drop records with ``seq`` <= the snapshot high-water mark.

        Atomic (temp file + ``os.replace``): a crash mid-compaction
        leaves either the old WAL (whose stale records the replay skips
        as duplicates of the new snapshot) or the rewritten one.
        """
        self._tail = [(s, record) for s, record in self._tail if s > seq]
        tmp = f"{self.path}.tmp"
        with open(tmp, "wb") as handle:
            handle.write(MAGIC + _frame(json.dumps(
                self.header, separators=(",", ":")).encode()))
            for _, record in self._tail:
                handle.write(record)
            handle.flush()
            if self.fsync != "off":
                os.fsync(handle.fileno())
        self._file.close()
        os.replace(tmp, self.path)
        self._file = open(self.path, "ab")
        self._unsynced = 0
        obs.counter("repro_wal_compactions_total",
                    tenant=self.tenant).inc()

    def close(self, remove: bool = False) -> None:
        """Flush and close; ``remove=True`` deletes the file (the tenant
        finalized — its log has nothing left to protect)."""
        if not self._file.closed:
            self._flush(force=self.fsync != "off")
            self._file.close()
        if remove and os.path.exists(self.path):
            os.remove(self.path)


def wal_path(directory: str, tenant: str) -> str:
    return os.path.join(directory, tenant + WAL_SUFFIX)


def wal_snapshot_path(directory: str, tenant: str) -> str:
    return os.path.join(directory, tenant + WAL_SNAPSHOT_SUFFIX)


def write_snapshot_atomic(path: str, snapshot, fsync: bool = True) -> None:
    """Persist a ``SessionSnapshot`` via temp file + ``os.replace`` so a
    crash mid-write can never clobber the last restorable snapshot."""
    import pickle

    tmp = f"{path}.tmp"
    with open(tmp, "wb") as handle:
        pickle.dump(snapshot, handle, protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)


__all__ = [
    "FSYNC_MODES",
    "MAGIC",
    "SERVICE_INJECTION_POINTS",
    "SimulatedCrash",
    "TenantWAL",
    "WALError",
    "WAL_SNAPSHOT_SUFFIX",
    "WAL_SUFFIX",
    "read_wal",
    "wal_path",
    "wal_snapshot_path",
    "write_snapshot_atomic",
]
