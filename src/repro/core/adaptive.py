"""Adaptive window sizing (paper §III-A, Algorithm 1).

The controller starts at window size ``w = 1`` and, after every block of
``w`` edge assignments, evaluates two conditions:

* **C1** — the last window growth improved assignment quality: the average
  score ``g(e, p)`` over the just-finished block exceeds the average over
  the previous block.
* **C2** — the latency preference ``L`` can still be met: the measured
  average per-edge assignment latency ``lat_w`` is below the remaining
  budget per remaining edge, ``lat_w < L' / |E'|``.

Decision: ``C1 ∧ C2 → w ← 2w``;  ``¬C2 → w ← ⌊w/2⌋`` (floored at 1);
otherwise keep.  With a latency preference of zero the controller decays to
``w = 1``, i.e. single-edge streaming — exactly the paper's boundary case.

The controller is a pure observer: the partitioner feeds it per-assignment
(score, timestamp, edges-remaining) observations and reads back the target
window size.  That makes the C1/C2 logic unit-testable without a stream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional


class WindowDecision(enum.Enum):
    """Outcome of one adaptation step."""

    GROW = "grow"
    KEEP = "keep"
    SHRINK = "shrink"


@dataclass
class AdaptationEvent:
    """Trace record of one adaptation decision (for analysis/EXPERIMENTS)."""

    at_ms: float
    assignments: int
    window_before: int
    window_after: int
    decision: WindowDecision
    block_avg_score: float
    avg_latency_ms: float


class AdaptiveWindowController:
    """Implements the grow/keep/shrink policy of Algorithm 1.

    Parameters
    ----------
    latency_preference_ms:
        The user's latency preference ``L`` in milliseconds.  ``None`` means
        "no preference": C2 is always satisfied and the window grows as long
        as quality improves (capped at ``max_window``).
    total_edges:
        ``|E|``, known up front (e.g. via line count on the graph file).
    start_ms:
        Clock reading when partitioning began.
    min_window / max_window:
        Hard bounds on ``w``; ``max_window`` defaults to 2**14 to bound
        memory on adversarial inputs.
    """

    def __init__(self, latency_preference_ms: Optional[float],
                 total_edges: int, start_ms: float = 0.0,
                 initial_window: int = 1,
                 min_window: int = 1, max_window: int = 16384) -> None:
        if latency_preference_ms is not None and latency_preference_ms < 0:
            raise ValueError("latency preference must be non-negative")
        if total_edges < 0:
            raise ValueError("total_edges must be non-negative")
        if not 1 <= min_window <= max_window:
            raise ValueError("need 1 <= min_window <= max_window")
        if not min_window <= initial_window <= max_window:
            raise ValueError("initial_window outside [min_window, max_window]")
        self.latency_preference_ms = latency_preference_ms
        self.total_edges = total_edges
        self.min_window = min_window
        self.max_window = max_window
        self.window_size = initial_window
        self.start_ms = start_ms
        self._peak_window = initial_window
        self.events: List[AdaptationEvent] = []
        self._block_assignments = 0
        self._block_score_sum = 0.0
        self._block_start_ms = start_ms
        self._prev_block_avg: Optional[float] = None
        self._total_assignments = 0

    # ------------------------------------------------------------------
    # Conditions (exposed for tests)
    # ------------------------------------------------------------------
    def condition_c1(self, block_avg: float) -> bool:
        """C1: quality improved since the previous block."""
        if self._prev_block_avg is None:
            return True
        return block_avg > self._prev_block_avg

    def condition_c2(self, avg_latency_ms: float, now_ms: float) -> bool:
        """C2: the latency preference can still be met."""
        if self.latency_preference_ms is None:
            return True
        remaining_edges = self.total_edges - self._total_assignments
        if remaining_edges <= 0:
            return True
        budget_left = self.latency_preference_ms - (now_ms - self.start_ms)
        if budget_left <= 0:
            return False
        return avg_latency_ms < budget_left / remaining_edges

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def record(self, score: float, now_ms: float) -> Optional[WindowDecision]:
        """Register one edge assignment; adapt after ``w`` of them.

        Returns the decision taken, or ``None`` if the block is not full.
        """
        self._block_assignments += 1
        self._total_assignments += 1
        self._block_score_sum += score
        if self._block_assignments < self.window_size:
            return None
        return self._adapt(now_ms)

    def _adapt(self, now_ms: float) -> WindowDecision:
        block_avg = self._block_score_sum / self._block_assignments
        elapsed = now_ms - self._block_start_ms
        avg_latency = elapsed / self._block_assignments
        c1 = self.condition_c1(block_avg)
        c2 = self.condition_c2(avg_latency, now_ms)
        if self._total_assignments >= self.total_edges > 0:
            # Stream exhausted: growing (or shrinking) is pointless.
            c1 = False
            c2 = True
        window_before = self.window_size
        if c1 and c2 and self.window_size < self.max_window:
            self.window_size = min(self.max_window, self.window_size * 2)
            self._peak_window = max(self._peak_window, self.window_size)
            decision = WindowDecision.GROW
        elif not c2 and self.window_size > self.min_window:
            self.window_size = max(self.min_window, self.window_size // 2)
            decision = WindowDecision.SHRINK
        else:
            decision = WindowDecision.KEEP
        self.events.append(AdaptationEvent(
            at_ms=now_ms,
            assignments=self._total_assignments,
            window_before=window_before,
            window_after=self.window_size,
            decision=decision,
            block_avg_score=block_avg,
            avg_latency_ms=avg_latency,
        ))
        self._prev_block_avg = block_avg
        self._block_assignments = 0
        self._block_score_sum = 0.0
        self._block_start_ms = now_ms
        return decision

    # ------------------------------------------------------------------
    # Serialization (session snapshot boundary)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Picklable image of the adaptation state (without the event
        trace) — enough to continue grow/keep/shrink bit-identically."""
        return {
            "window_size": self.window_size,
            "peak_window": self._peak_window,
            "block_assignments": self._block_assignments,
            "block_score_sum": self._block_score_sum,
            "block_start_ms": self._block_start_ms,
            "prev_block_avg": self._prev_block_avg,
            "total_assignments": self._total_assignments,
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`to_state`; the event trace restarts empty."""
        self.window_size = state["window_size"]
        self._peak_window = state["peak_window"]
        self._block_assignments = state["block_assignments"]
        self._block_score_sum = state["block_score_sum"]
        self._block_start_ms = state["block_start_ms"]
        self._prev_block_avg = state["prev_block_avg"]
        self._total_assignments = state["total_assignments"]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def max_window_reached(self) -> int:
        """Largest window size the controller ever selected.

        Tracked incrementally at each grow decision — the adaptive trace
        (``events``) can hold one record per window block, so scanning it
        on every result read was O(assignments).
        """
        return self._peak_window


class FixedWindowController:
    """Degenerate controller pinning ``w`` (fixed-window ablation)."""

    def __init__(self, window_size: int) -> None:
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.window_size = window_size
        self.events: List[AdaptationEvent] = []

    def record(self, score: float, now_ms: float) -> Optional[WindowDecision]:
        return None

    @property
    def max_window_reached(self) -> int:
        return self.window_size
