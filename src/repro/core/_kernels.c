/* Compiled window kernels: C mirror of repro/core/_kernels_py.py.
 *
 * Statement-for-statement port of the looped-Python kernel source (see
 * that module's docstring for the array glossary and the semantics
 * contract).  Built by repro/core/_kernels.py with
 *
 *     cc -O3 -fPIC -shared -ffp-contract=off
 *
 * -ffp-contract=off forbids fused multiply-adds so every float64
 * operation rounds exactly like the numpy/reference evaluation; nothing
 * here may reorder or fuse floating-point arithmetic.  All pointers are
 * borrowed from numpy arrays owned by the Python side, bound once via
 * kern_bind and rebound whenever an array is reallocated.
 */

#include <stdint.h>
#include <stdlib.h>

typedef struct {
    double  *score;
    double  *rep;        /* capacity x k, row stride k */
    double  *cs;         /* capacity x k, row stride k */
    int64_t *partition;
    int64_t *entry;
    int64_t *slot_version;
    int64_t *rep_key;    /* capacity x 5 */
    int64_t *nbr_key;    /* capacity x 2 */
    int64_t *cs_sum;
    int64_t *ui;
    int64_t *vi;
    int64_t *nbr_start;
    int64_t *nbr_count;
    int64_t *pool;
    int64_t *heap;
    int64_t *heap_pos;
    int64_t *hctl;       /* hctl[0] = heap size */
    int64_t *scratch;    /* 2 * capacity */
    int64_t *partition_ids;
    unsigned char *replicas;   /* state capacity x k, row stride k */
    int64_t *row_version;
    int64_t *deg;
    int64_t *iver;
    double  *lamb;       /* k; synced by the adapter before calls */
    double  *io_f;       /* io_f[0] = score_sum in/out */
    int64_t *io_i;       /* rescore tallies + needy count */
    int64_t  k;
} KernCtx;

KernCtx *kern_new(void)
{
    return (KernCtx *)calloc(1, sizeof(KernCtx));
}

void kern_free(KernCtx *c)
{
    free(c);
}

void kern_bind(KernCtx *c, double *score, int64_t *partition,
               int64_t *entry, int64_t *slot_version, double *rep,
               double *cs, int64_t *rep_key, int64_t *nbr_key,
               int64_t *cs_sum, int64_t *ui, int64_t *vi,
               int64_t *nbr_start, int64_t *nbr_count, int64_t *pool,
               int64_t *heap, int64_t *heap_pos, int64_t *hctl,
               int64_t *scratch, int64_t *partition_ids,
               unsigned char *replicas, int64_t *row_version,
               int64_t *deg, int64_t *iver, double *lamb, double *io_f,
               int64_t *io_i, int64_t k)
{
    c->score = score;
    c->partition = partition;
    c->entry = entry;
    c->slot_version = slot_version;
    c->rep = rep;
    c->cs = cs;
    c->rep_key = rep_key;
    c->nbr_key = nbr_key;
    c->cs_sum = cs_sum;
    c->ui = ui;
    c->vi = vi;
    c->nbr_start = nbr_start;
    c->nbr_count = nbr_count;
    c->pool = pool;
    c->heap = heap;
    c->heap_pos = heap_pos;
    c->hctl = hctl;
    c->scratch = scratch;
    c->partition_ids = partition_ids;
    c->replicas = replicas;
    c->row_version = row_version;
    c->deg = deg;
    c->iver = iver;
    c->lamb = lamb;
    c->io_f = io_f;
    c->io_i = io_i;
    c->k = k;
}

/* ------------------------------------------------------------------ */
/* Indexed binary max-heap keyed (score desc, entry asc)               */
/* ------------------------------------------------------------------ */

static int heap_better(const KernCtx *c, int64_t a, int64_t b)
{
    double sa = c->score[a];
    double sb = c->score[b];
    if (sa > sb)
        return 1;
    if (sa < sb)
        return 0;
    return c->entry[a] < c->entry[b];
}

static int64_t sift_up(KernCtx *c, int64_t pos)
{
    int64_t slot = c->heap[pos];
    while (pos > 0) {
        int64_t parent = (pos - 1) / 2;
        int64_t other = c->heap[parent];
        if (!heap_better(c, slot, other))
            break;
        c->heap[pos] = other;
        c->heap_pos[other] = pos;
        pos = parent;
    }
    c->heap[pos] = slot;
    c->heap_pos[slot] = pos;
    return pos;
}

static int64_t sift_down(KernCtx *c, int64_t n, int64_t pos)
{
    int64_t slot = c->heap[pos];
    for (;;) {
        int64_t child = 2 * pos + 1;
        int64_t right;
        if (child >= n)
            break;
        right = child + 1;
        if (right < n && heap_better(c, c->heap[right], c->heap[child]))
            child = right;
        if (!heap_better(c, c->heap[child], slot))
            break;
        c->heap[pos] = c->heap[child];
        c->heap_pos[c->heap[pos]] = pos;
        pos = child;
    }
    c->heap[pos] = slot;
    c->heap_pos[slot] = pos;
    return pos;
}

static void heap_fix(KernCtx *c, int64_t n, int64_t pos)
{
    if (sift_up(c, pos) == pos)
        sift_down(c, n, pos);
}

void kern_heap_push(KernCtx *c, int64_t slot)
{
    int64_t n = c->hctl[0];
    c->heap[n] = slot;
    c->heap_pos[slot] = n;
    c->hctl[0] = n + 1;
    sift_up(c, n);
}

int64_t kern_heap_remove(KernCtx *c, int64_t slot)
{
    int64_t pos = c->heap_pos[slot];
    int64_t n;
    if (pos < 0)
        return -1;
    n = c->hctl[0] - 1;
    c->hctl[0] = n;
    c->heap_pos[slot] = -1;
    if (pos != n) {
        int64_t moved = c->heap[n];
        c->heap[pos] = moved;
        c->heap_pos[moved] = pos;
        heap_fix(c, n, pos);
    }
    return pos;
}

void kern_heap_heapify(KernCtx *c)
{
    int64_t n = c->hctl[0];
    int64_t i;
    for (i = n / 2 - 1; i >= 0; i--)
        sift_down(c, n, i);
}

/* ------------------------------------------------------------------ */
/* Component memos: pull-validity checks and recomputation             */
/* ------------------------------------------------------------------ */

static int rep_fresh(const KernCtx *c, int64_t max_degree, int64_t s)
{
    const int64_t *key = c->rep_key + s * 5;
    int64_t iu = c->ui[s];
    int64_t iv = c->vi[s];
    return key[0] == c->row_version[iu]
        && key[1] == c->row_version[iv]
        && key[2] == c->deg[iu]
        && key[3] == c->deg[iv]
        && key[4] == max_degree;
}

static int nbr_fresh(const KernCtx *c, int64_t s)
{
    return c->nbr_key[s * 2] == c->iver[c->ui[s]]
        && c->nbr_key[s * 2 + 1] == c->iver[c->vi[s]];
}

static int64_t nbr_version_sum(const KernCtx *c, int64_t s)
{
    int64_t start = c->nbr_start[s];
    int64_t total = 0;
    int64_t i;
    for (i = 0; i < c->nbr_count[s]; i++)
        total += c->row_version[c->pool[start + i]];
    return total;
}

static void recompute_rep(KernCtx *c, int64_t max_degree, int64_t s)
{
    int64_t iu = c->ui[s];
    int64_t iv = c->vi[s];
    int64_t maxd = max_degree < 1 ? 1 : max_degree;
    double psi_u = (double)c->deg[iu] / (2.0 * (double)maxd);
    double psi_v = (double)c->deg[iv] / (2.0 * (double)maxd);
    double wu = 2.0 - psi_u;
    double wv = 2.0 - psi_v;
    const unsigned char *ru = c->replicas + iu * c->k;
    const unsigned char *rv = c->replicas + iv * c->k;
    double *row = c->rep + s * c->k;
    int64_t *key = c->rep_key + s * 5;
    int64_t j;
    for (j = 0; j < c->k; j++) {
        double a = ru[j] ? wu : 0.0;
        double b = rv[j] ? wv : 0.0;
        row[j] = a + b;
    }
    key[0] = c->row_version[iu];
    key[1] = c->row_version[iv];
    key[2] = c->deg[iu];
    key[3] = c->deg[iv];
    key[4] = max_degree;
}

static void recompute_cs(KernCtx *c, int64_t s)
{
    int64_t start = c->nbr_start[s];
    int64_t cnt = c->nbr_count[s];
    int64_t vsum = 0;
    double *row = c->cs + s * c->k;
    int64_t i, j;
    for (j = 0; j < c->k; j++)
        row[j] = 0.0;
    for (i = 0; i < cnt; i++) {
        int64_t idx = c->pool[start + i];
        const unsigned char *r = c->replicas + idx * c->k;
        vsum += c->row_version[idx];
        for (j = 0; j < c->k; j++)
            if (r[j])
                row[j] += 1.0;
    }
    if (cnt > 0)
        for (j = 0; j < c->k; j++)
            row[j] = row[j] / (double)cnt;
    c->cs_sum[s] = vsum;
}

static double assemble(const KernCtx *c, const double *lamb, int use_cs,
                       int64_t s, int64_t *col_out)
{
    const double *rrow = c->rep + s * c->k;
    const double *crow = c->cs + s * c->k;
    double best = 0.0;
    int64_t best_col = 0;
    int first = 1;
    int64_t j;
    for (j = 0; j < c->k; j++) {
        double t = lamb[j] + rrow[j];
        if (use_cs)
            t = t + crow[j];
        if (first || t > best) {
            best = t;
            best_col = j;
            first = 0;
        }
    }
    *col_out = best_col;
    return best;
}

/* Slots arrive in scratch[0..n); stale ones are compacted in place to
 * scratch[0..cnt) (safe: the write cursor never passes the read one). */
int64_t kern_scan_nbr(KernCtx *c, int64_t n)
{
    int64_t cnt = 0;
    int64_t t;
    for (t = 0; t < n; t++) {
        int64_t s = c->scratch[t];
        if (!nbr_fresh(c, s))
            c->scratch[cnt++] = s;
    }
    return cnt;
}

/* ------------------------------------------------------------------ */
/* The rescore transaction (pop / rule 2 / rule 3 share it)            */
/* ------------------------------------------------------------------ */

static double rescore_impl(KernCtx *c, const int64_t *slots, int64_t n,
                           int64_t version, int64_t max_degree,
                           int64_t use_cs, double score_sum)
{
    const double *lamb = c->lamb;
    int64_t *io_i = c->io_i;
    int64_t n_res = 0, n_rep = 0, n_cs = 0;
    int64_t t;
    for (t = 0; t < n; t++) {
        int64_t s = slots[t];
        int fresh_r = rep_fresh(c, max_degree, s);
        int fresh_c = 1;
        int64_t col;
        double best;
        if (use_cs) {
            if (nbr_fresh(c, s))
                fresh_c = c->cs_sum[s] == nbr_version_sum(c, s);
            else
                fresh_c = 0;
        }
        if (c->slot_version[s] == version && fresh_r && fresh_c)
            continue;
        if (!fresh_r) {
            recompute_rep(c, max_degree, s);
            n_rep++;
        }
        if (use_cs && !fresh_c) {
            recompute_cs(c, s);
            n_cs++;
        }
        best = assemble(c, lamb, (int)use_cs, s, &col);
        score_sum += best - c->score[s];
        c->score[s] = best;
        c->partition[s] = c->partition_ids[col];
        c->slot_version[s] = version;
        n_res++;
    }
    io_i[0] = n_res;
    io_i[1] = n_rep;
    io_i[2] = n_cs;
    return score_sum;
}

/* Slots arrive in scratch[0..n) (already entry-sorted by the caller). */
double kern_rescore(KernCtx *c, int64_t n, int64_t version,
                    int64_t max_degree, int64_t use_cs, double score_sum)
{
    return rescore_impl(c, c->scratch, n, version, max_degree, use_cs,
                        score_sum);
}

int64_t kern_pop(KernCtx *c, int64_t version, int64_t max_degree,
                 int64_t use_cs)
{
    int64_t *io_i = c->io_i;
    int64_t n = c->hctl[0];
    int64_t m = 0;
    int64_t i, t;
    if (n == 0)
        return -2;
    /* Collect stale candidates, then shell-sort them by entry id
     * (gap sequence 3h+1; entries are unique, so the order is total). */
    for (i = 0; i < n; i++) {
        int64_t s = c->heap[i];
        if (c->slot_version[s] != version)
            c->scratch[m++] = s;
    }
    {
        int64_t gap = 1;
        while (gap < m / 3)
            gap = 3 * gap + 1;
        for (; gap > 0; gap /= 3) {
            for (i = gap; i < m; i++) {
                int64_t s = c->scratch[i];
                int64_t e = c->entry[s];
                int64_t j = i;
                while (j >= gap && c->entry[c->scratch[j - gap]] > e) {
                    c->scratch[j] = c->scratch[j - gap];
                    j -= gap;
                }
                c->scratch[j] = s;
            }
        }
    }
    if (use_cs) {
        int64_t need = 0;
        for (t = 0; t < m; t++) {
            int64_t s = c->scratch[t];
            if (!nbr_fresh(c, s))
                c->scratch[n + need++] = s;
        }
        if (need > 0) {
            for (t = 0; t < need; t++)
                c->scratch[t] = c->scratch[n + t];
            io_i[3] = need;
            return -1;
        }
    }
    if (m > 0) {
        c->io_f[0] = rescore_impl(c, c->scratch, m, version, max_degree,
                                  use_cs, c->io_f[0]);
        /* Heap repair: a single moved key sifts in place; for several,
         * only a full heapify is sound (sequential per-key fixes can
         * leave violations between two moved keys). */
        if (m == 1)
            heap_fix(c, n, c->heap_pos[c->scratch[0]]);
        else
            kern_heap_heapify(c);
    } else {
        io_i[0] = 0;
        io_i[1] = 0;
        io_i[2] = 0;
    }
    return c->heap[0];
}

double kern_add(KernCtx *c, int64_t s, int64_t du, int64_t dv,
                int64_t seg_start, int64_t seg_count, int64_t version,
                int64_t max_degree, int64_t use_cs)
{
    const double *lamb = c->lamb;
    int64_t col;
    double best;
    c->ui[s] = du;
    c->vi[s] = dv;
    c->nbr_start[s] = seg_start;
    c->nbr_count[s] = seg_count;
    recompute_rep(c, max_degree, s);
    c->nbr_key[s * 2] = c->iver[du];
    c->nbr_key[s * 2 + 1] = c->iver[dv];
    if (use_cs)
        recompute_cs(c, s);
    best = assemble(c, lamb, (int)use_cs, s, &col);
    c->score[s] = best;
    c->partition[s] = c->partition_ids[col];
    c->slot_version[s] = version;
    return best;
}
