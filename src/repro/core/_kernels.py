"""Kernel dispatch for the ADWISE window agenda (DESIGN.md §14).

The :class:`~repro.core.array_window.ArrayEdgeWindow` drives its hot
path — the pop/rescore transaction, the indexed k-best heap, and the
single-edge add — through one of three interchangeable backends, chosen
at window construction:

* ``cc``     — ``_kernels.c`` compiled on demand with the system C
  compiler (``cc -O3 -fPIC -shared -ffp-contract=off``) and loaded
  through cffi's ABI mode.  The shared object is cached in the system
  temp directory keyed by a hash of the source, with an atomic rename so
  concurrent test workers never race.  ``-ffp-contract=off`` (and no
  fast-math) keeps every float64 operation rounding exactly like the
  numpy reference.
* ``numba``  — the looped-Python source in :mod:`repro.core._kernels_py`
  wrapped with ``numba.njit``.  numba stays an *optional* dependency;
  this backend only resolves when it imports.
* ``numpy``  — vectorised ndarray implementations of the same
  transactions (always available; the fallback).

``pyloop`` (undocumented, tests only) runs the numba source uncompiled,
so the jitted code paths are exercised even where numba is absent.

Selection: ``REPRO_KERNEL`` forces a backend by name (falling back to
``numpy`` with a warning if it cannot be built); ``REPRO_NUMBA=0``
forces the pure-numpy fallback under ``auto`` (the documented switch);
``REPRO_NUMBA=1`` prefers numba over the compiled-C backend.  Default
``auto`` order: ``cc``, ``numba``, ``numpy``.

Every backend produces bit-identical scores, assignments, score-sum
accumulation and tie-breaks — enforced by ``tests/test_kbest_agenda.py``.
"""

from __future__ import annotations

import hashlib
import inspect
import os
import subprocess
import tempfile
import warnings
from typing import List, Optional, Tuple

import numpy as np

from repro.core import _kernels_py as _kp

#: Backends accepted in ``REPRO_KERNEL`` (besides ``auto``).
BACKENDS = ("cc", "numba", "numpy", "pyloop")

_CDEF = """
void *kern_new(void);
void kern_free(void *);
void kern_bind(void *, double *, int64_t *, int64_t *, int64_t *,
               double *, double *, int64_t *, int64_t *, int64_t *,
               int64_t *, int64_t *, int64_t *, int64_t *, int64_t *,
               int64_t *, int64_t *, int64_t *, int64_t *, int64_t *,
               unsigned char *, int64_t *, int64_t *, int64_t *,
               double *, double *, int64_t *, int64_t);
void kern_heap_push(void *, int64_t);
int64_t kern_heap_remove(void *, int64_t);
void kern_heap_heapify(void *);
int64_t kern_scan_nbr(void *, int64_t);
double kern_rescore(void *, int64_t, int64_t, int64_t, int64_t, double);
int64_t kern_pop(void *, int64_t, int64_t, int64_t);
double kern_add(void *, int64_t, int64_t, int64_t, int64_t, int64_t,
                int64_t, int64_t, int64_t);
"""

_cc_state: Optional[Tuple] = None     # (ffi, lib) or (None, None) on failure
_numba_ns: Optional[dict] = None      # jitted namespace, or {} on failure


# ----------------------------------------------------------------------
# Backend construction
# ----------------------------------------------------------------------
def _source_path() -> str:
    return os.path.join(os.path.dirname(__file__), "_kernels.c")


def _build_cc():
    """Compile and dlopen the C kernels; memoized per process."""
    global _cc_state
    if _cc_state is not None:
        return _cc_state
    try:
        import cffi

        with open(_source_path(), "rb") as fh:
            source = fh.read()
        digest = hashlib.sha256(source).hexdigest()[:16]
        so_path = os.path.join(tempfile.gettempdir(),
                               f"repro_kernels_{digest}.so")
        if not os.path.exists(so_path):
            tmp_path = f"{so_path}.{os.getpid()}.tmp"
            subprocess.run(
                ["cc", "-O3", "-fPIC", "-shared", "-ffp-contract=off",
                 "-o", tmp_path, _source_path()],
                check=True, capture_output=True)
            os.replace(tmp_path, so_path)  # atomic: xdist workers race here
        ffi = cffi.FFI()
        ffi.cdef(_CDEF)
        lib = ffi.dlopen(so_path)
        _cc_state = (ffi, lib)
    except Exception:  # cffi or cc missing, compile failure, ...
        _cc_state = (None, None)
    return _cc_state


def _build_numba():
    """Jit the looped-Python kernel source; memoized per process.

    The module source is re-executed into a fresh namespace and every
    kernel function njit-wrapped there, so the jitted functions resolve
    each other while the importable module stays plain Python (the
    ``pyloop`` backend and the heap property tests use it directly).
    """
    global _numba_ns
    if _numba_ns is not None:
        return _numba_ns
    try:
        import numba

        ns: dict = {}
        exec(compile(inspect.getsource(_kp), _kp.__file__, "exec"), ns)
        for name in _kp.KERNEL_FUNCTIONS:
            ns[name] = numba.njit(cache=True)(ns[name])
        _numba_ns = ns
    except Exception:
        _numba_ns = {}
    return _numba_ns


def resolve_backend_name() -> str:
    """The backend ``load_kernels`` would pick right now (env-driven)."""
    spec = (os.environ.get("REPRO_KERNEL", "") or "auto").strip().lower()
    numba_env = (os.environ.get("REPRO_NUMBA", "") or "").strip()
    if spec != "auto":
        if spec not in BACKENDS:
            warnings.warn(f"unknown REPRO_KERNEL={spec!r}; using numpy",
                          RuntimeWarning, stacklevel=2)
            return "numpy"
        if spec == "cc" and _build_cc()[1] is None:
            warnings.warn("REPRO_KERNEL=cc but the C kernels failed to "
                          "build; using numpy", RuntimeWarning, stacklevel=2)
            return "numpy"
        if spec == "numba" and not _build_numba():
            warnings.warn("REPRO_KERNEL=numba but numba is not importable; "
                          "using numpy", RuntimeWarning, stacklevel=2)
            return "numpy"
        return spec
    if numba_env == "0":
        return "numpy"
    order = (("numba", "cc") if numba_env == "1" else ("cc", "numba"))
    for name in order:
        if name == "cc" and _build_cc()[1] is not None:
            return "cc"
        if name == "numba" and _build_numba():
            return "numba"
    return "numpy"


def load_kernels(window):
    """Build the kernel adapter for ``window`` per the environment."""
    name = resolve_backend_name()
    if name == "cc":
        ffi, lib = _build_cc()
        return CcKernels(ffi, lib)
    if name == "numba":
        return LoopKernels(_build_numba(), "numba")
    if name == "pyloop":
        return LoopKernels({f: getattr(_kp, f)
                            for f in _kp.KERNEL_FUNCTIONS}, "pyloop")
    return NumpyKernels()


def scoring_cores():
    """Jitted cores for the scoring batch kernels, or ``None``.

    Routed through by :meth:`AdwiseScoring.replication_batch` /
    :meth:`~AdwiseScoring.clustering_batch` when the numba backend is
    selected — the gathered-row arithmetic compiles to the same loops
    the window kernels use.  The cc/numpy backends keep the vectorised
    numpy forms (the compiled window path bypasses these batch kernels
    entirely).
    """
    if resolve_backend_name() != "numba":
        return None
    ns = _build_numba()
    return (ns["replication_rows_core"], ns["clustering_rows_core"])


# ----------------------------------------------------------------------
# Adapters: one uniform interface over the three implementations
# ----------------------------------------------------------------------
class _KernelBase:
    """Shared helpers; subclasses set ``name`` and ``native``.

    ``native`` backends keep the candidate agenda as a real indexed
    max-heap (root = next pop); the numpy fallback keeps the same array
    unordered (O(1) swap-remove) and selects by vectorised lex-max.
    """

    name = "base"
    native = False

    def bind(self, win) -> None:  # noqa: ARG002 - uniform interface
        """(Re)bind array pointers; no-op except for the cc backend."""

    # Heap maintenance shared by the loop backends and overridden by
    # the cc/numpy ones.
    def heap_push(self, win, slot: int) -> None:
        raise NotImplementedError

    def heap_remove(self, win, slot: int) -> None:
        raise NotImplementedError

    def heap_rebuild(self, win) -> None:
        raise NotImplementedError


class CcKernels(_KernelBase):
    """cffi adapter over the compiled ``_kernels.c``."""

    name = "cc"
    native = True

    def __init__(self, ffi, lib) -> None:
        self._ffi = ffi
        self._lib = lib
        self._ctx = ffi.gc(lib.kern_new(), lib.kern_free)
        self._last_lamb = None
        # Prebound entry points: the per-call attribute walk through the
        # cffi library object is measurable on the pop/add hot path.
        self._c_pop = lib.kern_pop
        self._c_add = lib.kern_add
        self._c_rescore = lib.kern_rescore
        self._c_scan = lib.kern_scan_nbr
        self._c_push = lib.kern_heap_push
        self._c_remove = lib.kern_heap_remove

    def _f8(self, array):
        return self._ffi.cast("double *", array.ctypes.data)

    def _i8(self, array):
        return self._ffi.cast("int64_t *", array.ctypes.data)

    def bind(self, win) -> None:
        state = win.scoring.state
        ffi = self._ffi
        self._lib.kern_bind(
            self._ctx, self._f8(win._score), self._i8(win._partition),
            self._i8(win._entry), self._i8(win._slot_version),
            self._f8(win._rep), self._f8(win._cs), self._i8(win._rep_key),
            self._i8(win._nbr_key), self._i8(win._cs_sum), self._i8(win._ui),
            self._i8(win._vi), self._i8(win._nbr_start),
            self._i8(win._nbr_count), self._i8(win._pool),
            self._i8(win._heap), self._i8(win._heap_pos), self._i8(win._hctl),
            self._i8(win._scratch), self._i8(win._pids),
            ffi.cast("unsigned char *", state.replica_matrix().ctypes.data),
            self._i8(state.row_version_array()),
            self._i8(state.degrees_dense()), self._i8(win._iver),
            self._f8(win._lamb), self._f8(win._io_f), self._i8(win._io_i),
            len(win._pids))

    def _sync_lamb(self, win, lamb) -> None:
        # The balance vector is memoized per assignment; copying it into
        # the bound buffer only when its identity changes keeps the hot
        # calls below free of per-call cffi pointer casts.
        if lamb is not self._last_lamb:
            win._lamb[:] = lamb
            self._last_lamb = lamb

    def scan_nbr(self, win, slots: np.ndarray) -> np.ndarray:
        m = len(slots)
        scratch = win._scratch
        scratch[:m] = slots
        n = self._c_scan(self._ctx, m)
        return scratch[:n]

    def rescore(self, win, slots, lamb, use_cs) -> Tuple[int, int, int]:
        self._sync_lamb(win, lamb)
        m = len(slots)
        win._scratch[:m] = slots
        win._score_sum = self._c_rescore(
            self._ctx, m, win._version, win.scoring.state.max_degree,
            int(use_cs), win._score_sum)
        io_i = win._io_i
        return int(io_i[0]), int(io_i[1]), int(io_i[2])

    def pop(self, win, lamb, use_cs):
        self._sync_lamb(win, lamb)
        io_f, io_i = win._io_f, win._io_i
        io_f[0] = win._score_sum
        ret = self._c_pop(self._ctx, win._version,
                          win.scoring.state.max_degree, int(use_cs))
        if ret == -1:
            return -1, win._scratch[:int(io_i[3])], (0, 0, 0)
        win._score_sum = io_f[0]
        return ret, None, (int(io_i[0]), int(io_i[1]), int(io_i[2]))

    def add(self, win, slot, du, dv, seg_start, seg_count, lamb, use_cs):
        self._sync_lamb(win, lamb)
        return self._c_add(self._ctx, slot, du, dv, seg_start, seg_count,
                           win._version, win.scoring.state.max_degree,
                           int(use_cs))

    def heap_push(self, win, slot: int) -> None:
        self._c_push(self._ctx, slot)

    def heap_remove(self, win, slot: int) -> None:
        self._c_remove(self._ctx, slot)

    def heap_rebuild(self, win) -> None:
        self._lib.kern_heap_heapify(self._ctx)


class LoopKernels(_KernelBase):
    """Adapter over the looped-Python source (jitted or plain)."""

    native = True

    def __init__(self, ns: dict, name: str) -> None:
        self._ns = ns
        self.name = name

    def _state_arrays(self, win):
        state = win.scoring.state
        return (state.replica_matrix(), state.row_version_array(),
                state.degrees_dense(), state.max_degree)

    def scan_nbr(self, win, slots: np.ndarray) -> np.ndarray:
        out = win._scratch
        n = self._ns["scan_nbr"](slots, win._nbr_key, win._ui, win._vi,
                                 win._iver, out)
        return out[:n]

    def rescore(self, win, slots, lamb, use_cs) -> Tuple[int, int, int]:
        replicas, row_version, deg, max_degree = self._state_arrays(win)
        io_i = win._io_i
        win._score_sum = float(self._ns["rescore"](
            slots, win._score, win._partition, win._entry,
            win._slot_version, win._rep, win._cs, win._rep_key,
            win._nbr_key, win._cs_sum, win._ui, win._vi, win._nbr_start,
            win._nbr_count, win._pool, replicas, row_version, deg,
            win._iver, win._pids, lamb, win._version, max_degree,
            bool(use_cs), win._score_sum, win._scratch2, io_i))
        return int(io_i[0]), int(io_i[1]), int(io_i[2])

    def pop(self, win, lamb, use_cs):
        replicas, row_version, deg, max_degree = self._state_arrays(win)
        io_f, io_i = win._io_f, win._io_i
        io_f[0] = win._score_sum
        ret = int(self._ns["pop_agenda"](
            win._heap, win._heap_pos, win._hctl, win._scratch, win._score,
            win._partition, win._entry, win._slot_version, win._rep,
            win._cs, win._rep_key, win._nbr_key, win._cs_sum, win._ui,
            win._vi, win._nbr_start, win._nbr_count, win._pool, replicas,
            row_version, deg, win._iver, win._pids, lamb, win._version,
            max_degree, bool(use_cs), io_f, io_i))
        if ret == -1:
            return -1, win._scratch[:int(io_i[3])], (0, 0, 0)
        win._score_sum = float(io_f[0])
        return ret, None, (int(io_i[0]), int(io_i[1]), int(io_i[2]))

    def add(self, win, slot, du, dv, seg_start, seg_count, lamb, use_cs):
        replicas, row_version, deg, max_degree = self._state_arrays(win)
        return float(self._ns["add_score"](
            slot, du, dv, seg_start, seg_count, win._score, win._partition,
            win._entry, win._slot_version, win._rep, win._cs, win._rep_key,
            win._nbr_key, win._cs_sum, win._ui, win._vi, win._nbr_start,
            win._nbr_count, win._pool, replicas, row_version, deg,
            win._iver, win._pids, lamb, win._version, max_degree,
            bool(use_cs), win._scratch2))

    def heap_push(self, win, slot: int) -> None:
        self._ns["heap_push"](win._heap, win._heap_pos, win._hctl,
                              win._score, win._entry, slot)

    def heap_remove(self, win, slot: int) -> None:
        self._ns["heap_remove"](win._heap, win._heap_pos, win._hctl,
                                win._score, win._entry, slot)

    def heap_rebuild(self, win) -> None:
        self._ns["heap_heapify"](win._heap, win._heap_pos, win._hctl,
                                 win._score, win._entry)


class NumpyKernels(_KernelBase):
    """Vectorised fallback: same transactions as whole-array operations.

    The agenda array is kept *unordered* (``heap_pos`` is just a slot →
    position index for O(1) swap-remove); pop selection is a vectorised
    lex-max over ``(score, -entry)``, which picks the same slot as the
    heap root: ``max`` score, ties to the lowest entry id.
    """

    name = "numpy"
    native = False

    # -- agenda ------------------------------------------------------
    def heap_push(self, win, slot: int) -> None:
        n = int(win._hctl[0])
        win._heap[n] = slot
        win._heap_pos[slot] = n
        win._hctl[0] = n + 1

    def heap_remove(self, win, slot: int) -> None:
        pos = int(win._heap_pos[slot])
        if pos < 0:
            return
        n = int(win._hctl[0]) - 1
        win._hctl[0] = n
        win._heap_pos[slot] = -1
        if pos != n:
            moved = win._heap[n]
            win._heap[pos] = moved
            win._heap_pos[moved] = pos

    def heap_rebuild(self, win) -> None:  # order-free agenda
        pass

    # -- transactions ------------------------------------------------
    def scan_nbr(self, win, slots: np.ndarray) -> np.ndarray:
        iu = win._ui[slots]
        iv = win._vi[slots]
        keys = win._nbr_key[slots]
        stale = ((keys[:, 0] != win._iver[iu])
                 | (keys[:, 1] != win._iver[iv]))
        return slots[stale]

    def _segment_index(self, win, slots: np.ndarray):
        """Concatenated pool indices of ``slots``' segments + reduceat
        geometry (mirrors ``clustering_batch``'s zero-count handling)."""
        counts = win._nbr_count[slots]
        starts = win._nbr_start[slots]
        total = int(counts.sum())
        if total == 0:
            return None, counts
        ends = np.cumsum(counts)
        inner = np.arange(total, dtype=np.int64) - np.repeat(
            ends - counts, counts)
        idx = win._pool[np.repeat(starts, counts) + inner]
        return idx, counts

    def _segment_sums(self, values, idx, counts):
        """Per-slot sums of ``values`` over concatenated segments."""
        n = len(counts)
        out_shape = (n,) + values.shape[1:]
        out = np.zeros(out_shape, dtype=np.int64)
        if idx is None:
            return out
        gathered = values[idx]
        if gathered.dtype == bool:
            gathered = gathered.astype(np.int64)
        nonzero = counts > 0
        ends = np.cumsum(counts[nonzero])
        starts = ends - counts[nonzero]
        out[nonzero] = np.add.reduceat(gathered, starts, axis=0)
        return out

    def rescore(self, win, slots, lamb, use_cs) -> Tuple[int, int, int]:
        state = win.scoring.state
        replicas = state.replica_matrix()
        row_version = state.row_version_array()
        deg = state.degrees_dense()
        max_degree = state.max_degree
        iu = win._ui[slots]
        iv = win._vi[slots]
        rk = win._rep_key[slots]
        rep_fresh = ((rk[:, 0] == row_version[iu])
                     & (rk[:, 1] == row_version[iv])
                     & (rk[:, 2] == deg[iu]) & (rk[:, 3] == deg[iv])
                     & (rk[:, 4] == max_degree))
        if use_cs:
            nk = win._nbr_key[slots]
            nbr_fresh = ((nk[:, 0] == win._iver[iu])
                         & (nk[:, 1] == win._iver[iv]))
            idx, counts = self._segment_index(win, slots)
            vsums = self._segment_sums(row_version, idx, counts)
            cs_fresh = nbr_fresh & (win._cs_sum[slots] == vsums)
        else:
            cs_fresh = np.ones(len(slots), dtype=bool)
        skip = ((win._slot_version[slots] == win._version)
                & rep_fresh & cs_fresh)
        work = slots[~skip]
        if len(work) == 0:
            return 0, 0, 0
        dirty_rep = slots[~skip & ~rep_fresh]
        if len(dirty_rep):
            du = win._ui[dirty_rep]
            dv = win._vi[dirty_rep]
            maxd = max_degree if max_degree > 1 else 1
            denominator = 2.0 * maxd
            psi_u = deg[du] / denominator
            psi_v = deg[dv] / denominator
            win._rep[dirty_rep] = (
                replicas[du] * (2.0 - psi_u)[:, None]
                + replicas[dv] * (2.0 - psi_v)[:, None])
            key = win._rep_key
            key[dirty_rep, 0] = row_version[du]
            key[dirty_rep, 1] = row_version[dv]
            key[dirty_rep, 2] = deg[du]
            key[dirty_rep, 3] = deg[dv]
            key[dirty_rep, 4] = max_degree
        n_cs = 0
        if use_cs:
            dirty_cs = slots[~skip & ~cs_fresh]
            n_cs = len(dirty_cs)
            if n_cs:
                idx, counts = self._segment_index(win, dirty_cs)
                hits = self._segment_sums(replicas, idx, counts)
                cs = np.zeros_like(hits, dtype=np.float64)
                nonzero = counts > 0
                cs[nonzero] = hits[nonzero] / counts[nonzero, None]
                win._cs[dirty_cs] = cs
                win._cs_sum[dirty_cs] = self._segment_sums(
                    row_version, idx, counts)
            totals = lamb + win._rep[work]
            totals += win._cs[work]
        else:
            totals = lamb + win._rep[work]
        best_columns = totals.argmax(axis=1)
        best_scores = totals.max(axis=1)
        old_scores = win._score[work].tolist()
        # Entry-ordered scalar accumulation, like the object window.
        score_sum = win._score_sum
        for i, new_score in enumerate(best_scores.tolist()):
            score_sum += new_score - old_scores[i]
        win._score_sum = score_sum
        win._score[work] = best_scores
        win._partition[work] = win._pids[best_columns]
        win._slot_version[work] = win._version
        return len(work), len(dirty_rep), n_cs

    def pop(self, win, lamb, use_cs):
        n = int(win._hctl[0])
        cand = win._heap[:n]
        stale = cand[win._slot_version[cand] != win._version]
        if len(stale) > 1:
            stale = stale[np.argsort(win._entry[stale])]
        stats = (0, 0, 0)
        if len(stale):
            if use_cs:
                need = self.scan_nbr(win, stale)
                if len(need):
                    return -1, need, stats
            stats = self.rescore(win, stale, lamb, use_cs)
        scores = win._score[cand]
        best = scores.max()
        ties = cand[scores == best]
        if len(ties) > 1:
            best_slot = int(ties[np.argmin(win._entry[ties])])
        else:
            best_slot = int(ties[0])
        return best_slot, None, stats

    def add(self, win, slot, du, dv, seg_start, seg_count, lamb, use_cs):
        state = win.scoring.state
        replicas = state.replica_matrix()
        row_version = state.row_version_array()
        deg = state.degrees_dense()
        max_degree = state.max_degree
        win._ui[slot] = du
        win._vi[slot] = dv
        win._nbr_start[slot] = seg_start
        win._nbr_count[slot] = seg_count
        maxd = max_degree if max_degree > 1 else 1
        denominator = 2.0 * maxd
        psi_u = deg[du] / denominator
        psi_v = deg[dv] / denominator
        rep = (replicas[du] * (2.0 - psi_u)
               + replicas[dv] * (2.0 - psi_v))
        win._rep[slot] = rep
        win._rep_key[slot, 0] = row_version[du]
        win._rep_key[slot, 1] = row_version[dv]
        win._rep_key[slot, 2] = deg[du]
        win._rep_key[slot, 3] = deg[dv]
        win._rep_key[slot, 4] = max_degree
        win._nbr_key[slot, 0] = win._iver[du]
        win._nbr_key[slot, 1] = win._iver[dv]
        total = lamb + rep
        if use_cs:
            seg = win._pool[seg_start:seg_start + seg_count]
            if seg_count > 0:
                hits = replicas[seg].sum(axis=0, dtype=np.int64)
                cs = hits / seg_count
                win._cs[slot] = cs
                total = total + cs
                win._cs_sum[slot] = int(row_version[seg].sum())
            else:
                win._cs[slot] = 0.0
                win._cs_sum[slot] = 0
        column = int(total.argmax())
        score = float(total[column])
        win._score[slot] = score
        win._partition[slot] = win._pids[column]
        win._slot_version[slot] = win._version
        return score
