"""ADWISE core: adaptive window-based streaming edge partitioning."""

from repro.core.scoring import AdaptiveBalancer, AdwiseScoring
from repro.core.window import EdgeWindow
from repro.core.adaptive import AdaptiveWindowController, WindowDecision
from repro.core.adwise import AdwisePartitioner
from repro.core.spotlight import spotlight_spreads

try:
    from repro.core.array_window import ArrayEdgeWindow
except ImportError:  # pragma: no cover - numpy-free installs
    ArrayEdgeWindow = None

__all__ = [
    "AdaptiveBalancer",
    "AdwiseScoring",
    "ArrayEdgeWindow",
    "EdgeWindow",
    "AdaptiveWindowController",
    "WindowDecision",
    "AdwisePartitioner",
    "spotlight_spreads",
]
