"""Array-native edge window: k-best agenda over pull-validated memos.

:class:`ArrayEdgeWindow` is the batched twin of
:class:`~repro.core.window.EdgeWindow`.  Window slots live in parallel
preallocated arrays (dense endpoint indices, cached best
score/partition, cache version, candidate and alive masks) managed
through a free-list, with an incidence index from dense vertex → slots
for the window-local neighborhoods.  The traversal hot path runs through
the kernel backends of :mod:`repro.core._kernels` (compiled C / numba /
vectorised numpy, selected at window construction — DESIGN.md §14):

* **refill** scores each incoming edge through the fused add kernel
  (native backends) or one vectorised block computation (numpy),
* **pop_best** pops the k-best *agenda* — an indexed binary max-heap
  keyed ``(score desc, entry asc)`` over the candidate set — after a
  single kernel transaction rescored the version-stale candidates and
  repaired the heap,
* **rule 2** (empty candidate set) and **rule 3** (replica-set changes)
  rescore the affected secondary slots through the same kernel.

Staleness is **pulled, not pushed**.  Each slot carries validity keys
next to its memoized R/CS component rows: ``rep_key`` records the
replica-row versions, degrees and global max degree R was computed
from; ``nbr_key`` records the endpoints' incidence versions when the
neighborhood segment was written; ``cs_sum`` checksums the neighbor
replica-row versions CS was computed from (versions only grow, so
equality proves nothing moved).  A rescore compares keys against the
live counters and recomputes only what actually moved — no invalidation
sweeps on the mutation paths at all.  A version-fresh slot whose keys
all match is skipped outright: its cache bit-equals what a fresh
recomputation would produce (the rule-2 lazy saving), while the
simulated clock is still charged for the full rescore set, keeping the
paper's cost model.

The object window performs the same traversal one ``score_all`` call
per edge; this class replays each of its scalar loops in the same
ascending entry-id order, reproducing the reference's floating-point
accumulation, tie-breaking, and clock charges exactly — assignments,
latency, and score-computation counts are bit-identical (the agenda's
strict total order makes the heap root the reference's
first-max-in-entry-order).  Enforced by ``tests/test_array_window.py``
and ``tests/test_kbest_agenda.py``.

Two contracts are stricter than the object window's, both satisfied by
Algorithm 1's main loop: every replica-set change affecting scored
vertices must be reported via :meth:`on_replicas_changed` (the loop does
this after every assignment; it matters also when ``lazy`` is off), and
mid-stream degree observations must flow through the add paths'
``observe`` hook — the validity keys are stamped against the state
tables those paths maintain.

Capacity management: slot arrays double on demand during refill and are
compacted (slots renumbered, incidence and agenda rebuilt) when
occupancy falls below a quarter of capacity after the adaptive
controller shrinks the window — renumbering is safe because every
ordering contract is defined on entry ids, never slot positions.
Neighborhood segments live in a pooled arena that is repacked when
append space runs out.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core import _kernels
from repro.core.scoring import AdwiseScoring
from repro.graph.graph import Edge

#: Smallest slot-array capacity; also the floor below which no
#: compaction is attempted.
_MIN_CAPACITY = 64

#: Agenda strategies: ``heap`` maintains the k-best agenda, ``scan``
#: keeps the PR-5 sorted-scan selection (differential control path),
#: ``auto`` resolves to ``heap``.
AGENDAS = ("auto", "heap", "scan")


class ArrayEdgeWindow:
    """Fixed-capacity-free edge window over struct-of-arrays slots.

    API-compatible with :class:`~repro.core.window.EdgeWindow` (same
    constructor contract, same traversal methods, same counters), but
    requires a fast (array-backed) partition state on ``scoring`` —
    the kernels read replica rows, row versions and degrees wholesale
    by dense vertex index.
    """

    def __init__(self, scoring: AdwiseScoring, lazy: bool = True,
                 epsilon: float = 0.1, max_candidates: int = 64,
                 initial_capacity: int = _MIN_CAPACITY,
                 agenda: str = "auto") -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        if max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        if agenda not in AGENDAS:
            raise ValueError(f"agenda must be one of {AGENDAS}, got {agenda!r}")
        if not getattr(scoring.state, "is_fast", False):
            raise ValueError(
                "ArrayEdgeWindow requires an array-backed partition state "
                "(FastPartitionState); use EdgeWindow on the legacy state")
        self.scoring = scoring
        self.lazy = lazy
        self.epsilon = epsilon
        self.max_candidates = max_candidates
        self.agenda = agenda
        state = scoring.state
        k = state.num_partitions
        capacity = max(_MIN_CAPACITY, int(initial_capacity))
        self._capacity = capacity
        self._score = np.zeros(capacity, dtype=np.float64)
        self._partition = np.zeros(capacity, dtype=np.int64)
        self._entry = np.full(capacity, -1, dtype=np.int64)
        self._slot_version = np.full(capacity, -1, dtype=np.int64)
        self._candidate = np.zeros(capacity, dtype=bool)
        self._alive = np.zeros(capacity, dtype=bool)
        self._edges: List[Optional[Edge]] = [None] * capacity
        # LIFO free-list, seeded low-slots-first; compaction repacks live
        # slots to the front when occupancy drops (ordering never depends
        # on slot numbers, only entry ids).
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._slot_of: Dict[int, int] = {}
        # Dense-vertex incidence: vertex row → {slot: other endpoint's
        # dense row}.  The values are exactly the window-local
        # neighborhood contributions, so neighborhoods come straight off
        # the bucket values.
        self._incidence: Dict[int, Dict[int, int]] = {}
        # Component memos + pull-validity keys (see module docstring).
        self._rep = np.zeros((capacity, k), dtype=np.float64)
        self._cs = np.zeros((capacity, k), dtype=np.float64)
        self._rep_key = np.full((capacity, 5), -1, dtype=np.int64)
        self._nbr_key = np.full((capacity, 2), -1, dtype=np.int64)
        self._cs_sum = np.full(capacity, -1, dtype=np.int64)
        self._ui = np.zeros(capacity, dtype=np.int64)
        self._vi = np.zeros(capacity, dtype=np.int64)
        # Pooled neighborhood segments (dense indices).  Rebuilt segments
        # are appended; the arena is repacked when append space runs out.
        self._nbr_start = np.zeros(capacity, dtype=np.int64)
        self._nbr_count = np.zeros(capacity, dtype=np.int64)
        self._pool = np.zeros(max(256, 4 * capacity), dtype=np.int64)
        self._pool_used = 0
        # Per-dense-vertex incidence version; grown to the state's intern
        # capacity on binding refresh.
        self._iver = np.zeros(0, dtype=np.int64)
        # The k-best agenda (candidate slots; hctl[0] is the heap size).
        self._heap = np.zeros(capacity, dtype=np.int64)
        self._heap_pos = np.full(capacity, -1, dtype=np.int64)
        self._hctl = np.zeros(4, dtype=np.int64)
        self._scratch = np.zeros(2 * capacity, dtype=np.int64)
        # Kernel I/O buffers (bound once for the cc backend).
        self._lamb = np.zeros(k, dtype=np.float64)
        self._io_f = np.zeros(4, dtype=np.float64)
        self._io_i = np.zeros(8, dtype=np.int64)
        self._scratch2 = np.zeros(2, dtype=np.float64)
        self._pids = np.asarray(state.partitions, dtype=np.int64)
        self._next_id = 0
        self._count = 0
        self._num_candidates = 0
        self._score_sum = 0.0  # sum of cached best scores (for g_avg)
        self._version = 0  # bumped after each pop (i.e. each assignment)
        #: Secondary→candidate promotions performed by rules 2 and 3.
        self.promotions = 0
        # Observability tallies (plain ints: near-zero hot-path cost).
        # Published to the repro.obs registry by the partitioner at
        # finalize time; never part of results/extras, so differential
        # parity with the object window is untouched.
        #: Edges admitted into the window (refills).
        self.stat_refills = 0
        #: ``pop_best`` calls (assignments emitted).
        self.stat_pops = 0
        #: Slots actually rescored (version- or memo-stale at rescore).
        self.stat_rescored_slots = 0
        #: Replication components actually recomputed (key misses).
        self.stat_rep_recomputed = 0
        #: Clustering components actually recomputed (key misses).
        self.stat_cs_recomputed = 0
        #: Agenda insertions (adds classified candidate + promotions).
        self.stat_heap_pushes = 0
        #: Agenda removals (pops and evictions).
        self.stat_heap_removes = 0
        #: Pops that repaired the agenda after rescoring stale keys.
        self.stat_reheaps = 0
        self._use_heap = agenda != "scan"
        self._kern = _kernels.load_kernels(self)
        self._bound_replicas: Optional[np.ndarray] = None

    @property
    def kernel_backend(self) -> str:
        """Resolved kernel backend name (``cc``/``numba``/``numpy``/...)."""
        return self._kern.name

    # ------------------------------------------------------------------
    # Introspection (EdgeWindow API)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def candidate_count(self) -> int:
        return self._num_candidates

    @property
    def secondary_count(self) -> int:
        return self._count - self._num_candidates

    def edges(self) -> List[Edge]:
        """Window edges in insertion (entry-id) order."""
        return [self._edges[int(s)] for s in self._sorted_slots()]

    @property
    def threshold(self) -> float:
        """Current candidate threshold Θ = g_avg + ε."""
        if self._count == 0:
            return self.epsilon
        return self._score_sum / self._count + self.epsilon

    # ------------------------------------------------------------------
    # Window-local neighborhood
    # ------------------------------------------------------------------
    def neighborhood(self, edge: Edge,
                     exclude_entry: Optional[int] = None) -> Set[int]:
        """``N(u) ∪ N(v)`` computed from window edges only (paper §III-C).

        Returned as original vertex ids (the :class:`EdgeWindow` API);
        the kernels use the dense form below.
        """
        exclude_slot = (self._slot_of.get(exclude_entry)
                        if exclude_entry is not None else None)
        vindex = self.scoring.state._vindex
        edges = self._edges
        nbrs: Set[int] = set()
        for endpoint in (edge.u, edge.v):
            dense = vindex.get(endpoint)
            if dense is None:
                continue
            for slot in self._incidence.get(dense, ()):
                if slot == exclude_slot:
                    continue
                other = edges[slot]
                nbrs.add(other.v if other.u == endpoint else other.u)
        nbrs.discard(edge.u)
        nbrs.discard(edge.v)
        return nbrs

    def _dense_neighborhood(self, du: int, dv: int) -> Set[int]:
        """``N(u) ∪ N(v)`` as dense rows.  Self-contributions need no
        exclusion: an edge's own incidence values are its endpoints,
        which are discarded regardless (as the reference does)."""
        out: Set[int] = set()
        bucket = self._incidence.get(du)
        if bucket:
            out.update(bucket.values())
        if dv != du:
            bucket = self._incidence.get(dv)
            if bucket:
                out.update(bucket.values())
        out.discard(du)
        out.discard(dv)
        return out

    # ------------------------------------------------------------------
    # Kernel binding and buffer management
    # ------------------------------------------------------------------
    def _refresh_bindings(self) -> None:
        """Sync the replica matrix and rebind kernel pointers if the
        state's arrays were reallocated (intern table growth)."""
        state = self.scoring.state
        replicas = state.replica_matrix()
        if (replicas is not self._bound_replicas
                or len(self._iver) < replicas.shape[0]):
            if len(self._iver) < replicas.shape[0]:
                iver = np.zeros(replicas.shape[0], dtype=np.int64)
                iver[:len(self._iver)] = self._iver
                self._iver = iver
            self._kern.bind(self)
            self._bound_replicas = replicas

    def _pool_alloc(self, count: int) -> int:
        need = self._pool_used + count
        if need > len(self._pool):
            self._pool_gc(count)
        start = self._pool_used
        self._pool_used = start + count
        return start

    def _pool_gc(self, extra: int) -> None:
        """Repack live segments (dropping dead slots' garbage), growing
        the arena if the live data itself outgrew it."""
        alive = np.flatnonzero(self._alive)
        live = int(self._nbr_count[alive].sum())
        capacity = len(self._pool)
        while capacity < 2 * (live + extra):
            capacity *= 2
        pool = np.zeros(capacity, dtype=np.int64)
        used = 0
        old_pool = self._pool
        starts = self._nbr_start
        counts = self._nbr_count
        for slot in alive.tolist():
            cnt = int(counts[slot])
            if cnt:
                start = int(starts[slot])
                pool[used:used + cnt] = old_pool[start:start + cnt]
                starts[slot] = used
                used += cnt
        self._pool = pool
        self._pool_used = used
        self._kern.bind(self)

    def _rebuild_segments(self, needy) -> None:
        """Rewrite the pooled neighborhood segments of ``needy`` slots
        and restamp their keys (CS checksum forced invalid — the
        segment changed, so the memoized CS is for a different set)."""
        iver = self._iver
        nbr_key = self._nbr_key
        for slot in needy.tolist():
            du = int(self._ui[slot])
            dv = int(self._vi[slot])
            nbrs = self._dense_neighborhood(du, dv)
            cnt = len(nbrs)
            if cnt:
                start = self._pool_alloc(cnt)
                pool = self._pool
                i = start
                for dense in nbrs:
                    pool[i] = dense
                    i += 1
            else:
                start = 0
            self._nbr_start[slot] = start
            self._nbr_count[slot] = cnt
            nbr_key[slot, 0] = iver[du]
            nbr_key[slot, 1] = iver[dv]
            self._cs_sum[slot] = -1

    # ------------------------------------------------------------------
    # Slot management
    # ------------------------------------------------------------------
    def _alloc(self) -> int:
        if not self._free:
            self._resize(self._capacity * 2)
        return self._free.pop()

    def _resize(self, capacity: int) -> None:
        """Grow the slot arrays to ``capacity`` (must exceed current)."""
        old = self._capacity
        k = self._rep.shape[1]

        def grown(array, fill):
            out = np.full(capacity, fill, dtype=array.dtype)
            out[:old] = array
            return out

        def grown2(matrix, fill=0):
            out = np.full((capacity, matrix.shape[1]), fill,
                          dtype=matrix.dtype)
            out[:old] = matrix
            return out

        self._score = grown(self._score, 0.0)
        self._partition = grown(self._partition, 0)
        self._entry = grown(self._entry, -1)
        self._slot_version = grown(self._slot_version, -1)
        self._candidate = grown(self._candidate, False)
        self._alive = grown(self._alive, False)
        self._rep = grown2(self._rep)
        self._cs = grown2(self._cs)
        self._rep_key = grown2(self._rep_key, -1)
        self._nbr_key = grown2(self._nbr_key, -1)
        self._cs_sum = grown(self._cs_sum, -1)
        self._ui = grown(self._ui, 0)
        self._vi = grown(self._vi, 0)
        self._nbr_start = grown(self._nbr_start, 0)
        self._nbr_count = grown(self._nbr_count, 0)
        self._heap = grown(self._heap, 0)
        self._heap_pos = grown(self._heap_pos, -1)
        self._scratch = np.zeros(2 * capacity, dtype=np.int64)
        extra = capacity - old
        self._edges.extend([None] * extra)
        self._free.extend(range(capacity - 1, old - 1, -1))
        self._capacity = capacity
        self._kern.bind(self)

    def _compact(self) -> None:
        """Repack live slots at the front and shrink the arrays.

        Entry ids are preserved; only slot numbers change, which is
        invisible to the traversal semantics (all ordering is by entry
        id).  Runs after the adaptive controller shrinks the window far
        below the grown capacity.  Memos, validity keys and pooled
        segments are carried over — none of them involve slot numbers —
        and the agenda is rebuilt over the renumbered candidate set.
        """
        live = self._sorted_slots()
        count = len(live)
        capacity = _MIN_CAPACITY
        while capacity < count * 2:
            capacity *= 2
        k = self._rep.shape[1]
        score = np.zeros(capacity, dtype=np.float64)
        partition = np.zeros(capacity, dtype=np.int64)
        entry = np.full(capacity, -1, dtype=np.int64)
        version = np.full(capacity, -1, dtype=np.int64)
        candidate = np.zeros(capacity, dtype=bool)
        alive = np.zeros(capacity, dtype=bool)
        rep = np.zeros((capacity, k), dtype=np.float64)
        cs = np.zeros((capacity, k), dtype=np.float64)
        rep_key = np.full((capacity, 5), -1, dtype=np.int64)
        nbr_key = np.full((capacity, 2), -1, dtype=np.int64)
        cs_sum = np.full(capacity, -1, dtype=np.int64)
        ui = np.zeros(capacity, dtype=np.int64)
        vi = np.zeros(capacity, dtype=np.int64)
        nbr_start = np.zeros(capacity, dtype=np.int64)
        nbr_count = np.zeros(capacity, dtype=np.int64)
        score[:count] = self._score[live]
        partition[:count] = self._partition[live]
        entry[:count] = self._entry[live]
        version[:count] = self._slot_version[live]
        candidate[:count] = self._candidate[live]
        alive[:count] = True
        rep[:count] = self._rep[live]
        cs[:count] = self._cs[live]
        rep_key[:count] = self._rep_key[live]
        nbr_key[:count] = self._nbr_key[live]
        cs_sum[:count] = self._cs_sum[live]
        ui[:count] = self._ui[live]
        vi[:count] = self._vi[live]
        nbr_start[:count] = self._nbr_start[live]
        nbr_count[:count] = self._nbr_count[live]
        edges: List[Optional[Edge]] = [None] * capacity
        for new_slot, old_slot in enumerate(live.tolist()):
            edges[new_slot] = self._edges[old_slot]
        self._score, self._partition = score, partition
        self._entry, self._slot_version = entry, version
        self._candidate, self._alive = candidate, alive
        self._rep, self._cs = rep, cs
        self._rep_key, self._nbr_key, self._cs_sum = rep_key, nbr_key, cs_sum
        self._ui, self._vi = ui, vi
        self._nbr_start, self._nbr_count = nbr_start, nbr_count
        self._edges = edges
        self._capacity = capacity
        self._free = list(range(capacity - 1, count - 1, -1))
        self._slot_of = {int(entry[s]): s for s in range(count)}
        incidence: Dict[int, Dict[int, int]] = {}
        for slot in range(count):
            du = int(ui[slot])
            dv = int(vi[slot])
            incidence.setdefault(du, {})[slot] = dv
            incidence.setdefault(dv, {})[slot] = du
        self._incidence = incidence
        self._heap = np.zeros(capacity, dtype=np.int64)
        self._heap_pos = np.full(capacity, -1, dtype=np.int64)
        self._scratch = np.zeros(2 * capacity, dtype=np.int64)
        self._hctl[0] = 0
        self._kern.bind(self)
        if self._use_heap:
            self._rebuild_heap()

    def _rebuild_heap(self) -> None:
        """Refill the agenda from the candidate mask and heapify."""
        cands = np.flatnonzero(self._candidate)
        m = len(cands)
        self._hctl[0] = m
        if m:
            self._heap[:m] = cands
            self._heap_pos[cands] = np.arange(m, dtype=np.int64)
            self._kern.heap_rebuild(self)

    def _sorted_slots(self, candidate: Optional[bool] = None) -> np.ndarray:
        """Live slots in ascending entry-id order, optionally filtered."""
        if candidate is True:
            # The candidate mask is only ever set on live slots.
            slots = np.flatnonzero(self._candidate)
        elif candidate is False:
            slots = np.flatnonzero(self._alive & ~self._candidate)
        else:
            slots = np.flatnonzero(self._alive)
        if slots.size > 1:
            slots = slots[np.argsort(self._entry[slots])]
        return slots

    # ------------------------------------------------------------------
    # Rescoring through the kernel backend
    # ------------------------------------------------------------------
    def _rescore_batch(self, slots: np.ndarray, lamb: np.ndarray,
                       use_cs: bool) -> None:
        """Rescore ``slots`` (entry-id order) against the current state.

        Charges ``k`` score computations per slot — the object window
        recomputes every one of them — while the kernel reuses the
        cache of any version-fresh slot whose validity keys all match
        (a recomputation would bit-equal it).  Stale neighborhood
        segments are rebuilt first, then the kernel recomputes invalid
        R/CS components, reassembles totals, and accumulates the score
        sum in the reference's scalar order.
        """
        clock = self.scoring.clock
        if clock is not None:
            clock.charge_score(len(slots) * self.scoring.state.num_partitions)
        kern = self._kern
        if use_cs:
            needy = kern.scan_nbr(self, slots)
            if len(needy):
                self._rebuild_segments(needy)
        rescored, rep_recomputed, cs_recomputed = kern.rescore(
            self, slots, lamb, use_cs)
        self.stat_rescored_slots += rescored
        self.stat_rep_recomputed += rep_recomputed
        self.stat_cs_recomputed += cs_recomputed

    # ------------------------------------------------------------------
    # Serialization (session snapshot boundary)
    # ------------------------------------------------------------------
    def to_image(self):
        """Capture the traversal state verbatim as a
        :class:`~repro.core.window.WindowImage` (component memos are
        rebuilt on restore — they only ever hold values a fresh
        computation would produce, so dropping them is invisible)."""
        from repro.core.window import WindowImage

        entries = []
        for slot in self._sorted_slots().tolist():
            edge = self._edges[slot]
            entries.append((int(self._entry[slot]), edge.u, edge.v,
                            float(self._score[slot]),
                            int(self._partition[slot]),
                            int(self._slot_version[slot]),
                            bool(self._candidate[slot])))
        return WindowImage(
            entries=entries,
            next_id=self._next_id,
            score_sum=self._score_sum,
            version=self._version,
            promotions=self.promotions,
        )

    def _restore_slot(self, edge: Edge, entry_id: int, score: float,
                      partition: int, version: int, candidate: bool) -> None:
        """Adopt one entry verbatim (restore/migration); memos start
        invalid and refill with values a fresh computation would
        produce anyway."""
        state = self.scoring.state
        du, dv = state.dense_pair(edge.u, edge.v)
        slot = self._alloc()
        self._edges[slot] = edge
        self._entry[slot] = entry_id
        self._score[slot] = score
        self._partition[slot] = partition
        self._slot_version[slot] = version
        self._candidate[slot] = candidate
        self._alive[slot] = True
        self._ui[slot] = du
        self._vi[slot] = dv
        self._slot_of[entry_id] = slot
        self._incidence.setdefault(du, {})[slot] = dv
        self._incidence.setdefault(dv, {})[slot] = du
        self._count += 1
        if candidate:
            self._num_candidates += 1

    def _finish_restore(self) -> None:
        self._refresh_bindings()
        if self._use_heap:
            self._rebuild_heap()

    @classmethod
    def from_image(cls, scoring: AdwiseScoring, image,
                   lazy: bool = True, epsilon: float = 0.1,
                   max_candidates: int = 64,
                   initial_capacity: int = _MIN_CAPACITY,
                   agenda: str = "auto") -> "ArrayEdgeWindow":
        """Rebuild a window from an image; continues bit-identically."""
        new = cls(scoring, lazy=lazy, epsilon=epsilon,
                  max_candidates=max_candidates,
                  initial_capacity=max(initial_capacity,
                                       2 * len(image.entries)),
                  agenda=agenda)
        for entry_id, u, v, score, partition, version, candidate in \
                image.entries:
            new._restore_slot(Edge(u, v), entry_id, score, partition,
                              version, candidate)
        new._next_id = image.next_id
        new._score_sum = image.score_sum
        new._version = image.version
        new.promotions = image.promotions
        new._finish_restore()
        return new

    # ------------------------------------------------------------------
    # Migration (hybrid window engine)
    # ------------------------------------------------------------------
    @classmethod
    def from_object_window(cls, window, initial_capacity: int = _MIN_CAPACITY,
                           agenda: str = "auto") -> "ArrayEdgeWindow":
        """Adopt an :class:`~repro.core.window.EdgeWindow`'s exact state.

        The hybrid ``auto`` backend runs the object window while ``w`` is
        small (slot arrays have no leverage there) and migrates here once
        the adaptive controller grows past the batching threshold.  Every
        piece of traversal state is copied verbatim — entry ids, cached
        (score, partition, version) triples, candidate membership, the
        float score sum with its accumulation history, the pop version,
        and the promotion counter — so the migrated window continues
        bit-identically.
        """
        new = cls(window.scoring, lazy=window.lazy, epsilon=window.epsilon,
                  max_candidates=window.max_candidates,
                  initial_capacity=max(initial_capacity, 2 * len(window)),
                  agenda=agenda)
        for entry_id in sorted(window._entries):
            entry = window._entries[entry_id]
            new._restore_slot(entry.edge, entry_id, entry.best_score,
                              entry.best_partition, entry.version,
                              entry.candidate)
        new._next_id = window._next_id
        new._score_sum = window._score_sum
        new._version = window._version
        new.promotions = window.promotions
        new.stat_refills = getattr(window, "stat_refills", 0)
        new.stat_pops = getattr(window, "stat_pops", 0)
        new._finish_restore()
        return new

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, edge: Edge) -> int:
        """Insert ``edge``; score it once and classify it; return entry id."""
        return self.add_block((edge,))[0]

    def add_block(self, edges: Sequence[Edge],
                  observe: Optional[Callable[[Edge], None]] = None
                  ) -> List[int]:
        """Rule 1 for a whole refill block.

        Replays the object window's sequential semantics exactly: edge
        ``i``'s Ψ normalisations are captured right after it is observed
        (before later block edges touch the degree table), its
        neighborhood sees only earlier entries, and classification walks
        the block in order against the evolving threshold and candidate
        cap.  Native backends run the fused add kernel per edge; the
        numpy fallback batches the ``k``-partition scoring into one
        vectorised computation.  The clock charge (``k`` per edge, like
        ``score_all``) is batched up front — same total, same model.
        """
        n = len(edges)
        if n == 0:
            return []
        if not (self._kern.native or n == 1):
            return self._add_block_numpy(edges, observe)
        self.stat_refills += n
        scoring = self.scoring
        state = scoring.state
        if scoring.clock is not None:
            scoring.clock.charge_score(n * state.num_partitions)
        # λ·B is constant across the refill: no assignments happen
        # mid-block, so the memo would hit anyway — hoist it.
        lamb = scoring._lambda_balance()
        use_cs = scoring.use_clustering
        return [self._add_one(edge, observe, lamb, use_cs) for edge in edges]

    def _heap_insert(self, slot: int) -> None:
        self.stat_heap_pushes += 1
        self._kern.heap_push(self, slot)

    def _classify_new(self, slot: int, score: float) -> None:
        """Candidate-vs-secondary decision for a just-scored slot, after
        its score joined the running sum (rule 1's threshold test)."""
        if (not self.lazy
                or (score > self._score_sum / self._count + self.epsilon
                    and self._num_candidates < self.max_candidates)):
            self._candidate[slot] = True
            self._num_candidates += 1
            if self._use_heap:
                self._heap_insert(slot)

    def _add_one(self, edge: Edge, observe: Optional[Callable[[Edge], None]],
                 lamb: np.ndarray, use_cs: bool) -> int:
        """Steady-state refill: one edge through the fused add kernel.

        Mirrors :meth:`AdwiseScoring.score_all` operation-for-operation
        (the Ψ capture is the live degree table at this edge's insert
        moment) and stamps the slot's memos and validity keys against
        the tables the score was computed from.  The clock charge is
        the caller's (batched per block).
        """
        if observe is not None:
            observe(edge)
        state = self.scoring.state
        du, dv = state.dense_pair(edge.u, edge.v)
        # Inlined _refresh_bindings fast path: replica_matrix() also
        # syncs pending replica bits, which the add kernel must see.
        if state.replica_matrix() is not self._bound_replicas:
            self._refresh_bindings()
        slot = self._alloc()
        if use_cs:
            nbrs = self._dense_neighborhood(du, dv)
            seg_count = len(nbrs)
            if seg_count:
                seg_start = self._pool_alloc(seg_count)
                pool = self._pool
                i = seg_start
                for dense in nbrs:
                    pool[i] = dense
                    i += 1
            else:
                seg_start = 0
        else:
            seg_start = 0
            seg_count = 0
        entry_id = self._next_id
        self._next_id = entry_id + 1
        self._edges[slot] = edge
        self._entry[slot] = entry_id
        self._candidate[slot] = False
        self._alive[slot] = True
        self._slot_of[entry_id] = slot
        # Bump the incidence versions *before* the kernel stamps the new
        # slot's nbr_key: inserting the edge changes its neighbors'
        # neighborhoods (they see the bumped counter as a stale key) but
        # not its own (it excludes itself), so the stamped key is fresh.
        iver = self._iver
        iver[du] += 1
        if dv != du:
            iver[dv] += 1
        score = self._kern.add(self, slot, du, dv, seg_start, seg_count,
                               lamb, use_cs)
        incidence = self._incidence
        incidence.setdefault(du, {})[slot] = dv
        incidence.setdefault(dv, {})[slot] = du
        self._count += 1
        self._score_sum += score
        self._classify_new(slot, score)
        return entry_id

    def _add_block_numpy(self, edges: Sequence[Edge],
                         observe: Optional[Callable[[Edge], None]]
                         ) -> List[int]:
        """Vectorised rule 1 for the numpy fallback: the per-edge walk
        captures each edge's Ψ/degree/version snapshot, then one
        broadcast computation scores the whole block (replica rows never
        move mid-block — no assignments happen — so end-of-block rows
        equal each edge's insertion-time rows, and the stamped keys are
        exact)."""
        n = len(edges)
        self.stat_refills += n
        scoring = self.scoring
        state = scoring.state
        if scoring.clock is not None:
            scoring.clock.charge_score(n * state.num_partitions)
        use_cs = scoring.use_clustering
        count_before = self._count
        ids: List[int] = []
        slot_list: List[int] = []
        dus = np.zeros(n, dtype=np.int64)
        dvs = np.zeros(n, dtype=np.int64)
        psi_u = np.zeros(n, dtype=np.float64)
        psi_v = np.zeros(n, dtype=np.float64)
        keys = np.zeros((n, 5), dtype=np.int64)
        for i, edge in enumerate(edges):
            if observe is not None:
                observe(edge)
            du, dv = state.dense_pair(edge.u, edge.v)
            self._refresh_bindings()
            deg = state.degrees_dense()
            row_version = state.row_version_array()
            max_degree = state.max_degree
            deg_u = int(deg[du])
            deg_v = int(deg[dv])
            denominator = 2.0 * max(1, max_degree)
            psi_u[i] = deg_u / denominator
            psi_v[i] = deg_v / denominator
            keys[i, 0] = row_version[du]
            keys[i, 1] = row_version[dv]
            keys[i, 2] = deg_u
            keys[i, 3] = deg_v
            keys[i, 4] = max_degree
            dus[i] = du
            dvs[i] = dv
            if use_cs:
                nbrs = self._dense_neighborhood(du, dv)
                seg_count = len(nbrs)
                if seg_count:
                    seg_start = self._pool_alloc(seg_count)
                    pool = self._pool
                    j = seg_start
                    for dense in nbrs:
                        pool[j] = dense
                        j += 1
                else:
                    seg_start = 0
            else:
                seg_start = 0
                seg_count = 0
            slot = self._alloc()
            slot_list.append(slot)
            entry_id = self._next_id
            self._next_id += 1
            ids.append(entry_id)
            self._edges[slot] = edge
            self._entry[slot] = entry_id
            self._candidate[slot] = False
            self._alive[slot] = True
            self._ui[slot] = du
            self._vi[slot] = dv
            self._nbr_start[slot] = seg_start
            self._nbr_count[slot] = seg_count
            self._slot_of[entry_id] = slot
            iver = self._iver
            iver[du] += 1
            if dv != du:
                iver[dv] += 1
            self._nbr_key[slot, 0] = iver[du]
            self._nbr_key[slot, 1] = iver[dv]
            self._incidence.setdefault(du, {})[slot] = dv
            self._incidence.setdefault(dv, {})[slot] = du
            self._count += 1
        replicas = state.replica_matrix()
        row_version = state.row_version_array()
        slots = np.asarray(slot_list, dtype=np.int64)
        rep = (replicas[dus] * (2.0 - psi_u)[:, None]
               + replicas[dvs] * (2.0 - psi_v)[:, None])
        self._rep[slots] = rep
        self._rep_key[slots] = keys
        totals = scoring._lambda_balance() + rep
        if use_cs:
            idx, counts = self._kern._segment_index(self, slots)
            hits = self._kern._segment_sums(replicas, idx, counts)
            cs = np.zeros_like(hits, dtype=np.float64)
            nonzero = counts > 0
            if nonzero.any():
                cs[nonzero] = hits[nonzero] / counts[nonzero, None]
            self._cs[slots] = cs
            self._cs_sum[slots] = self._kern._segment_sums(
                row_version, idx, counts)
            totals += cs
        best_columns = totals.argmax(axis=1)
        best_scores = totals.max(axis=1)
        self._score[slots] = best_scores
        self._partition[slots] = self._pids[best_columns]
        self._slot_version[slots] = self._version
        score_list = best_scores.tolist()
        for i in range(n):
            slot = slot_list[i]
            score = score_list[i]
            self._score_sum += score
            # Threshold as the object window saw it mid-block: entries
            # i+1.. are not part of the average yet.
            entries_so_far = count_before + i + 1
            if (not self.lazy
                    or (score > self._score_sum / entries_so_far + self.epsilon
                        and self._num_candidates < self.max_candidates)):
                self._candidate[slot] = True
                self._num_candidates += 1
                if self._use_heap:
                    self._heap_insert(slot)
        return ids

    def _remove_slot(self, slot: int) -> None:
        self._score_sum -= float(self._score[slot])
        if self._candidate[slot]:
            self._candidate[slot] = False
            self._num_candidates -= 1
            if self._use_heap:
                self._kern.heap_remove(self, slot)
                self.stat_heap_removes += 1
        self._alive[slot] = False
        du = int(self._ui[slot])
        dv = int(self._vi[slot])
        incidence = self._incidence
        iver = self._iver
        for dense in (du, dv) if du != dv else (du,):
            bucket = incidence.get(dense)
            if bucket is not None:
                bucket.pop(slot, None)
                if not bucket:
                    del incidence[dense]
            # Membership at this vertex changed: neighbors' segments are
            # now stale (pulled on their next rescore).
            iver[dense] += 1
        self._edges[slot] = None
        del self._slot_of[int(self._entry[slot])]
        # Memos, validity keys, entry id and segment stay as-is: nothing
        # reads a dead slot (the alive/candidate masks and the agenda all
        # exclude it, and the pool GC skips it), and reuse through the
        # add kernel restamps every field.
        self._count -= 1
        self._free.append(slot)
        if (self._capacity > _MIN_CAPACITY
                and self._count * 4 <= self._capacity):
            self._compact()

    # ------------------------------------------------------------------
    # Traversal rules 2 and 3
    # ------------------------------------------------------------------
    def _rescore_secondary(self, lamb: np.ndarray, use_cs: bool) -> None:
        """Rule 2: candidate set empty → rescore Q, promote above-Θ edges."""
        if self._count == self._num_candidates:
            return
        slots = self._sorted_slots(candidate=False)
        self._rescore_batch(slots, lamb, use_cs)
        scores = self._score[slots]
        threshold = self.threshold
        above = slots[scores > threshold]
        if above.size == 0:
            # Fallback (uniform scores): promote the best few; ties break
            # toward the oldest entry, like the object window's ranking.
            order = np.lexsort((self._entry[slots], -scores))
            above = slots[order[:max(1, len(slots) // 8)]]
        for slot in above[:self.max_candidates].tolist():
            self._candidate[slot] = True
            self._num_candidates += 1
            self.promotions += 1
            if self._use_heap:
                self._heap_insert(slot)

    def pop_best(self) -> Tuple[Edge, int, float]:
        """Remove and return the best (edge, partition, score) assignment.

        Version-stale candidate caches (an assignment happened since
        they were computed) are refreshed through the kernel; fresh
        caches are reused — the lazy saving.  Ties break toward the
        lowest entry id, matching the object window's ordered scan (the
        agenda's total order makes the heap root exactly that slot).
        """
        if self._count == 0:
            raise IndexError("pop_best from an empty window")
        self.stat_pops += 1
        self._refresh_bindings()
        scoring = self.scoring
        lamb = scoring._lambda_balance()
        use_cs = scoring.use_clustering
        if self._num_candidates == 0:
            self._rescore_secondary(lamb, use_cs)
        if self._num_candidates == 0:  # pragma: no cover - rule-2 invariant
            raise RuntimeError("window invariant violated: no candidates "
                               "after rule-2 rescoring of a non-empty window")
        if self._use_heap:
            best_slot = self._pop_agenda(lamb, use_cs)
        else:
            best_slot = self._pop_scan(lamb, use_cs)
        best_score = float(self._score[best_slot])
        best_partition = int(self._partition[best_slot])
        edge = self._edges[best_slot]
        self._remove_slot(best_slot)
        # The caller assigns this edge next, which shifts balance scores;
        # all remaining caches become stale.
        self._version += 1
        return edge, best_partition, best_score

    def _pop_agenda(self, lamb: np.ndarray, use_cs: bool) -> int:
        """One agenda transaction: rescore stale candidates, repair the
        heap, return the root.  Restarts after rebuilding any stale
        neighborhood segments the kernel reported (the kernel is pure
        until its commit point)."""
        kern = self._kern
        while True:
            best_slot, needy, stats = kern.pop(self, lamb, use_cs)
            if best_slot >= 0:
                break
            if best_slot != -1:  # pragma: no cover - guarded by caller
                raise RuntimeError("pop from an empty agenda")
            self._rebuild_segments(needy)
        rescored, rep_recomputed, cs_recomputed = stats
        if rescored:
            clock = self.scoring.clock
            if clock is not None:
                clock.charge_score(
                    rescored * self.scoring.state.num_partitions)
            self.stat_rescored_slots += rescored
            self.stat_rep_recomputed += rep_recomputed
            self.stat_cs_recomputed += cs_recomputed
            self.stat_reheaps += 1
        return best_slot

    def _pop_scan(self, lamb: np.ndarray, use_cs: bool) -> int:
        """PR-5 selection (``agenda="scan"``): rescore stale candidates,
        then argmax over the entry-sorted candidate list."""
        slots = self._sorted_slots(candidate=True)
        stale = slots[self._slot_version[slots] != self._version]
        if stale.size:
            self._rescore_batch(stale, lamb, use_cs)
        scores = self._score[slots]
        return int(slots[int(scores.argmax())])

    def on_replicas_changed(self, vertices: Iterable[int]) -> int:
        """Rule 3: reassess secondary edges touching changed replica sets.

        Unlike the PR-5 window this performs no invalidation sweeps —
        the changed vertices' bumped row versions make every affected
        validity key stale, one or two hops out, and the rescore pulls
        them.  Returns the number of secondary edges promoted to the
        candidate set.
        """
        if not self.lazy:
            return 0
        vindex = self.scoring.state._vindex
        incidence = self._incidence
        touched: Set[int] = set()
        for vertex in vertices:
            dense = vindex.get(vertex)
            if dense is None:
                continue
            bucket = incidence.get(dense)
            if bucket:
                touched.update(bucket.keys())
        if not touched:
            return 0
        self._refresh_bindings()
        slots = np.fromiter(touched, dtype=np.int64, count=len(touched))
        secondary = self._alive[slots] & ~self._candidate[slots]
        slots = slots[secondary]
        if slots.size == 0:
            return 0
        if slots.size > 1:
            slots = slots[np.argsort(self._entry[slots])]
        scoring = self.scoring
        lamb = scoring._lambda_balance()
        use_cs = scoring.use_clustering
        threshold = self.threshold  # snapshot, like the object window
        self._rescore_batch(slots, lamb, use_cs)
        scores = self._score[slots]
        promoted = 0
        for i, slot in enumerate(slots.tolist()):
            if (scores[i] > threshold
                    and self._num_candidates < self.max_candidates):
                self._candidate[slot] = True
                self._num_candidates += 1
                promoted += 1
                self.promotions += 1
                if self._use_heap:
                    self._heap_insert(slot)
        return promoted
