"""Array-native edge window: struct-of-arrays lazy traversal (fast path).

:class:`ArrayEdgeWindow` is the batched twin of
:class:`~repro.core.window.EdgeWindow`.  Window slots live in parallel
preallocated arrays (endpoints, cached best score/partition, cache
version, candidate and alive masks) managed through a free-list, with an
incidence index from vertex → slots for the window-local neighborhoods.
The three lazy-traversal rules become masked batch operations:

* **refill** scores a whole block of incoming edges through one
  :meth:`~repro.core.scoring.AdwiseScoring.score_batch` call,
* **pop_best** refreshes all stale candidates as one batch and takes the
  argmax over the candidate mask,
* **rule 2** (empty candidate set) and **rule 3** (replica-set changes)
  push all touched secondary slots through the kernels together.

On top of the batching, per-slot **component memos** exploit that the
score ``g(e, p) = λ·B(p) + R(e, p) + CS(e, p)`` restricts how much of a
rescore actually changed: ``λ·B`` is shared (memoized on the scoring
function), ``R`` moves only when an endpoint's replica row or degree
moves, and ``CS`` only when the slot's window neighborhood or a
neighbor's replica row moves.  Rescoring therefore recomputes ``R``/``CS``
just for slots invalidated since the last pop — all invalidation is
pushed: :meth:`on_replicas_changed` sweeps one hop for ``R`` and two hops
for ``CS``, the add paths' degree observations sweep the endpoints'
incident slots, and window membership changes sweep through
:meth:`_touch_vertex` — and assembles everyone else's score with two
broadcast adds over the cached ``(w, k)`` component matrices.

The object window performs the same traversal one ``score_all`` call per
edge; this class replays each of its scalar loops in the same ascending
entry-id order, reproducing the reference's floating-point accumulation,
tie-breaking, and clock charges exactly — assignments, latency, and
score-computation counts are bit-identical (a memo only ever serves the
exact array a fresh computation would produce; the simulated clock is
still charged ``k`` per rescored slot, keeping the paper's cost model).
Enforced by ``tests/test_array_window.py``.

Two contracts are stricter than the object window's, both satisfied by
Algorithm 1's main loop: every replica-set change affecting scored
vertices must be reported via :meth:`on_replicas_changed` (the loop does
this after every assignment; it matters also when ``lazy`` is off), and
mid-stream degree observations must flow through the add paths' ``observe``
hook — the push invalidation relies on both.

Capacity management: slot arrays double on demand during refill and are
compacted (slots renumbered, incidence rebuilt) when occupancy falls
below a quarter of capacity after the adaptive controller shrinks the
window — renumbering is safe because every ordering contract is defined
on entry ids, never slot positions.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.scoring import AdwiseScoring
from repro.graph.graph import Edge

#: Smallest slot-array capacity; also the floor below which no
#: compaction is attempted.
_MIN_CAPACITY = 64


class ArrayEdgeWindow:
    """Fixed-capacity-free edge window over struct-of-arrays slots.

    API-compatible with :class:`~repro.core.window.EdgeWindow` (same
    constructor contract, same traversal methods, same counters), but
    requires a fast (array-backed) partition state on ``scoring`` —
    the batched kernels read replica rows and degrees wholesale.
    """

    def __init__(self, scoring: AdwiseScoring, lazy: bool = True,
                 epsilon: float = 0.1, max_candidates: int = 64,
                 initial_capacity: int = _MIN_CAPACITY) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        if max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        if not getattr(scoring.state, "is_fast", False):
            raise ValueError(
                "ArrayEdgeWindow requires an array-backed partition state "
                "(FastPartitionState); use EdgeWindow on the legacy state")
        self.scoring = scoring
        self.lazy = lazy
        self.epsilon = epsilon
        self.max_candidates = max_candidates
        state = scoring.state
        k = state.num_partitions
        capacity = max(_MIN_CAPACITY, int(initial_capacity))
        self._capacity = capacity
        self._score = np.zeros(capacity, dtype=np.float64)
        self._partition = np.zeros(capacity, dtype=np.int64)
        self._entry = np.full(capacity, -1, dtype=np.int64)
        self._slot_version = np.full(capacity, -1, dtype=np.int64)
        self._candidate = np.zeros(capacity, dtype=bool)
        self._alive = np.zeros(capacity, dtype=bool)
        self._edges: List[Optional[Edge]] = [None] * capacity
        # LIFO free-list, seeded low-slots-first; compaction repacks live
        # slots to the front when occupancy drops (ordering never depends
        # on slot numbers, only entry ids).
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._slot_of: Dict[int, int] = {}
        self._incidence: Dict[int, Set[int]] = {}
        # Component memos (see module docstring).  ``_rep``/``_cs`` hold
        # the R and CS vectors per slot; the validity flags and keys are
        # plain Python lists — they are read slot-by-slot on the hot path,
        # where list indexing beats ndarray scalar access.
        self._rep = np.zeros((capacity, k), dtype=np.float64)
        self._cs = np.zeros((capacity, k), dtype=np.float64)
        self._rep_valid: List[bool] = [False] * capacity
        self._cs_valid: List[bool] = [False] * capacity
        self._last_max_degree = state.max_degree
        # Per-slot neighborhood memo.  A slot's window-local neighborhood
        # only changes when a slot incident to one of its endpoints is
        # added or removed; those mutations push-clear the memo (see
        # :meth:`_touch_vertex`), so a non-``None`` entry is always live.
        self._nbr_cache: List[Optional[List[int]]] = [None] * capacity
        self._partition_ids = np.asarray(state.partitions, dtype=np.int64)
        self._next_id = 0
        self._count = 0
        self._num_candidates = 0
        self._score_sum = 0.0  # sum of cached best scores (for g_avg)
        self._version = 0  # bumped after each pop (i.e. each assignment)
        #: Secondary→candidate promotions performed by rules 2 and 3.
        self.promotions = 0
        # Observability tallies (plain ints: near-zero hot-path cost).
        # Published to the repro.obs registry by the partitioner at
        # finalize time; never part of results/extras, so differential
        # parity with the object window is untouched.
        #: Edges admitted into the window (refills).
        self.stat_refills = 0
        #: ``pop_best`` calls (assignments emitted).
        self.stat_pops = 0
        #: Slots rescored through the batched component path.
        self.stat_rescored_slots = 0
        #: Replication components actually recomputed (memo misses).
        self.stat_rep_recomputed = 0
        #: Clustering components actually recomputed (memo misses).
        self.stat_cs_recomputed = 0

    # ------------------------------------------------------------------
    # Introspection (EdgeWindow API)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def candidate_count(self) -> int:
        return self._num_candidates

    @property
    def secondary_count(self) -> int:
        return self._count - self._num_candidates

    def edges(self) -> List[Edge]:
        """Window edges in insertion (entry-id) order."""
        return [self._edges[int(s)] for s in self._sorted_slots()]

    @property
    def threshold(self) -> float:
        """Current candidate threshold Θ = g_avg + ε."""
        if self._count == 0:
            return self.epsilon
        return self._score_sum / self._count + self.epsilon

    # ------------------------------------------------------------------
    # Window-local neighborhood
    # ------------------------------------------------------------------
    def neighborhood(self, edge: Edge,
                     exclude_entry: Optional[int] = None) -> Set[int]:
        """``N(u) ∪ N(v)`` computed from window edges only (paper §III-C)."""
        exclude_slot = (self._slot_of.get(exclude_entry)
                        if exclude_entry is not None else None)
        return self._slot_neighborhood(edge.u, edge.v, exclude_slot)

    def _slot_neighborhood(self, u: int, v: int,
                           exclude_slot: Optional[int]) -> Set[int]:
        nbrs: Set[int] = set()
        incidence = self._incidence
        edges = self._edges
        for endpoint in (u, v):
            for slot in incidence.get(endpoint, ()):
                if slot == exclude_slot:
                    continue
                other = edges[slot]
                nbrs.add(other.v if other.u == endpoint else other.u)
        nbrs.discard(u)
        nbrs.discard(v)
        return nbrs

    def _nbr_list(self, slot: int) -> List[int]:
        """Cached window-local neighborhood of ``slot`` (self excluded)."""
        cached = self._nbr_cache[slot]
        if cached is not None:
            return cached
        edge = self._edges[slot]
        nbrs = list(self._slot_neighborhood(edge.u, edge.v, slot))
        self._nbr_cache[slot] = nbrs
        return nbrs

    def _touch_vertex(self, vertex: int) -> None:
        """Window membership at ``vertex`` changed: push-clear the
        neighborhood and clustering memos of its incident slots."""
        nbr_cache = self._nbr_cache
        cs_valid = self._cs_valid
        for slot in self._incidence.get(vertex, ()):
            nbr_cache[slot] = None
            cs_valid[slot] = False

    def _degrees_moved(self, edge: Edge) -> None:
        """Push-invalidate replication memos after ``edge`` was observed.

        Observing an edge bumps its endpoints' degrees (shifting their Ψ),
        and may raise the global max degree (shifting every Ψ).  Called by
        the add paths right after the observe hook — the only place the
        streaming protocol mutates the degree table mid-stream.
        """
        state = self.scoring.state
        if state.max_degree != self._last_max_degree:
            self._rep_valid = [False] * self._capacity
            self._last_max_degree = state.max_degree
            return
        incidence = self._incidence
        rep_valid = self._rep_valid
        for endpoint in (edge.u, edge.v):
            for slot in incidence.get(endpoint, ()):
                rep_valid[slot] = False

    # ------------------------------------------------------------------
    # Slot management
    # ------------------------------------------------------------------
    def _alloc(self) -> int:
        if not self._free:
            self._resize(self._capacity * 2)
        return self._free.pop()

    def _resize(self, capacity: int) -> None:
        """Grow the slot arrays to ``capacity`` (must exceed current)."""
        old = self._capacity
        k = self._rep.shape[1]

        def grown(array, fill):
            out = np.full(capacity, fill, dtype=array.dtype)
            out[:old] = array
            return out

        def grown2(matrix):
            out = np.zeros((capacity, k), dtype=matrix.dtype)
            out[:old] = matrix
            return out

        self._score = grown(self._score, 0.0)
        self._partition = grown(self._partition, 0)
        self._entry = grown(self._entry, -1)
        self._slot_version = grown(self._slot_version, -1)
        self._candidate = grown(self._candidate, False)
        self._alive = grown(self._alive, False)
        self._rep = grown2(self._rep)
        self._cs = grown2(self._cs)
        extra = capacity - old
        self._edges.extend([None] * extra)
        self._rep_valid.extend([False] * extra)
        self._cs_valid.extend([False] * extra)
        self._nbr_cache.extend([None] * extra)
        self._free.extend(range(capacity - 1, old - 1, -1))
        self._capacity = capacity

    def _compact(self) -> None:
        """Repack live slots at the front and shrink the arrays.

        Entry ids are preserved; only slot numbers change, which is
        invisible to the traversal semantics (all ordering is by entry
        id).  Runs after the adaptive controller shrinks the window far
        below the grown capacity.  Component memos are carried over —
        their validity keys do not involve slot numbers.
        """
        live = self._sorted_slots()
        count = len(live)
        capacity = _MIN_CAPACITY
        while capacity < count * 2:
            capacity *= 2
        k = self._rep.shape[1]
        score = np.zeros(capacity, dtype=np.float64)
        partition = np.zeros(capacity, dtype=np.int64)
        entry = np.full(capacity, -1, dtype=np.int64)
        version = np.full(capacity, -1, dtype=np.int64)
        candidate = np.zeros(capacity, dtype=bool)
        alive = np.zeros(capacity, dtype=bool)
        rep = np.zeros((capacity, k), dtype=np.float64)
        cs = np.zeros((capacity, k), dtype=np.float64)
        score[:count] = self._score[live]
        partition[:count] = self._partition[live]
        entry[:count] = self._entry[live]
        version[:count] = self._slot_version[live]
        candidate[:count] = self._candidate[live]
        alive[:count] = True
        rep[:count] = self._rep[live]
        cs[:count] = self._cs[live]
        live_list = live.tolist()
        edges: List[Optional[Edge]] = [None] * capacity
        rep_valid = [False] * capacity
        cs_valid = [False] * capacity
        nbr_cache: List[Optional[List[int]]] = [None] * capacity
        for new_slot, old_slot in enumerate(live_list):
            edges[new_slot] = self._edges[old_slot]
            rep_valid[new_slot] = self._rep_valid[old_slot]
            cs_valid[new_slot] = self._cs_valid[old_slot]
            nbr_cache[new_slot] = self._nbr_cache[old_slot]
        self._score, self._partition = score, partition
        self._entry, self._slot_version = entry, version
        self._candidate, self._alive = candidate, alive
        self._rep, self._cs = rep, cs
        self._edges = edges
        self._rep_valid = rep_valid
        self._cs_valid = cs_valid
        self._nbr_cache = nbr_cache
        self._capacity = capacity
        self._free = list(range(capacity - 1, count - 1, -1))
        self._slot_of = {int(entry[s]): s for s in range(count)}
        incidence: Dict[int, Set[int]] = {}
        for slot in range(count):
            edge = edges[slot]
            for endpoint in (edge.u, edge.v):
                incidence.setdefault(endpoint, set()).add(slot)
        self._incidence = incidence

    def _sorted_slots(self, candidate: Optional[bool] = None) -> np.ndarray:
        """Live slots in ascending entry-id order, optionally filtered."""
        if candidate is True:
            # The candidate mask is only ever set on live slots.
            slots = np.flatnonzero(self._candidate)
        elif candidate is False:
            slots = np.flatnonzero(self._alive & ~self._candidate)
        else:
            slots = np.flatnonzero(self._alive)
        if slots.size > 1:
            slots = slots[np.argsort(self._entry[slots])]
        return slots

    # ------------------------------------------------------------------
    # Batched rescoring over the component memos
    # ------------------------------------------------------------------
    def _rescore_slots(self, slots: np.ndarray) -> np.ndarray:
        """Rescore ``slots`` (entry-id order); return the new best scores.

        Recomputes only invalidated R/CS components (one batched kernel
        call each), assembles all totals as broadcast matrix adds, and
        updates the per-slot caches and the score sum in the given order
        — the same sequence of scalar float additions the object window
        performs.  Charges ``k`` score computations per slot, like the
        object window's per-entry ``score_all`` calls.
        """
        scoring = self.scoring
        state = scoring.state
        if scoring.clock is not None:
            scoring.clock.charge_score(len(slots) * state.num_partitions)
        if state.max_degree != self._last_max_degree:
            # Ψ is normalised by the global max degree: a new maximum
            # shifts every replication component.
            self._rep_valid = [False] * self._capacity
            self._last_max_degree = state.max_degree
        edges = self._edges
        rep_valid = self._rep_valid
        slot_list = slots.tolist()
        dirty_rep: List[int] = []
        rep_us: List[int] = []
        rep_vs: List[int] = []
        for slot in slot_list:
            if not rep_valid[slot]:
                edge = edges[slot]
                dirty_rep.append(slot)
                rep_us.append(edge.u)
                rep_vs.append(edge.v)
        self.stat_rescored_slots += len(slot_list)
        self.stat_rep_recomputed += len(dirty_rep)
        if dirty_rep:
            self._rep[dirty_rep] = scoring.replication_batch(rep_us, rep_vs)
            for slot in dirty_rep:
                rep_valid[slot] = True
        if scoring.use_clustering:
            cs_valid = self._cs_valid
            dirty_cs: List[int] = []
            cs_concat: List[int] = []
            cs_counts: List[int] = []
            for slot in slot_list:
                if cs_valid[slot]:
                    continue
                nbrs = self._nbr_list(slot)
                dirty_cs.append(slot)
                cs_counts.append(len(nbrs))
                cs_concat.extend(nbrs)
            self.stat_cs_recomputed += len(dirty_cs)
            if dirty_cs:
                self._cs[dirty_cs] = scoring.clustering_batch(
                    cs_concat, np.asarray(cs_counts, dtype=np.int64))
                for slot in dirty_cs:
                    cs_valid[slot] = True
            # total = (λ·B + R) + CS in the single-edge kernel's order;
            # all-zero CS rows (empty neighborhoods) add exactly 0.0.
            totals = scoring._lambda_balance() + self._rep[slots]
            totals += self._cs[slots]
        else:
            totals = scoring._lambda_balance() + self._rep[slots]
        best_columns = totals.argmax(axis=1)
        best_scores = totals.max(axis=1)
        old_scores = self._score[slots].tolist()
        # The score sum is accumulated slot-by-slot in entry order — the
        # same sequence of scalar additions the object window performs.
        score_sum = self._score_sum
        for i, new_score in enumerate(best_scores.tolist()):
            score_sum += new_score - old_scores[i]
        self._score_sum = score_sum
        self._score[slots] = best_scores
        self._partition[slots] = self._partition_ids[best_columns]
        self._slot_version[slots] = self._version
        return best_scores

    # ------------------------------------------------------------------
    # Serialization (session snapshot boundary)
    # ------------------------------------------------------------------
    def to_image(self):
        """Capture the traversal state verbatim as a
        :class:`~repro.core.window.WindowImage` (component memos are
        rebuilt on restore — they only ever hold values a fresh
        computation would produce, so dropping them is invisible)."""
        from repro.core.window import WindowImage

        entries = []
        for slot in self._sorted_slots().tolist():
            edge = self._edges[slot]
            entries.append((int(self._entry[slot]), edge.u, edge.v,
                            float(self._score[slot]),
                            int(self._partition[slot]),
                            int(self._slot_version[slot]),
                            bool(self._candidate[slot])))
        return WindowImage(
            entries=entries,
            next_id=self._next_id,
            score_sum=self._score_sum,
            version=self._version,
            promotions=self.promotions,
        )

    @classmethod
    def from_image(cls, scoring: AdwiseScoring, image,
                   lazy: bool = True, epsilon: float = 0.1,
                   max_candidates: int = 64,
                   initial_capacity: int = _MIN_CAPACITY
                   ) -> "ArrayEdgeWindow":
        """Rebuild a window from an image; continues bit-identically."""
        new = cls(scoring, lazy=lazy, epsilon=epsilon,
                  max_candidates=max_candidates,
                  initial_capacity=max(initial_capacity,
                                       2 * len(image.entries)))
        for entry_id, u, v, score, partition, version, candidate in \
                image.entries:
            edge = Edge(u, v)
            slot = new._alloc()
            new._edges[slot] = edge
            new._entry[slot] = entry_id
            new._score[slot] = score
            new._partition[slot] = partition
            new._slot_version[slot] = version
            new._candidate[slot] = candidate
            new._alive[slot] = True
            new._slot_of[entry_id] = slot
            for endpoint in (edge.u, edge.v):
                new._incidence.setdefault(endpoint, set()).add(slot)
            new._count += 1
            if candidate:
                new._num_candidates += 1
        new._next_id = image.next_id
        new._score_sum = image.score_sum
        new._version = image.version
        new.promotions = image.promotions
        return new

    # ------------------------------------------------------------------
    # Migration (hybrid window engine)
    # ------------------------------------------------------------------
    @classmethod
    def from_object_window(cls, window, initial_capacity: int = _MIN_CAPACITY
                           ) -> "ArrayEdgeWindow":
        """Adopt an :class:`~repro.core.window.EdgeWindow`'s exact state.

        The hybrid ``auto`` backend runs the object window while ``w`` is
        small (slot arrays have no leverage there) and migrates here once
        the adaptive controller grows past the batching threshold.  Every
        piece of traversal state is copied verbatim — entry ids, cached
        (score, partition, version) triples, candidate membership, the
        float score sum with its accumulation history, the pop version,
        and the promotion counter — so the migrated window continues
        bit-identically; component memos start invalid and refill with
        values a fresh computation would produce anyway.
        """
        new = cls(window.scoring, lazy=window.lazy, epsilon=window.epsilon,
                  max_candidates=window.max_candidates,
                  initial_capacity=max(initial_capacity, 2 * len(window)))
        for entry_id in sorted(window._entries):
            entry = window._entries[entry_id]
            edge = entry.edge
            slot = new._alloc()
            new._edges[slot] = edge
            new._entry[slot] = entry_id
            new._score[slot] = entry.best_score
            new._partition[slot] = entry.best_partition
            new._slot_version[slot] = entry.version
            new._candidate[slot] = entry.candidate
            new._alive[slot] = True
            new._slot_of[entry_id] = slot
            for endpoint in (edge.u, edge.v):
                new._incidence.setdefault(endpoint, set()).add(slot)
            new._count += 1
            if entry.candidate:
                new._num_candidates += 1
        new._next_id = window._next_id
        new._score_sum = window._score_sum
        new._version = window._version
        new.promotions = window.promotions
        new.stat_refills = getattr(window, "stat_refills", 0)
        new.stat_pops = getattr(window, "stat_pops", 0)
        return new

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, edge: Edge) -> int:
        """Insert ``edge``; score it once and classify it; return entry id."""
        return self.add_block([edge])[0]

    def add_block(self, edges: Sequence[Edge],
                  observe: Optional[Callable[[Edge], None]] = None
                  ) -> List[int]:
        """Rule 1 for a whole refill block in one kernel call.

        Replays the object window's sequential semantics exactly: edge
        ``i``'s Ψ normalisations are captured right after it is observed
        (before later block edges touch the degree table), its
        neighborhood sees only earlier entries, and classification walks
        the block in order against the evolving threshold and candidate
        cap.  Only the ``k``-partition scoring itself is batched.
        """
        n = len(edges)
        if n == 0:
            return []
        if n == 1:
            return [self._add_one(edges[0], observe)]
        self.stat_refills += n
        state = self.scoring.state
        degree_of = state.degree_of
        slot_list: List[int] = []
        us: List[int] = []
        vs: List[int] = []
        psi_u = np.zeros(n, dtype=np.float64)
        psi_v = np.zeros(n, dtype=np.float64)
        nbr_concat: List[int] = []
        count_list: List[int] = []
        ids: List[int] = []
        count_before = self._count
        for i, edge in enumerate(edges):
            if observe is not None:
                observe(edge)
            self._degrees_moved(edge)
            denominator = 2.0 * max(1, state.max_degree)
            psi_u[i] = degree_of(edge.u) / denominator
            psi_v[i] = degree_of(edge.v) / denominator
            nbrs = self._slot_neighborhood(edge.u, edge.v, None)
            count_list.append(len(nbrs))
            nbr_concat.extend(nbrs)
            us.append(edge.u)
            vs.append(edge.v)
            slot = self._alloc()
            slot_list.append(slot)
            entry_id = self._next_id
            self._next_id += 1
            ids.append(entry_id)
            self._edges[slot] = edge
            self._entry[slot] = entry_id
            self._slot_version[slot] = -1
            self._candidate[slot] = False
            self._alive[slot] = True
            # Block scores are computed against mid-block snapshots (the
            # captured Ψ, the partial incidence), so they are not valid
            # component memos; the first rescore recomputes them.
            self._rep_valid[slot] = False
            self._cs_valid[slot] = False
            self._slot_of[entry_id] = slot
            for endpoint in (edge.u, edge.v):
                self._touch_vertex(endpoint)
                self._incidence.setdefault(endpoint, set()).add(slot)
            self._count += 1
        scores = self.scoring.score_batch(
            us, vs, nbr_concat, np.asarray(count_list, dtype=np.int64),
            psi_u=psi_u, psi_v=psi_v)
        best_columns = scores.argmax(axis=1)
        best_scores = scores.max(axis=1)
        slots = np.asarray(slot_list, dtype=np.int64)
        self._score[slots] = best_scores
        self._partition[slots] = self._partition_ids[best_columns]
        self._slot_version[slots] = self._version
        score_list = best_scores.tolist()
        lazy = self.lazy
        epsilon = self.epsilon
        for i in range(n):
            slot = slot_list[i]
            score = score_list[i]
            self._score_sum += score
            # Threshold as the object window saw it mid-block: entries
            # i+1.. are not part of the average yet.
            entries_so_far = count_before + i + 1
            should_be_candidate = (
                not lazy
                or (score > self._score_sum / entries_so_far + epsilon
                    and self._num_candidates < self.max_candidates))
            if should_be_candidate:
                self._candidate[slot] = True
                self._num_candidates += 1
        return ids

    def _add_one(self, edge: Edge,
                 observe: Optional[Callable[[Edge], None]]) -> int:
        """Steady-state refill: one edge, components computed and memoized.

        Mirrors :meth:`AdwiseScoring.score_all` operation-for-operation
        (the Ψ capture is the live degree table when the block is one
        edge) and seeds the slot's component memos with the freshly
        computed R/CS vectors.
        """
        self.stat_refills += 1
        if observe is not None:
            observe(edge)
        scoring = self.scoring
        state = scoring.state
        self._degrees_moved(edge)
        if scoring.clock is not None:
            scoring.clock.charge_score(state.num_partitions)
        row_u, row_v = state.replica_rows_pair(edge.u, edge.v)
        rep = (row_u * (2.0 - scoring.psi(edge.u))
               + row_v * (2.0 - scoring.psi(edge.v)))
        total = scoring._lambda_balance() + rep
        nbrs = self._slot_neighborhood(edge.u, edge.v, None)
        use_clustering = scoring.use_clustering
        cs = None
        nbr_list = list(nbrs)
        if use_clustering and nbr_list:
            cs = state.replica_hits(nbr_list) / len(nbr_list)
            total += cs
        column = int(total.argmax())
        score = float(total[column])
        partition = state.partitions[column]
        slot = self._alloc()
        entry_id = self._next_id
        self._next_id += 1
        self._edges[slot] = edge
        self._entry[slot] = entry_id
        self._score[slot] = score
        self._partition[slot] = partition
        self._slot_version[slot] = self._version
        self._candidate[slot] = False
        self._alive[slot] = True
        self._slot_of[entry_id] = slot
        self._rep[slot] = rep
        self._rep_valid[slot] = True
        for endpoint in (edge.u, edge.v):
            # Touch before inserting: the new slot's own memos (set below)
            # must survive its own insertion.
            self._touch_vertex(endpoint)
            self._incidence.setdefault(endpoint, set()).add(slot)
        if use_clustering:
            if cs is not None:
                self._cs[slot] = cs
            else:
                self._cs[slot] = 0.0
            self._cs_valid[slot] = True
        self._nbr_cache[slot] = nbr_list
        self._count += 1
        self._score_sum += score
        if (not self.lazy
                or (score > self._score_sum / self._count + self.epsilon
                    and self._num_candidates < self.max_candidates)):
            self._candidate[slot] = True
            self._num_candidates += 1
        return entry_id

    def _remove_slot(self, slot: int) -> None:
        self._score_sum -= float(self._score[slot])
        if self._candidate[slot]:
            self._candidate[slot] = False
            self._num_candidates -= 1
        self._alive[slot] = False
        edge = self._edges[slot]
        for endpoint in (edge.u, edge.v):
            incident = self._incidence.get(endpoint)
            if incident is not None:
                incident.discard(slot)
                if not incident:
                    del self._incidence[endpoint]
                else:
                    self._touch_vertex(endpoint)
        self._edges[slot] = None
        self._nbr_cache[slot] = None
        self._rep_valid[slot] = False
        self._cs_valid[slot] = False
        del self._slot_of[int(self._entry[slot])]
        self._entry[slot] = -1
        self._count -= 1
        self._free.append(slot)
        if (self._capacity > _MIN_CAPACITY
                and self._count * 4 <= self._capacity):
            self._compact()

    def _rescore_secondary(self) -> None:
        """Rule 2: candidate set empty → rescore Q, promote above-Θ edges."""
        if self._count == self._num_candidates:
            return
        slots = self._sorted_slots(candidate=False)
        scores = self._rescore_slots(slots)
        threshold = self.threshold
        above = slots[scores > threshold]
        if above.size == 0:
            # Fallback (uniform scores): promote the best few; ties break
            # toward the oldest entry, like the object window's ranking.
            order = np.lexsort((self._entry[slots], -scores))
            above = slots[order[:max(1, len(slots) // 8)]]
        for slot in above[:self.max_candidates].tolist():
            self._candidate[slot] = True
            self._num_candidates += 1
            self.promotions += 1

    def pop_best(self) -> Tuple[Edge, int, float]:
        """Remove and return the best (edge, partition, score) assignment.

        Stale candidate caches (an assignment happened since they were
        computed) are refreshed through the batched component path; fresh
        caches are reused — the lazy saving.  Ties break toward the
        lowest entry id, matching the object window's ordered scan.
        """
        if self._count == 0:
            raise IndexError("pop_best from an empty window")
        self.stat_pops += 1
        if self._num_candidates == 0:
            self._rescore_secondary()
        slots = self._sorted_slots(candidate=True)
        if slots.size == 0:  # pragma: no cover - guarded by the invariant
            raise RuntimeError("window invariant violated: no candidates "
                               "after rule-2 rescoring of a non-empty window")
        stale = slots[self._slot_version[slots] != self._version]
        if stale.size:
            self._rescore_slots(stale)
        scores = self._score[slots]
        best = int(scores.argmax())
        best_slot = int(slots[best])
        best_score = float(scores[best])
        best_partition = int(self._partition[best_slot])
        edge = self._edges[best_slot]
        self._remove_slot(best_slot)
        # The caller assigns this edge next, which shifts balance scores;
        # all remaining caches become stale.
        self._version += 1
        return edge, best_partition, best_score

    def on_replicas_changed(self, vertices: Iterable[int]) -> int:
        """Rule 3: reassess secondary edges touching changed replica sets.

        Also drives the component-memo push invalidation: replication
        memos of slots incident to a changed vertex (one hop) and
        clustering memos of slots that can see it as a window neighbor
        (two hops) are dropped.  Returns the number of secondary edges
        promoted to the candidate set.
        """
        touched: Set[int] = set()
        incidence = self._incidence
        edges = self._edges
        rep_valid = self._rep_valid
        cs_valid = self._cs_valid
        use_clustering = self.scoring.use_clustering
        for vertex in vertices:
            incident = incidence.get(vertex)
            if not incident:
                continue
            touched.update(incident)
            for slot in incident:
                rep_valid[slot] = False
            if use_clustering:
                # Two hops: slots that can see ``vertex`` as a window
                # neighbor share an endpoint with one of its edges.  The
                # endpoints are deduplicated first — hubs appear in most
                # incident edges and would be swept repeatedly otherwise.
                endpoints: Set[int] = set()
                for slot in incident:
                    edge = edges[slot]
                    endpoints.add(edge.u)
                    endpoints.add(edge.v)
                for endpoint in endpoints:
                    for two_hop in incidence.get(endpoint, ()):
                        cs_valid[two_hop] = False
        if not self.lazy:
            return 0
        if not touched:
            return 0
        slots = np.fromiter(touched, dtype=np.int64, count=len(touched))
        secondary = self._alive[slots] & ~self._candidate[slots]
        slots = slots[secondary]
        if slots.size == 0:
            return 0
        if slots.size > 1:
            slots = slots[np.argsort(self._entry[slots])]
        threshold = self.threshold  # snapshot, like the object window
        scores = self._rescore_slots(slots)
        promoted = 0
        for i, slot in enumerate(slots.tolist()):
            if (scores[i] > threshold
                    and self._num_candidates < self.max_candidates):
                self._candidate[slot] = True
                self._num_candidates += 1
                promoted += 1
                self.promotions += 1
        return promoted
