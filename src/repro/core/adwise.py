"""The ADWISE partitioner: Algorithm 1 of the paper, fully assembled.

Wires together the four mechanisms:

* the :class:`~repro.core.window.EdgeWindow` (edge universe of ``w`` edges,
  with lazy candidate traversal),
* the :class:`~repro.core.adaptive.AdaptiveWindowController` (grow / keep /
  shrink on conditions C1 and C2 against the latency preference ``L``),
* the :class:`~repro.core.scoring.AdwiseScoring` function
  ``g(e,p) = λ(ι,α)·B(p) + R(e,p) + CS(e,p)``,
* spotlight support by construction: the partitioner only ever fills the
  partitions of its :class:`~repro.partitioning.state.PartitionState`.

Main loop (Algorithm 1): refill the window to ``w`` edges from the stream,
pop the best (edge, partition) pair, assign it, adapt λ and (every ``w``
assignments) the window size.

The loop is driven incrementally: :meth:`AdwisePartitioner.ingest`
buffers arriving edges and advances Algorithm 1 exactly as far as a
batch run with the same prefix could have — the window refills to the
controller's target ``w`` and edges are popped only while it is full
(more stream may still arrive), with :meth:`AdwisePartitioner.finalize`
supplying the end-of-stream drain.  Any chunking of a stream through
``ingest`` is therefore bit-identical to :meth:`partition_stream` on the
whole stream (both windows' ``add_block`` is equivalent to sequential
adds, so refill-block boundaries don't matter).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro import obs
from repro.graph.graph import Edge
from repro.graph.stream import EdgeStream
from repro.core.adaptive import (
    AdaptiveWindowController,
    FixedWindowController,
)
from repro.core.scoring import AdaptiveBalancer, AdwiseScoring
from repro.core.window import EdgeWindow
from repro.partitioning.base import (
    Assignment,
    PartitionResult,
    StreamingPartitioner,
)
from repro.partitioning.state import PartitionState
from repro.simtime import Clock

#: Valid values of ``AdwisePartitioner(window_backend=...)``.
WINDOW_BACKENDS = ("auto", "array", "object")

#: Window size at which the ``auto`` backend switches from the object
#: window to the struct-of-arrays window when the array window runs on
#: the *numpy* kernel fallback.  Below this the per-slot array machinery
#: costs more than it batches (measured crossover ~w=32 on the power-law
#: workload); at and above it the batched kernels win outright.
ARRAY_WINDOW_MIN_SIZE = 32

#: The same switch point when a native kernel backend (compiled C or
#: numba — see DESIGN.md §14) is available: the fused add/pop kernels
#: have far lower per-edge constants than the vectorised fallback, so
#: the array window already wins on small windows.
ARRAY_WINDOW_MIN_SIZE_NATIVE = 8


def _array_window_min_size() -> int:
    """The auto-tier threshold for the resolved kernel backend."""
    from repro.core import _kernels

    if _kernels.resolve_backend_name() in ("cc", "numba"):
        return ARRAY_WINDOW_MIN_SIZE_NATIVE
    return ARRAY_WINDOW_MIN_SIZE


class AdwisePartitioner(StreamingPartitioner):
    """Adaptive window-based streaming edge partitioner.

    Parameters
    ----------
    partitions:
        Partition ids this instance fills (its spotlight spread).
    latency_preference_ms:
        The latency preference ``L``.  ``None`` lets the window grow while
        quality improves; ``0`` forces single-edge behaviour.
    use_clustering:
        Enable the clustering score CS (disable on weakly clustered graphs,
        as the paper does for Orkut).
    lazy:
        Enable lazy window traversal (candidate/secondary sets).
    fixed_window:
        If set, disables adaptation and pins ``w`` (ablation mode).
    epsilon:
        ε of the candidate threshold ``Θ = g_avg + ε``.
    initial_lambda:
        Starting value of the adaptive balancing weight λ.
    max_window:
        Upper bound on ``w`` (memory guard).
    fast:
        Back the partitioner with an array-backed
        :class:`~repro.partitioning.fast_state.FastPartitionState` so all
        window scoring goes through the batched ``score_all`` kernel.
        Produces bit-identical assignments to the legacy path.
    window_backend:
        ``"auto"`` (default) picks per window size on a fast state: the
        struct-of-arrays :class:`~repro.core.array_window.ArrayEdgeWindow`
        for fixed windows of at least the kernel-tiered threshold
        (:data:`ARRAY_WINDOW_MIN_SIZE_NATIVE` with a compiled kernel
        backend, :data:`ARRAY_WINDOW_MIN_SIZE` on the numpy fallback),
        the dict-of-objects :class:`~repro.core.window.EdgeWindow` for
        small windows, and — for adaptive windows — a hybrid that starts
        on the object window and migrates (state copied verbatim) once
        the controller grows past the threshold.  ``"array"`` and ``"object"``
        force one implementation (the array window requires a fast
        state).  All backends produce bit-identical results — the object
        window is the differential reference.
    """

    name = "ADWISE"

    def __init__(self, partitions: Sequence[int],
                 latency_preference_ms: Optional[float] = None,
                 clock: Optional[Clock] = None,
                 state: Optional[PartitionState] = None,
                 use_clustering: bool = True,
                 lazy: bool = True,
                 fixed_window: Optional[int] = None,
                 epsilon: float = 0.1,
                 initial_lambda: float = 1.0,
                 adaptive_lambda: bool = True,
                 min_window: int = 1,
                 max_window: int = 16384,
                 max_candidates: int = 64,
                 fast: bool = False,
                 window_backend: str = "auto") -> None:
        super().__init__(partitions, clock=clock, state=state, fast=fast)
        if window_backend not in WINDOW_BACKENDS:
            raise ValueError(f"window_backend must be one of "
                             f"{WINDOW_BACKENDS}, got {window_backend!r}")
        self.latency_preference_ms = latency_preference_ms
        self.use_clustering = use_clustering
        self.lazy = lazy
        self.fixed_window = fixed_window
        self.epsilon = epsilon
        self.initial_lambda = initial_lambda
        self.adaptive_lambda = adaptive_lambda
        self.min_window = min_window
        self.max_window = max_window
        self.max_candidates = max_candidates
        self.window_backend = window_backend
        self.controller = None  # populated per stream
        self.window = None  # populated per stream
        self.scoring: Optional[AdwiseScoring] = None
        self._edge_scoring: Optional[AdwiseScoring] = None
        self._pending: List[Edge] = []

    # ------------------------------------------------------------------
    # StreamingPartitioner contract
    # ------------------------------------------------------------------
    def select_partition(self, edge: Edge) -> int:
        """Single-edge fallback (used only if someone drives edge-by-edge).

        The scoring function is cached on the instance — rebuilding it per
        edge was pure allocation overhead (its balancer only ever adapts
        through ``after_assignment``, which this path never calls, so a
        cached instance scores identically to a fresh one).  The cache is
        invalidated when ``state`` or ``clock`` is swapped out, as batch
        drivers that use partitioners as policies do between batches.
        """
        scoring = self._edge_scoring
        if (scoring is None or scoring.state is not self.state
                or scoring.clock is not self.clock):
            scoring = self._make_scoring(total_edges=0)
            self._edge_scoring = scoring
        _, best_partition = scoring.best(edge, ())
        return best_partition

    def _make_scoring(self, total_edges: int) -> AdwiseScoring:
        balancer = (AdaptiveBalancer(total_edges, self.initial_lambda)
                    if self.adaptive_lambda else None)
        return AdwiseScoring(
            self.state,
            balancer=balancer,
            use_clustering=self.use_clustering,
            fixed_lambda=self.initial_lambda,
            clock=self.clock,
        )

    def _make_window(self, scoring: AdwiseScoring):
        """Build the window backend for this stream (see ``window_backend``).

        ``auto`` on a fast state is a hybrid: a fixed window of at least
        :data:`ARRAY_WINDOW_MIN_SIZE` starts on the array window
        directly; an adaptive (or small fixed) window starts on the
        object window, and the main loop migrates to the array window —
        state copied verbatim, so assignments stay bit-identical — once
        the controller grows ``w`` past the threshold.
        """
        backend = self.window_backend
        self._migrate_at: Optional[int] = None
        if backend == "auto":
            fast = getattr(self.state, "is_fast", False)
            min_size = _array_window_min_size()
            if not fast:
                backend = "object"
            elif (self.fixed_window is not None
                    and self.fixed_window >= min_size):
                backend = "array"
            else:
                backend = "object"
                if (self.fixed_window is None
                        and self.max_window >= min_size):
                    self._migrate_at = min_size
        if backend == "array":
            from repro.core.array_window import ArrayEdgeWindow

            initial = self.fixed_window or self.min_window
            return ArrayEdgeWindow(scoring, lazy=self.lazy,
                                   epsilon=self.epsilon,
                                   max_candidates=self.max_candidates,
                                   initial_capacity=min(self.max_window,
                                                        2 * initial))
        return EdgeWindow(scoring, lazy=self.lazy, epsilon=self.epsilon,
                          max_candidates=self.max_candidates)

    # ------------------------------------------------------------------
    # Incremental ingestion protocol (Algorithm 1, resumable)
    # ------------------------------------------------------------------
    def begin(self, total_edges: int = 0) -> None:
        """Open a stream: build scoring, window and controller.

        ``total_edges = 0`` (unknown length — live sessions) disables the
        controller's end-of-stream special case and makes condition C2
        vacuous once no remaining-edge estimate exists; batch runs pass
        the stream length and reproduce the paper's budgeting exactly.
        """
        super().begin(total_edges)
        self.scoring = self._make_scoring(total_edges)
        self.window = self._make_window(self.scoring)
        if self.fixed_window is not None:
            self.controller = FixedWindowController(self.fixed_window)
        else:
            self.controller = AdaptiveWindowController(
                self.latency_preference_ms,
                total_edges=total_edges,
                start_ms=self._start_ms,
                min_window=self.min_window,
                max_window=self.max_window,
            )
        self._pending = []

    def ingest(self, edges: Iterable[Edge]) -> List[Assignment]:
        """Buffer arriving edges and advance Algorithm 1 as far as the
        buffered prefix allows; return the assignments popped.

        Edges the window cannot yet admit (the refill target is the
        controller's current ``w``) stay in the pending buffer, and the
        window never pops while under-filled — a batch run would have
        refilled it from the rest of the stream first.
        """
        if not self._streaming:
            self.begin()
        pending = self._pending
        added = 0
        for edge in edges:
            pending.append(edge.canonical())
            added += 1
        with obs.span("partition.ingest", algorithm=self.name):
            out = self._pump(force=False)
        obs.counter("repro_partition_edges_total",
                    algorithm=self.name).inc(added)
        obs.counter("repro_partition_batches_total",
                    algorithm=self.name).inc()
        return out

    def finalize(self) -> PartitionResult:
        """End of stream: drain the pending buffer and the window."""
        if not self._streaming:
            self.begin()
        with obs.span("partition.finalize", algorithm=self.name):
            self._pump(force=True)
        result = super().finalize()
        result.extras["max_window"] = float(self.controller.max_window_reached)
        result.extras["final_window"] = float(self.controller.window_size)
        result.extras["promotions"] = float(self.window.promotions)
        if self.scoring.balancer is not None:
            result.extras["final_lambda"] = self.scoring.balancer.value
        return result

    def _publish_observability(self, result: PartitionResult) -> None:
        """Base series plus window-engine tallies and memo hit-rates."""
        super()._publish_observability(result)
        if not obs.is_enabled():
            return
        window = self.window
        backend = type(window).__name__
        labels = {"algorithm": self.name, "backend": backend}
        obs.counter("repro_window_refills_total",
                    **labels).inc(getattr(window, "stat_refills", 0))
        obs.counter("repro_window_pops_total",
                    **labels).inc(getattr(window, "stat_pops", 0))
        obs.counter("repro_window_promotions_total",
                    **labels).inc(getattr(window, "promotions", 0))
        rescored = getattr(window, "stat_rescored_slots", 0)
        obs.counter("repro_window_rescored_slots_total",
                    **labels).inc(rescored)
        for component, recomputed in (
                ("replication", getattr(window, "stat_rep_recomputed", 0)),
                ("clustering", getattr(window, "stat_cs_recomputed", 0))):
            obs.counter("repro_window_memo_misses_total", component=component,
                        **labels).inc(recomputed)
            if rescored:
                obs.gauge("repro_window_memo_hit_rate", component=component,
                          **labels).set(1.0 - recomputed / rescored)
        kernel = getattr(window, "kernel_backend", None)
        if kernel is not None:  # k-best agenda tallies (array window only)
            heap_labels = dict(labels, kernel=kernel)
            for op, tally in (
                    ("push", getattr(window, "stat_heap_pushes", 0)),
                    ("remove", getattr(window, "stat_heap_removes", 0)),
                    ("reheap", getattr(window, "stat_reheaps", 0))):
                obs.counter("repro_window_agenda_ops_total", op=op,
                            **heap_labels).inc(tally)
        if self.controller is not None:
            obs.gauge("repro_window_size",
                      algorithm=self.name).set(self.controller.window_size)
            obs.gauge("repro_window_max_size_reached", algorithm=self.name
                      ).set(self.controller.max_window_reached)

    def _pump(self, force: bool) -> List[Assignment]:
        """Refill → pop → adapt until input runs out (Algorithm 1).

        With ``force`` the pending buffer is the whole rest of the stream
        (finalize / end of batch): the window drains even under-filled,
        exactly the exhausted-stream behaviour of a batch run.
        """
        out: List[Assignment] = []
        window = self.window
        pending = self._pending
        controller = self.controller
        state = self.state
        clock = self.clock
        scoring = self.scoring
        assignments = self._assignments
        observe = state.observe_degrees
        while True:
            # Refill the window up to the current target size w; the block
            # is taken in one slice so the array window can score it
            # through one batched kernel call (degrees are observed inside
            # add_block, edge by edge, preserving single-add semantics).
            need = controller.window_size - len(window)
            if need > 0 and pending:
                block = pending[:need]
                del pending[:len(block)]
                window.add_block(block, observe=observe)
                need -= len(block)
            if len(window) == 0:
                break
            if need > 0 and not force:
                # Under-filled and more stream may arrive: a batch run
                # would have kept refilling before popping.
                break
            edge, partition, score = window.pop_best()
            changed = state.assign(edge, partition)
            clock.charge_assignment()
            assignments[edge] = partition
            out.append(Assignment(edge, partition))
            scoring.after_assignment()
            if changed:
                # Rule 3 with no changed replica sets touches nothing in
                # either window engine (no rescores, no promotions, no
                # charges) — skip the call on the hot path.
                window.on_replicas_changed(changed)
            controller.record(score, clock.now())
            if (self._migrate_at is not None
                    and controller.window_size >= self._migrate_at):
                # Hybrid switch: the window grew into the regime where
                # the batched array engine wins; adopt the object
                # window's state verbatim (bit-identical continuation).
                from repro.core.array_window import ArrayEdgeWindow

                window = self.window = ArrayEdgeWindow.from_object_window(
                    window, initial_capacity=min(
                        self.max_window, 2 * controller.window_size))
                self._migrate_at = None
        return out

    def partition_stream(self, stream: EdgeStream) -> PartitionResult:
        """Algorithm 1 over a whole stream — batch wrapper over
        ``begin``/``ingest``/``finalize``."""
        self.begin(total_edges=len(stream))
        self.ingest(stream)
        return self.finalize()
