"""Spotlight partitioning: reducing the spread of parallel partitioners.

With ``z`` independent partitioner instances loading chunks of the graph in
parallel, each instance traditionally fills *all* ``k`` partitions (spread =
k).  The paper observes that a large spread forces decisions to be driven by
balancing and destroys stream locality, and proposes giving each instance a
small set of (ideally exclusive) partitions — the *spotlight*.

:func:`spotlight_spreads` generalises the paper's scheme to any spread value
``s``: instance ``i`` receives ``s`` consecutive partitions starting at
offset ``i · k/z`` (wrapping around).  For ``s = k/z`` the sets are exactly
the paper's disjoint spotlights; for ``s = k`` every instance sees every
partition (the behaviour of prior systems); intermediate values interpolate,
which is what Fig. 8 sweeps.
"""

from __future__ import annotations

from typing import List, Sequence


def spotlight_spreads(partitions: Sequence[int], num_instances: int,
                      spread: int) -> List[List[int]]:
    """Partition id lists for each of ``num_instances`` parallel loaders.

    Parameters
    ----------
    partitions:
        The global partition ids (length ``k``).
    num_instances:
        Number of parallel partitioner instances ``z``.
    spread:
        Number of partitions each instance may fill, ``1 <= spread <= k``.

    Returns
    -------
    One id list per instance.  Every global partition is covered by at least
    one instance whenever ``spread >= k / num_instances``.
    """
    k = len(partitions)
    if k == 0:
        raise ValueError("no partitions given")
    if num_instances < 1:
        raise ValueError(f"num_instances must be >= 1, got {num_instances}")
    if not 1 <= spread <= k:
        raise ValueError(f"spread must be in [1, {k}], got {spread}")
    if spread * num_instances < k:
        raise ValueError(
            f"spread {spread} x {num_instances} instances cannot cover "
            f"{k} partitions")
    spreads: List[List[int]] = []
    for instance in range(num_instances):
        # Even offsets guarantee coverage of all k partitions.
        offset = (instance * k) // num_instances
        ids = [partitions[(offset + j) % k] for j in range(spread)]
        spreads.append(ids)
    return spreads
