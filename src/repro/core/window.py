"""The edge window and lazy window traversal (paper §III-B).

The window holds up to ``w`` unassigned edges.  A naive implementation
recomputes ``w × k`` scores per assignment; lazy traversal instead splits
the window into a *candidate set* ``C`` of high-score edges and a
*secondary set* ``Q``, maintaining three rules from the paper:

1. An edge entering the window is scored once; it joins ``C`` if its best
   score exceeds the threshold ``Θ = g_avg + ε``, else ``Q``.
2. If ``C`` is empty, all of ``Q`` is rescored and edges above ``Θ`` are
   promoted (with a fallback promotion of the best edge so the algorithm
   always progresses).
3. When an assignment changes a vertex's replica set, secondary edges
   incident to that vertex are reassessed for promotion.

``Θ`` tracks the running average ``g_avg`` of the best-known scores of all
window edges, so only better-than-average edges count as candidates.

Window entries carry a unique sequence id so duplicate edges in the input
stream are retained as distinct window items.  All traversal loops visit
entries in ascending entry-id order (stream order), so score ties break
toward the oldest edge and the floating-point accumulation of the score
sum is a deterministic function of the stream — the contract the
array-native window (:mod:`repro.core.array_window`) replicates
batch-for-batch to stay bit-identical with this reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph.graph import Edge
from repro.core.scoring import AdwiseScoring


@dataclass
class WindowImage:
    """Verbatim, picklable image of a live window's traversal state.

    The mid-stream serialization boundary of partitioning sessions
    (``repro.api``): every piece of state the traversal semantics depend
    on is captured exactly — entry ids, cached (score, partition,
    version) triples, candidate membership, the float score sum with its
    accumulation history, the pop version and the promotion counter — so
    a window rebuilt from an image continues bit-identically to the live
    one (the same contract as the hybrid backend's
    :meth:`~repro.core.array_window.ArrayEdgeWindow.from_object_window`
    migration).  Both window classes produce and consume the same image,
    so a session may be snapshot on one backend and restored on the
    other.
    """

    #: ``(entry_id, u, v, score, partition, version, candidate)`` rows
    #: in ascending entry-id order.
    entries: List[Tuple[int, int, int, float, int, int, bool]]
    next_id: int
    score_sum: float
    version: int
    promotions: int


@dataclass
class _WindowEntry:
    """One window slot: an edge plus its cached best (score, partition).

    ``version`` records the window's assignment version at which the cache
    was computed; a cache is exact while no assignment happened since
    (balance scores change with every assignment), so pop_best can skip
    recomputation for fresh entries — e.g. right after a refill.
    """

    entry_id: int
    edge: Edge
    best_score: float
    best_partition: int
    candidate: bool = False
    version: int = -1


class EdgeWindow:
    """Fixed-capacity-free edge window with lazy candidate traversal.

    The window has no hard capacity of its own — the partitioner's refill
    loop enforces the current window size ``w`` — so growth/shrink decisions
    by the adaptive controller need no window surgery.

    Parameters
    ----------
    scoring:
        The :class:`AdwiseScoring` instance used for all score computations.
    lazy:
        If False, every edge is a candidate (eager full traversal); used by
        the lazy-vs-eager ablation.
    epsilon:
        The ε in ``Θ = g_avg + ε``; small positive values make the candidate
        filter strictly better-than-average.
    """

    def __init__(self, scoring: AdwiseScoring, lazy: bool = True,
                 epsilon: float = 0.1, max_candidates: int = 64) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        if max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        self.scoring = scoring
        self.lazy = lazy
        self.epsilon = epsilon
        self.max_candidates = max_candidates
        self._entries: Dict[int, _WindowEntry] = {}
        self._candidates: Set[int] = set()
        self._secondary: Set[int] = set()
        self._incidence: Dict[int, Set[int]] = {}
        self._next_id = 0
        self._score_sum = 0.0  # sum of cached best scores (for g_avg)
        self._version = 0  # bumped after each pop (i.e. each assignment)
        #: Secondary→candidate promotions performed by rules 2 and 3.
        self.promotions = 0
        # Observability tallies, mirroring ArrayEdgeWindow's (published
        # to the repro.obs registry at finalize; never part of extras).
        self.stat_refills = 0
        self.stat_pops = 0
        self.stat_rescored_slots = 0
        self.stat_rep_recomputed = 0
        self.stat_cs_recomputed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def candidate_count(self) -> int:
        return len(self._candidates)

    @property
    def secondary_count(self) -> int:
        return len(self._secondary)

    def edges(self) -> List[Edge]:
        return [entry.edge for entry in self._entries.values()]

    @property
    def threshold(self) -> float:
        """Current candidate threshold Θ = g_avg + ε."""
        if not self._entries:
            return self.epsilon
        return self._score_sum / len(self._entries) + self.epsilon

    # ------------------------------------------------------------------
    # Window-local neighborhood (for the clustering score)
    # ------------------------------------------------------------------
    def neighborhood(self, edge: Edge,
                     exclude_entry: Optional[int] = None) -> Set[int]:
        """``N(u) ∪ N(v)`` computed from window edges only (paper §III-C)."""
        nbrs: Set[int] = set()
        for endpoint in (edge.u, edge.v):
            for entry_id in self._incidence.get(endpoint, ()):
                if entry_id == exclude_entry:
                    continue
                other = self._entries[entry_id].edge.other(endpoint)
                nbrs.add(other)
        nbrs.discard(edge.u)
        nbrs.discard(edge.v)
        return nbrs

    # ------------------------------------------------------------------
    # Scoring helpers
    # ------------------------------------------------------------------
    def _best_assignment(self, edge: Edge,
                         exclude_entry: Optional[int] = None
                         ) -> Tuple[float, int]:
        """Best (score, partition) for ``edge`` over this instance's spread.

        Delegates to :meth:`AdwiseScoring.best`, which scores all ``k``
        partitions in one batched kernel call on a fast state and falls
        back to the per-partition loop on the legacy state.
        """
        neighborhood = self.neighborhood(edge, exclude_entry=exclude_entry)
        return self.scoring.best(edge, neighborhood)

    def _set_cached(self, entry: _WindowEntry, score: float,
                    partition: int) -> None:
        self._score_sum += score - entry.best_score
        entry.best_score = score
        entry.best_partition = partition
        entry.version = self._version

    def _classify(self, entry: _WindowEntry) -> None:
        """Place ``entry`` into C or Q based on the current threshold.

        The candidate set is capped at ``max_candidates`` — the lazy
        traversal only pays off when ``|C| << |Q|`` (paper §III-B), so
        surplus high-score edges wait in Q until C drains.
        """
        should_be_candidate = (not self.lazy
                               or (entry.best_score > self.threshold
                                   and len(self._candidates) < self.max_candidates))
        if should_be_candidate:
            self._candidates.add(entry.entry_id)
            self._secondary.discard(entry.entry_id)
        else:
            self._secondary.add(entry.entry_id)
            self._candidates.discard(entry.entry_id)
        entry.candidate = should_be_candidate

    # ------------------------------------------------------------------
    # Serialization (session snapshot boundary)
    # ------------------------------------------------------------------
    def to_image(self) -> WindowImage:
        """Capture the traversal state verbatim (see :class:`WindowImage`)."""
        entries = []
        for entry_id in sorted(self._entries):
            entry = self._entries[entry_id]
            entries.append((entry_id, entry.edge.u, entry.edge.v,
                            entry.best_score, entry.best_partition,
                            entry.version, entry.candidate))
        return WindowImage(
            entries=entries,
            next_id=self._next_id,
            score_sum=self._score_sum,
            version=self._version,
            promotions=self.promotions,
        )

    @classmethod
    def from_image(cls, scoring: AdwiseScoring, image: WindowImage,
                   lazy: bool = True, epsilon: float = 0.1,
                   max_candidates: int = 64) -> "EdgeWindow":
        """Rebuild a window from an image; continues bit-identically."""
        window = cls(scoring, lazy=lazy, epsilon=epsilon,
                     max_candidates=max_candidates)
        for entry_id, u, v, score, partition, version, candidate in \
                image.entries:
            edge = Edge(u, v)
            entry = _WindowEntry(entry_id, edge, score, partition,
                                 candidate=candidate, version=version)
            window._entries[entry_id] = entry
            (window._candidates if candidate
             else window._secondary).add(entry_id)
            for endpoint in (edge.u, edge.v):
                window._incidence.setdefault(endpoint, set()).add(entry_id)
        window._next_id = image.next_id
        window._score_sum = image.score_sum
        window._version = image.version
        window.promotions = image.promotions
        return window

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, edge: Edge) -> int:
        """Insert ``edge``; score it once and classify it; return entry id."""
        self.stat_refills += 1
        entry_id = self._next_id
        self._next_id += 1
        score, partition = self._best_assignment(edge)
        entry = _WindowEntry(entry_id, edge, 0.0, partition)
        self._entries[entry_id] = entry
        self._score_sum += 0.0
        self._set_cached(entry, score, partition)
        for endpoint in (edge.u, edge.v):
            self._incidence.setdefault(endpoint, set()).add(entry_id)
        self._classify(entry)
        return entry_id

    def add_block(self, edges: Sequence[Edge],
                  observe: Optional[Callable[[Edge], None]] = None
                  ) -> List[int]:
        """Insert a refill block; equivalent to sequential :meth:`add` calls.

        ``observe`` (typically ``state.observe_degrees``) is invoked on each
        edge immediately before it is scored, preserving the single-edge
        refill semantics: edge ``i`` is scored with the degree table and
        window incidence as they stood after edges ``1..i`` entered.  The
        array window overrides this with one batched kernel call per block.
        """
        ids = []
        for edge in edges:
            if observe is not None:
                observe(edge)
            ids.append(self.add(edge))
        return ids

    def _remove(self, entry_id: int) -> _WindowEntry:
        entry = self._entries.pop(entry_id)
        self._score_sum -= entry.best_score
        self._candidates.discard(entry_id)
        self._secondary.discard(entry_id)
        for endpoint in (entry.edge.u, entry.edge.v):
            incident = self._incidence.get(endpoint)
            if incident is not None:
                incident.discard(entry_id)
                if not incident:
                    del self._incidence[endpoint]
        return entry

    def _rescore_secondary(self) -> None:
        """Rule 2: candidate set empty → rescore Q, promote above-Θ edges.

        Entries are rescored and promoted in ascending entry-id order, so
        both the score-sum accumulation and the promotion choice under the
        candidate cap are deterministic stream functions (and replicable
        by the batched array window).
        """
        if not self._secondary:
            return
        ordered = sorted(self._secondary)
        for entry_id in ordered:
            entry = self._entries[entry_id]
            score, partition = self._best_assignment(
                entry.edge, exclude_entry=entry_id)
            self._set_cached(entry, score, partition)
        threshold = self.threshold
        above = [entry_id for entry_id in ordered
                 if self._entries[entry_id].best_score > threshold]
        if not above:
            # Fallback (scores are uniform, e.g. a cold vertex cache):
            # promote the best few so progress is made without rescoring
            # the whole secondary set on every subsequent assignment.
            # Ties break toward the oldest entry.
            ranked = sorted(
                ordered,
                key=lambda eid: (-self._entries[eid].best_score, eid))
            above = ranked[:max(1, len(ranked) // 8)]
        for entry_id in above[:self.max_candidates]:
            self._secondary.discard(entry_id)
            self._candidates.add(entry_id)
            self._entries[entry_id].candidate = True
            self.promotions += 1

    def pop_best(self) -> Tuple[Edge, int, float]:
        """Remove and return the best (edge, partition, score) assignment.

        Candidate scores are recomputed (they may be stale after previous
        assignments); secondary scores are not — that is the lazy saving.
        """
        if not self._entries:
            raise IndexError("pop_best from an empty window")
        self.stat_pops += 1
        if not self._candidates:
            self._rescore_secondary()
        # Every entry lives in C or Q, and rule 2 promotes at least one
        # entry from a non-empty Q, so C is non-empty here.  The best is
        # therefore initialised from the first candidate instead of a
        # (-inf, partitions[0]) sentinel — a degenerate window can no
        # longer silently mis-assign to the first spread partition.
        best_id = None
        best_score = 0.0
        best_partition = 0
        for entry_id in sorted(self._candidates):
            entry = self._entries[entry_id]
            if entry.version == self._version:
                # Cache is exact: no assignment happened since it was
                # computed (common right after a refill, and always at w=1).
                score, partition = entry.best_score, entry.best_partition
            else:
                score, partition = self._best_assignment(
                    entry.edge, exclude_entry=entry_id)
                self._set_cached(entry, score, partition)
            if best_id is None or score > best_score:
                best_score = score
                best_id = entry_id
                best_partition = partition
        if best_id is None:  # pragma: no cover - guarded by the invariant
            raise RuntimeError("window invariant violated: no candidates "
                               "after rule-2 rescoring of a non-empty window")
        entry = self._remove(best_id)
        # The caller assigns this edge next, which shifts balance scores;
        # all remaining caches become stale.
        self._version += 1
        return entry.edge, best_partition, best_score

    def on_replicas_changed(self, vertices: Iterable[int]) -> int:
        """Rule 3: reassess secondary edges touching changed replica sets.

        Returns the number of secondary edges promoted to the candidate set.
        """
        if not self.lazy:
            return 0
        touched: Set[int] = set()
        for vertex in vertices:
            touched.update(self._incidence.get(vertex, ()))
        promoted = 0
        threshold = self.threshold
        for entry_id in sorted(touched):
            if entry_id not in self._secondary:
                continue
            entry = self._entries[entry_id]
            score, partition = self._best_assignment(
                entry.edge, exclude_entry=entry_id)
            self._set_cached(entry, score, partition)
            if (score > threshold
                    and len(self._candidates) < self.max_candidates):
                self._secondary.discard(entry_id)
                self._candidates.add(entry_id)
                entry.candidate = True
                promoted += 1
                self.promotions += 1
        return promoted
