"""Looped-Python window kernels: the compiled backends' shared source.

These functions define, in plain sequential Python over ndarrays, the
exact per-slot transaction the ADWISE window agenda performs (DESIGN.md
§14): pull-validity checks of the component memos, recomputation of
invalid R/CS rows, total assembly in the reference IEEE-754 operation
order, entry-ordered score-sum accumulation, and the indexed binary
max-heap over ``(score, -entry_id)``.

They are written njit-compatibly (flat loops, ndarray/scalar arguments,
no Python containers) and serve three backends at once:

* **numba** — :mod:`repro.core._kernels` wraps every function with
  ``numba.njit`` when numba is installed and selected,
* **pyloop** — the functions run as-is (slow; the differential tests use
  this to exercise the numba source without numba installed),
* **cc** — ``_kernels.c`` mirrors this file statement-for-statement; the
  parity tests in ``tests/test_kbest_agenda.py`` hold the two together.

Array-parameter glossary (all owned by :class:`ArrayEdgeWindow` unless
noted): ``score``/``partition``/``entry``/``slot_version`` are the
per-slot caches; ``rep``/``cs`` the ``(capacity, k)`` component memos;
``rep_key`` ``(capacity, 5)`` rows ``(rowver_u, rowver_v, deg_u, deg_v,
max_degree)`` recorded when R was computed; ``nbr_key`` ``(capacity,
2)`` rows ``(iver_u, iver_v)`` recorded when the neighborhood segment
was written; ``cs_sum`` the replica-row-version checksum over the
segment when CS was computed (versions only ever increase, so equality
means no neighbor row moved); ``ui``/``vi`` dense endpoint indices;
``nbr_start``/``nbr_count``/``pool`` the pooled neighborhood segments
(dense indices); ``heap``/``heap_pos``/``hctl`` the agenda
(``hctl[0]`` is the heap size); ``replicas``/``row_version``/``deg``
come from the :class:`FastPartitionState`; ``iver`` is the window's
per-dense-vertex incidence version.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Indexed binary max-heap keyed (score desc, entry asc)
# ----------------------------------------------------------------------


def heap_better(score, entry, a, b):
    """Strict total order: does slot ``a`` outrank slot ``b``?"""
    sa = score[a]
    sb = score[b]
    if sa > sb:
        return True
    if sa < sb:
        return False
    return entry[a] < entry[b]


def sift_up(heap, heap_pos, score, entry, pos):
    """Restore the heap upward from ``pos``; return the final position."""
    slot = heap[pos]
    while pos > 0:
        parent = (pos - 1) // 2
        other = heap[parent]
        if not heap_better(score, entry, slot, other):
            break
        heap[pos] = other
        heap_pos[other] = pos
        pos = parent
    heap[pos] = slot
    heap_pos[slot] = pos
    return pos


def sift_down(heap, heap_pos, score, entry, n, pos):
    """Restore the heap downward from ``pos``; return the final position."""
    slot = heap[pos]
    while True:
        child = 2 * pos + 1
        if child >= n:
            break
        right = child + 1
        if right < n and heap_better(score, entry, heap[right], heap[child]):
            child = right
        if not heap_better(score, entry, heap[child], slot):
            break
        moved = heap[child]
        heap[pos] = moved
        heap_pos[moved] = pos
        pos = child
    heap[pos] = slot
    heap_pos[slot] = pos
    return pos


def heap_fix(heap, heap_pos, score, entry, n, pos):
    """Re-establish the invariant after an arbitrary key change at ``pos``."""
    if sift_up(heap, heap_pos, score, entry, pos) == pos:
        sift_down(heap, heap_pos, score, entry, n, pos)


def heap_push(heap, heap_pos, hctl, score, entry, slot):
    """Insert ``slot`` (must not be in the heap)."""
    n = hctl[0]
    heap[n] = slot
    heap_pos[slot] = n
    hctl[0] = n + 1
    sift_up(heap, heap_pos, score, entry, n)


def heap_remove(heap, heap_pos, hctl, score, entry, slot):
    """Remove ``slot``; return its former position, or -1 if absent."""
    pos = heap_pos[slot]
    if pos < 0:
        return -1
    n = hctl[0] - 1
    hctl[0] = n
    heap_pos[slot] = -1
    if pos != n:
        moved = heap[n]
        heap[pos] = moved
        heap_pos[moved] = pos
        heap_fix(heap, heap_pos, score, entry, n, pos)
    return pos


def heap_heapify(heap, heap_pos, hctl, score, entry):
    """Bottom-up heapify of ``heap[:hctl[0]]`` (positions pre-filled)."""
    n = hctl[0]
    i = n // 2 - 1
    while i >= 0:
        sift_down(heap, heap_pos, score, entry, n, i)
        i -= 1


# ----------------------------------------------------------------------
# Component memos: pull-validity checks and recomputation
# ----------------------------------------------------------------------


def rep_fresh(rep_key, ui, vi, row_version, deg, max_degree, s):
    """Is slot ``s``'s replication memo exact under the current state?"""
    iu = ui[s]
    iv = vi[s]
    return (rep_key[s, 0] == row_version[iu]
            and rep_key[s, 1] == row_version[iv]
            and rep_key[s, 2] == deg[iu]
            and rep_key[s, 3] == deg[iv]
            and rep_key[s, 4] == max_degree)


def nbr_fresh(nbr_key, ui, vi, iver, s):
    """Is slot ``s``'s pooled neighborhood segment still its neighborhood?"""
    return (nbr_key[s, 0] == iver[ui[s]]
            and nbr_key[s, 1] == iver[vi[s]])


def nbr_version_sum(nbr_start, nbr_count, pool, row_version, s):
    """Replica-row-version checksum over slot ``s``'s neighbor segment."""
    start = nbr_start[s]
    total = 0
    for i in range(nbr_count[s]):
        total += row_version[pool[start + i]]
    return total


def recompute_rep(rep, rep_key, ui, vi, replicas, row_version, deg,
                  max_degree, k, s):
    """R(e, p) for slot ``s`` in the reference operation order (Eq. 5)."""
    iu = ui[s]
    iv = vi[s]
    maxd = max_degree
    if maxd < 1:
        maxd = 1
    psi_u = deg[iu] / (2.0 * maxd)
    psi_v = deg[iv] / (2.0 * maxd)
    wu = 2.0 - psi_u
    wv = 2.0 - psi_v
    for j in range(k):
        a = wu if replicas[iu, j] else 0.0
        b = wv if replicas[iv, j] else 0.0
        rep[s, j] = a + b
    rep_key[s, 0] = row_version[iu]
    rep_key[s, 1] = row_version[iv]
    rep_key[s, 2] = deg[iu]
    rep_key[s, 3] = deg[iv]
    rep_key[s, 4] = max_degree


def recompute_cs(cs, cs_sum, nbr_start, nbr_count, pool, replicas,
                 row_version, k, s):
    """CS(e, p) for slot ``s`` (Eq. 6); empty segments yield a zero row."""
    start = nbr_start[s]
    cnt = nbr_count[s]
    vsum = 0
    for j in range(k):
        cs[s, j] = 0.0
    for i in range(cnt):
        idx = pool[start + i]
        vsum += row_version[idx]
        for j in range(k):
            if replicas[idx, j]:
                cs[s, j] += 1.0
    if cnt > 0:
        for j in range(k):
            cs[s, j] = cs[s, j] / cnt
    cs_sum[s] = vsum
    return vsum


def assemble(rep, cs, lamb, use_cs, k, s, out):
    """Best (score, column) of ``λ·B + R (+ CS)``; first max wins.

    ``out`` is a 2-element float64 scratch: ``out[0]`` receives the best
    score, ``out[1]`` the best column (as a float, cast by the caller).
    """
    best = rep[s, 0] + lamb[0]  # placeholder, overwritten below
    best_col = 0
    first = True
    for j in range(k):
        t = lamb[j] + rep[s, j]
        if use_cs:
            t = t + cs[s, j]
        if first or t > best:
            best = t
            best_col = j
            first = False
    out[0] = best
    out[1] = best_col
    return best


def scan_nbr(slots, nbr_key, ui, vi, iver, out):
    """Phase A: which of ``slots`` need their segment rebuilt in Python?"""
    cnt = 0
    for t in range(len(slots)):
        s = slots[t]
        if not nbr_fresh(nbr_key, ui, vi, iver, s):
            out[cnt] = s
            cnt += 1
    return cnt


# ----------------------------------------------------------------------
# The rescore transaction (pop / rule 2 / rule 3 share it)
# ----------------------------------------------------------------------


def rescore(slots, score, partition, entry, slot_version, rep, cs, rep_key,
            nbr_key, cs_sum, ui, vi, nbr_start, nbr_count, pool, replicas,
            row_version, deg, iver, partition_ids, lamb, version,
            max_degree, use_cs, score_sum, scratch2, io_i):
    """Rescore ``slots`` (already entry-ordered) against the current state.

    Per slot: a version-fresh slot whose memos are all exact is skipped
    (its cache equals what a fresh recomputation would produce — the
    rule-2 lazy saving); otherwise invalid components are recomputed,
    the total reassembled, and the score sum accumulated with the same
    scalar adds as the object window.  Neighborhood segments of every
    slot that recomputes CS must be fresh on entry (run :func:`scan_nbr`
    and rebuild first).  Returns the new score sum; ``io_i[0:3]``
    receive (rescored, rep_recomputed, cs_recomputed) tallies.
    """
    k = len(partition_ids)
    n_res = 0
    n_rep = 0
    n_cs = 0
    for t in range(len(slots)):
        s = slots[t]
        fresh_r = rep_fresh(rep_key, ui, vi, row_version, deg, max_degree, s)
        fresh_c = True
        if use_cs:
            if nbr_fresh(nbr_key, ui, vi, iver, s):
                fresh_c = (cs_sum[s] == nbr_version_sum(
                    nbr_start, nbr_count, pool, row_version, s))
            else:
                fresh_c = False
        if slot_version[s] == version and fresh_r and fresh_c:
            continue
        if not fresh_r:
            recompute_rep(rep, rep_key, ui, vi, replicas, row_version, deg,
                          max_degree, k, s)
            n_rep += 1
        if use_cs and not fresh_c:
            recompute_cs(cs, cs_sum, nbr_start, nbr_count, pool, replicas,
                         row_version, k, s)
            n_cs += 1
        best = assemble(rep, cs, lamb, use_cs, k, s, scratch2)
        col = int(scratch2[1])
        score_sum += best - score[s]
        score[s] = best
        partition[s] = partition_ids[col]
        slot_version[s] = version
        n_res += 1
    io_i[0] = n_res
    io_i[1] = n_rep
    io_i[2] = n_cs
    return score_sum


def pop_agenda(heap, heap_pos, hctl, scratch, score, partition, entry,
               slot_version, rep, cs, rep_key, nbr_key, cs_sum, ui, vi,
               nbr_start, nbr_count, pool, replicas, row_version, deg,
               iver, partition_ids, lamb, version, max_degree, use_cs,
               io_f, io_i):
    """The fused pop transaction over the candidate agenda.

    Collects the version-stale candidates (entry-ordered), verifies
    their neighborhood segments, rescores them, repairs the heap (a
    lone moved key sifts in place, several trigger a full heapify), and
    returns the root — the exact slot the reference's ordered argmax
    would pick.  Returns ``-1`` with ``io_i[3] = m`` when ``m`` segments
    must first be rebuilt in Python (their slots are in ``scratch[:m]``;
    the call is restartable).  ``io_f[0]`` carries the score sum in and
    out; ``io_i[0:3]`` the rescore tallies.
    """
    n = hctl[0]
    if n == 0:
        return -2
    # Collect stale candidates, then shell-sort them by entry id (gap
    # sequence 3h+1; entries are unique, so the order is total).
    m = 0
    for i in range(n):
        s = heap[i]
        if slot_version[s] != version:
            scratch[m] = s
            m += 1
    gap = 1
    while gap < m // 3:
        gap = 3 * gap + 1
    while gap > 0:
        for i in range(gap, m):
            s = scratch[i]
            e = entry[s]
            j = i
            while j >= gap and entry[scratch[j - gap]] > e:
                scratch[j] = scratch[j - gap]
                j -= gap
            scratch[j] = s
        gap //= 3
    if use_cs:
        need = 0
        for t in range(m):
            s = scratch[t]
            if not nbr_fresh(nbr_key, ui, vi, iver, s):
                scratch[n + need] = s
                need += 1
        if need > 0:
            for t in range(need):
                scratch[t] = scratch[n + t]
            io_i[3] = need
            return -1
    if m > 0:
        stale = scratch[:m]
        io_f[0] = rescore(stale, score, partition, entry, slot_version,
                          rep, cs, rep_key, nbr_key, cs_sum, ui, vi,
                          nbr_start, nbr_count, pool, replicas,
                          row_version, deg, iver, partition_ids, lamb,
                          version, max_degree, use_cs, io_f[0],
                          io_f[1:3], io_i)
        # Heap repair: a single moved key sifts in place; for several,
        # only a full heapify is sound (sequential per-key fixes can
        # leave violations between two moved keys).
        if m == 1:
            heap_fix(heap, heap_pos, score, entry, n, heap_pos[scratch[0]])
        else:
            heap_heapify(heap, heap_pos, hctl, score, entry)
    else:
        io_i[0] = 0
        io_i[1] = 0
        io_i[2] = 0
    return heap[0]


def add_score(s, du, dv, seg_start, seg_count, score, partition, entry,
              slot_version, rep, cs, rep_key, nbr_key, cs_sum, ui, vi,
              nbr_start, nbr_count, pool, replicas, row_version, deg,
              iver, partition_ids, lamb, version, max_degree, use_cs,
              scratch2):
    """Rule 1: score a freshly inserted slot and seed exact memos.

    The caller has observed the edge (degrees current), interned the
    endpoints, bumped their incidence versions and written the
    neighborhood segment; this computes R and CS against the live
    tables, stamps both keys at the current counters, assembles the
    total, and caches (score, partition, version).  Returns the score.
    """
    k = len(partition_ids)
    ui[s] = du
    vi[s] = dv
    nbr_start[s] = seg_start
    nbr_count[s] = seg_count
    recompute_rep(rep, rep_key, ui, vi, replicas, row_version, deg,
                  max_degree, k, s)
    nbr_key[s, 0] = iver[du]
    nbr_key[s, 1] = iver[dv]
    if use_cs:
        recompute_cs(cs, cs_sum, nbr_start, nbr_count, pool, replicas,
                     row_version, k, s)
    best = assemble(rep, cs, lamb, use_cs, k, s, scratch2)
    col = int(scratch2[1])
    score[s] = best
    partition[s] = partition_ids[col]
    slot_version[s] = version
    return best


def replication_rows_core(rows, psi, n, out):
    """Fused-endpoint replication scores over gathered replica rows.

    ``rows`` stacks n u-rows then n v-rows (as ``replication_batch``
    gathers them); per element the result is
    ``rows[i]·(2−psi[i]) + rows[n+i]·(2−psi[n+i])`` — the same two
    products and one add, in the same order, as the numpy form.
    """
    k = rows.shape[1]
    for i in range(n):
        wu = 2.0 - psi[i]
        wv = 2.0 - psi[n + i]
        for j in range(k):
            a = wu if rows[i, j] else 0.0
            b = wv if rows[n + i, j] else 0.0
            out[i, j] = a + b
    return out


def clustering_rows_core(rows, counts, out):
    """Mean replica hits per neighborhood segment of gathered rows.

    Hit counts accumulate exactly (integers below 2**53 in float64)
    and divide once by the segment length, matching the int64
    ``reduceat`` + single division of ``clustering_batch``.  Zero-count
    segments stay all-zero.
    """
    n = counts.shape[0]
    k = rows.shape[1]
    pos = 0
    for i in range(n):
        cnt = counts[i]
        for j in range(k):
            out[i, j] = 0.0
        for t in range(cnt):
            for j in range(k):
                if rows[pos + t, j]:
                    out[i, j] += 1.0
        if cnt > 0:
            for j in range(k):
                out[i, j] = out[i, j] / cnt
        pos += cnt
    return out


#: Names wrapped by the numba backend, in dependency order.
KERNEL_FUNCTIONS = (
    "heap_better", "sift_up", "sift_down", "heap_fix", "heap_push",
    "heap_remove", "heap_heapify", "rep_fresh", "nbr_fresh",
    "nbr_version_sum", "recompute_rep", "recompute_cs", "assemble",
    "scan_nbr", "rescore", "pop_agenda", "add_score",
    "replication_rows_core", "clustering_rows_core",
)
