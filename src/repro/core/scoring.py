"""ADWISE's adaptive degree-aware scoring function (paper §III-C).

The total score for placing window edge ``e`` on partition ``p`` is

    g(e, p) = λ(ι, α) · B(p) + R(e, p) + CS(e, p)          (Eq. 7)

with three components:

* **Adaptive balancing** ``λ(ι, α) · B(p)`` — the balancing score B(p)
  (Eq. 3) weighted by a parameter λ that is *adapted at runtime* (Eq. 4)
  from the current imbalance ι and stream progress α, instead of being a
  fixed expert-chosen constant as in HDRF.
* **Degree-aware replication** ``R(e, p)`` (Eq. 5) — rewards partitions that
  already hold replicas of e's endpoints, discounted by the endpoint's
  degree normalised against the maximum observed degree (Ψ), so high-degree
  vertices are preferentially cut.
* **Clustering score** ``CS(e, p)`` (Eq. 6) — rewards partitions already
  holding replicas of e's *window-local neighborhood*, exploiting the
  cliquishness of real-world graphs.  Disabled for weakly clustered graphs
  (the paper switches it off for Orkut).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-free installs
    np = None  # the batched kernels need a fast state, which requires numpy

from repro.graph.graph import Edge
from repro.partitioning.state import PartitionState
from repro.simtime import Clock

_EPSILON = 1e-9


def _scoring_cores():
    """Jitted ``(replication, clustering)`` row cores, or ``None``.

    Resolved through :func:`repro.core._kernels.scoring_cores`: non-None
    only when the numba kernel backend is selected (``REPRO_NUMBA=1`` or
    ``REPRO_KERNEL=numba``), in which case the gathered-row arithmetic of
    the batch kernels below compiles to the same loops the window kernels
    use — bit-identical output, enforced by the differential suite.
    Imported lazily so this module stays importable without numpy.
    """
    from repro.core import _kernels

    return _kernels.scoring_cores()

#: Hard bounds on the adaptive balancing parameter (paper: "we keep
#: λ(ι, α) in the fixed interval [0.4, 5]").
LAMBDA_MIN = 0.4
LAMBDA_MAX = 5.0


class AdaptiveBalancer:
    """Runtime-adaptive balancing weight λ(ι, α) (Eq. 4).

    After every edge assignment the weight moves by the difference between
    the current imbalance ι and the tolerated imbalance ``max(0, 1 − α)``
    (which shrinks linearly as the stream progresses), clamped to
    ``[LAMBDA_MIN, LAMBDA_MAX]``.
    """

    def __init__(self, total_edges: int, initial: float = 1.0) -> None:
        if total_edges < 0:
            raise ValueError("total_edges must be non-negative")
        if not LAMBDA_MIN <= initial <= LAMBDA_MAX:
            raise ValueError(
                f"initial lambda {initial} outside [{LAMBDA_MIN}, {LAMBDA_MAX}]")
        self.total_edges = total_edges
        self.value = initial

    @staticmethod
    def tolerance(alpha: float) -> float:
        """Highest acceptable imbalance at stream progress ``alpha``."""
        return max(0.0, 1.0 - alpha)

    def update(self, imbalance: float, assigned_edges: int) -> float:
        """Adapt λ after one assignment; return the new value."""
        if self.total_edges > 0:
            alpha = min(1.0, assigned_edges / self.total_edges)
        else:
            alpha = 1.0
        self.value += imbalance - self.tolerance(alpha)
        self.value = min(LAMBDA_MAX, max(LAMBDA_MIN, self.value))
        return self.value


class AdwiseScoring:
    """Computes ``g(e, p)`` against a :class:`PartitionState`.

    Parameters
    ----------
    state:
        The vertex cache / partition bookkeeping of this instance.
    balancer:
        The adaptive λ source; pass ``None`` to pin λ (ablations, tests)
        via ``fixed_lambda``.
    use_clustering:
        Include the clustering score CS.  The paper disables it for graphs
        with negligible clustering coefficient (Orkut).
    clock:
        Charged one unit per ``score`` call so latency accounting matches
        the paper's "score computations" complexity unit.
    """

    def __init__(self, state: PartitionState,
                 balancer: Optional[AdaptiveBalancer] = None,
                 use_clustering: bool = True,
                 fixed_lambda: float = 1.0,
                 clock: Optional[Clock] = None) -> None:
        self.state = state
        self.balancer = balancer
        self.use_clustering = use_clustering
        self.fixed_lambda = fixed_lambda
        self.clock = clock
        # λ·B(p) vector memo for the batched kernels: balance scores and
        # λ only move when an edge is assigned, while the window rescoring
        # between two assignments calls the kernels many times.  Keyed by
        # (assigned_edges, λ); holds the exact vector the uncached path
        # would compute, so results are bit-identical.
        self._weighted_balance_edges: int = -1
        self._weighted_balance_lambda: float = float("nan")
        self._weighted_balance: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------
    @property
    def current_lambda(self) -> float:
        return self.balancer.value if self.balancer is not None else self.fixed_lambda

    def balance_score(self, partition: int) -> float:
        """B(p) = (maxsize − |p|) / (maxsize − minsize + ε)   (Eq. 3)."""
        max_size = self.state.max_size
        min_size = self.state.min_size
        return (max_size - self.state.size(partition)) / (
            max_size - min_size + _EPSILON)

    def psi(self, vertex: int) -> float:
        """Absolute-degree normalisation Ψ_v = deg(v) / (2 · maxDegree)."""
        return self.state.degree_of(vertex) / (2.0 * max(1, self.state.max_degree))

    def replication_score(self, edge: Edge, partition: int) -> float:
        """R((u,v), p) = 1{p∈R_u}(2−Ψ_u) + 1{p∈R_v}(2−Ψ_v)   (Eq. 5)."""
        score = 0.0
        if self.state.is_replicated_on(edge.u, partition):
            score += 2.0 - self.psi(edge.u)
        if self.state.is_replicated_on(edge.v, partition):
            score += 2.0 - self.psi(edge.v)
        return score

    def clustering_score(self, edge: Edge, partition: int,
                         neighborhood: Iterable[int]) -> float:
        """CS(e, p): fraction of window-local neighbors replicated on p (Eq. 6).

        ``neighborhood`` is ``N(u) ∪ N(v)`` computed from the *window* edges
        only (the caller owns the window incidence index); the larger the
        window, the more accurate the score.
        """
        nbrs = list(neighborhood)
        if not nbrs:
            return 0.0
        hits = sum(1 for n in nbrs
                   if self.state.is_replicated_on(n, partition))
        return hits / len(nbrs)

    # ------------------------------------------------------------------
    # Total
    # ------------------------------------------------------------------
    def score(self, edge: Edge, partition: int,
              neighborhood: Iterable[int] = ()) -> float:
        """Total score g(e, p) (Eq. 7); charges one score computation."""
        if self.clock is not None:
            self.clock.charge_score()
        total = (self.current_lambda * self.balance_score(partition)
                 + self.replication_score(edge, partition))
        if self.use_clustering:
            total += self.clustering_score(edge, partition, neighborhood)
        return total

    # ------------------------------------------------------------------
    # Batched kernel (fast path)
    # ------------------------------------------------------------------
    def _lambda_balance(self) -> np.ndarray:
        """``λ · B(p)`` over the spread, memoized between assignments.

        Callers must treat the returned vector as read-only.
        """
        state = self.state
        lam = self.current_lambda
        if (state.assigned_edges != self._weighted_balance_edges
                or lam != self._weighted_balance_lambda):
            max_size = state.max_size
            balance = (max_size - state.sizes_vector()) / (
                max_size - state.min_size + _EPSILON)
            self._weighted_balance = lam * balance
            self._weighted_balance_edges = state.assigned_edges
            self._weighted_balance_lambda = lam
        return self._weighted_balance

    def score_all(self, edge: Edge,
                  neighborhood: Iterable[int] = ()) -> np.ndarray:
        """Score ``edge`` against *all* partitions in one vectorised call.

        Requires a :class:`~repro.partitioning.fast_state.FastPartitionState`.
        Returns ``g(e, p)`` for every partition in spread order; the
        arithmetic mirrors :meth:`score` operation-for-operation (same
        IEEE-754 evaluation order), so argmax over the result is
        bit-identical to the legacy per-partition loop.  Charges ``k``
        score computations, matching the per-call accounting.
        """
        state = self.state
        if self.clock is not None:
            self.clock.charge_score(state.num_partitions)
        row_u, row_v = state.replica_rows_pair(edge.u, edge.v)
        replication = (row_u * (2.0 - self.psi(edge.u))
                       + row_v * (2.0 - self.psi(edge.v)))
        total = self._lambda_balance() + replication
        if self.use_clustering:
            nbrs = list(neighborhood)
            if nbrs:
                total += state.replica_hits(nbrs) / len(nbrs)
        return total

    def score_batch(self, us: "np.ndarray", vs: "np.ndarray",
                    nbr_concat: Sequence[int], nbr_counts: "np.ndarray",
                    psi_u: Optional["np.ndarray"] = None,
                    psi_v: Optional["np.ndarray"] = None) -> np.ndarray:
        """Score ``N`` edges against all ``k`` partitions in one kernel call.

        Row ``i`` is bit-identical to ``score_all(Edge(us[i], vs[i]),
        nbrs_i)`` evaluated against the same state: every elementwise
        operation mirrors the single-edge kernel in the same IEEE-754
        evaluation order, so per-row argmax matches ``N`` sequential
        ``best`` calls exactly.  Charges ``N × k`` score computations,
        matching ``N`` single-edge calls.

        Parameters
        ----------
        us, vs:
            Endpoint vertex ids, one pair per edge.
        nbr_concat, nbr_counts:
            The window-local neighborhoods of all edges, concatenated,
            with ``nbr_counts[i]`` (an int64 ndarray) giving edge ``i``'s
            neighborhood size (rows with count 0 receive no clustering
            term, like the single-edge kernel's ``if nbrs`` guard).
        psi_u, psi_v:
            Optional per-edge degree normalisations Ψ.  The refill path
            passes the values captured when each edge was observed —
            replaying the degree table as it stood mid-block — while
            rescoring passes ``None`` to read the current table.
        """
        state = self.state
        n = len(us)
        if self.clock is not None:
            self.clock.charge_score(n * state.num_partitions)
        total = (self._lambda_balance()
                 + self.replication_batch(us, vs, psi_u=psi_u, psi_v=psi_v))
        if self.use_clustering and len(nbr_concat):
            # Zero rows (empty neighborhoods) add exactly 0.0 to already
            # non-negative scores, matching the single-edge ``if nbrs``
            # guard bit-for-bit.
            total += self.clustering_batch(nbr_concat, nbr_counts)
        return total

    def replication_batch(self, us: Sequence[int], vs: Sequence[int],
                          psi_u: Optional["np.ndarray"] = None,
                          psi_v: Optional["np.ndarray"] = None) -> np.ndarray:
        """``R(e, p)`` for ``N`` edges as one ``(N, k)`` matrix.

        Row ``i`` equals the replication term of :meth:`score_all` for
        edge ``(us[i], vs[i])`` bit-for-bit.  Component kernel: charges
        no score computations (the composing callers account for whole
        scores).
        """
        state = self.state
        n = len(us)
        if isinstance(us, np.ndarray):
            us = us.tolist()
        if isinstance(vs, np.ndarray):
            vs = vs.tolist()
        endpoints = us + vs
        rows = state.replica_rows(endpoints)
        if psi_u is None:
            denominator = 2.0 * max(1, state.max_degree)
            psi = state.degrees_array(endpoints) / denominator
        else:
            psi = np.concatenate((psi_u, psi_v))
        cores = _scoring_cores()
        if cores is not None:
            out = np.empty((n, rows.shape[1]))
            return cores[0](rows, psi, n, out)
        # One fused multiply over both endpoint blocks: rows i and n+i are
        # edge i's u and v indicator rows, so the sum of the two halves is
        # R(e, p) elementwise — identical to the per-endpoint products.
        weighted = rows * (2.0 - psi)[:, None]
        return weighted[:n] + weighted[n:]

    def clustering_batch(self, nbr_concat: Sequence[int],
                         nbr_counts: "np.ndarray") -> np.ndarray:
        """``CS(e, p)`` for ``N`` edges as one ``(N, k)`` matrix.

        ``nbr_concat`` holds all neighborhoods back to back and
        ``nbr_counts[i]`` (int64 ndarray) edge ``i``'s neighborhood size;
        rows with count 0 come back all-zero.  Component kernel: charges
        no score computations.
        """
        state = self.state
        n = len(nbr_counts)
        counts = nbr_counts
        if not len(nbr_concat):
            return np.zeros((n, state.num_partitions))
        bool_rows = state.replica_rows(nbr_concat)
        cores = _scoring_cores()
        if cores is not None:
            out = np.empty((n, state.num_partitions))
            return cores[1](bool_rows, counts, out)
        rows = bool_rows.astype(np.int64)
        nonzero = counts > 0
        if nonzero.all():
            starts = np.cumsum(counts) - counts
            hits = np.add.reduceat(rows, starts, axis=0)
            return hits / counts[:, None]
        out = np.zeros((n, state.num_partitions))
        ends = np.cumsum(counts[nonzero])
        starts = ends - counts[nonzero]
        hits = np.add.reduceat(rows, starts, axis=0)
        out[nonzero] = hits / counts[nonzero, None]
        return out

    def best(self, edge: Edge,
             neighborhood: Iterable[int] = ()) -> Tuple[float, int]:
        """Best ``(score, partition)`` for ``edge`` over the spread.

        Dispatches to the batched kernel on a fast state and falls back
        to the legacy per-partition loop otherwise; ties break toward the
        first partition in spread order on both paths.
        """
        state = self.state
        if state.is_fast:
            scores = self.score_all(edge, neighborhood)
            idx = int(scores.argmax())
            return float(scores[idx]), state.partitions[idx]
        best_score = float("-inf")
        best_partition = state.partitions[0]
        for partition in state.partitions:
            s = self.score(edge, partition, neighborhood)
            if s > best_score:
                best_score = s
                best_partition = partition
        return best_score, best_partition

    def after_assignment(self) -> None:
        """Adapt λ after an edge assignment (Eq. 4)."""
        if self.balancer is not None:
            self.balancer.update(self.state.imbalance(),
                                 self.state.assigned_edges)
