"""Clock abstractions for latency accounting.

The paper measures *partitioning latency* in wall-clock milliseconds and uses
it to drive the adaptive window controller (condition C2).  A pure-Python
reproduction cannot use wall-clock time meaningfully: interpreter overhead
would dominate and make the controller's behaviour non-deterministic and
non-portable.  Instead, the default clock is a :class:`SimulatedClock` that
charges a fixed, configurable cost per score computation and per edge
assignment — exactly the cost model the paper's complexity analysis uses
(``w * k`` score computations per assignment).

All latency-sensitive components accept any object implementing the
:class:`Clock` protocol, so a :class:`WallClock` can be swapped in when real
timing is wanted.
"""

from __future__ import annotations

import time


class Clock:
    """Protocol for clocks used by latency-sensitive components.

    A clock exposes a monotonically non-decreasing :meth:`now` (milliseconds)
    and charge hooks that components call to account for work performed.
    """

    def now(self) -> float:
        """Return the current time in milliseconds."""
        raise NotImplementedError

    def charge_score(self, count: int = 1) -> None:
        """Account for ``count`` score computations."""
        raise NotImplementedError

    def charge_assignment(self, count: int = 1) -> None:
        """Account for ``count`` edge assignments (bookkeeping overhead)."""
        raise NotImplementedError


class SimulatedClock(Clock):
    """Deterministic clock driven by a cost model.

    Parameters
    ----------
    score_cost_ms:
        Milliseconds charged per score computation.  The default (0.001 ms)
        corresponds to roughly one microsecond per score — the order of
        magnitude of the paper's C++/Java implementation.
    assignment_cost_ms:
        Fixed per-assignment overhead (vertex-cache updates, window refill).
    """

    def __init__(self, score_cost_ms: float = 0.001,
                 assignment_cost_ms: float = 0.002) -> None:
        if score_cost_ms < 0 or assignment_cost_ms < 0:
            raise ValueError("clock costs must be non-negative")
        self.score_cost_ms = score_cost_ms
        self.assignment_cost_ms = assignment_cost_ms
        self._advanced_ms = 0.0
        self.score_computations = 0
        self.assignments = 0

    def now(self) -> float:
        # Derived from the integer event counters rather than accumulated
        # per charge, so simulated time is exactly independent of charge
        # granularity: k calls of charge_score(1) and one charge_score(k)
        # read the same time.  The batched scoring kernels rely on this
        # for bit-identical adaptive-controller behaviour.
        return (self._advanced_ms
                + self.score_computations * self.score_cost_ms
                + self.assignments * self.assignment_cost_ms)

    def charge_score(self, count: int = 1) -> None:
        self.score_computations += count

    def charge_assignment(self, count: int = 1) -> None:
        self.assignments += count

    def advance(self, ms: float) -> None:
        """Advance the clock by ``ms`` milliseconds (e.g. IO stall)."""
        if ms < 0:
            raise ValueError("cannot advance a clock backwards")
        self._advanced_ms += ms

    def reset(self) -> None:
        """Reset time and counters to zero."""
        self._advanced_ms = 0.0
        self.score_computations = 0
        self.assignments = 0


class WallClock(Clock):
    """Real wall-clock time; charge hooks only count events."""

    def __init__(self) -> None:
        self._t0 = time.monotonic()
        self.score_computations = 0
        self.assignments = 0

    def now(self) -> float:
        return (time.monotonic() - self._t0) * 1000.0

    def charge_score(self, count: int = 1) -> None:
        self.score_computations += count

    def charge_assignment(self, count: int = 1) -> None:
        self.assignments += count
