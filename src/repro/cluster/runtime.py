"""The sharded cluster engine: real multi-shard BSP execution.

:class:`ClusterEngine` executes a vertex program over a
:class:`~repro.graph.shard.ShardedGraph` the way the paper's testbed
(and the cost model standing in for it) says a PowerGraph-style system
does: every partition runs the program's dense kernel over its own CSR
shard, and between supersteps the replicas of cut vertices are made
consistent by a gather-to-master / scatter-to-mirrors exchange
(:mod:`repro.cluster.transport`).  The ``serial`` backend steps the
shards in-process (deterministic reference); the ``process`` backend
runs them in worker OS processes over pipes.

The result is a :class:`ClusterReport` — a drop-in
:class:`~repro.engine.runtime.SimulationReport` (states, supersteps,
message counts, aggregates and the *same* simulated latency trace as
``Engine``, charged from the same active fractions) extended with what
the single-process engine cannot measure: per-superstep wall-clock and
actually-observed replica-sync traffic, split remote/local per machine.
The differential test layer holds the measured traffic equal to
:meth:`~repro.engine.placement.Placement.stats`' prediction, turning the
cost model into a validated artifact.

Programs whose kernels don't satisfy the sharding contract (see
:mod:`repro.engine.dense`) — or that have no dense kernel at all — run
on the **fallback path**: the unsharded :class:`~repro.engine.runtime.
Engine` over the reassembled graph, still wrapped in a
:class:`ClusterReport` (with ``sharded=False`` and simulated-only
traffic), so every workload runs through one entry point.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.cluster.transport import (
    BACKENDS,
    ProcessTransport,
    SerialTransport,
    SyncStats,
)
from repro.engine.cost import CostModel
from repro.engine.runtime import Engine, SimulationReport
from repro.engine.vertex_program import VertexProgram
from repro.graph.shard import ShardedGraph


@dataclass
class SuperstepTelemetry:
    """Measured (not simulated) facts about one superstep."""

    superstep: int
    computed: int
    active_fraction: float
    #: Coordinator wall-clock of the whole superstep (compute + sync).
    wall_ms: float
    #: Slowest shard's kernel-step wall-clock (the BSP straggler).
    compute_ms: float
    #: Whether a replica-sync exchange ran this superstep.
    synced: bool
    remote_messages: int
    local_messages: int
    payload_bytes: int
    remote_per_machine: Dict[int, int] = field(default_factory=dict)
    local_per_machine: Dict[int, int] = field(default_factory=dict)


@dataclass
class ClusterReport(SimulationReport):
    """A :class:`SimulationReport` plus measured cluster telemetry."""

    backend: str = "serial"
    #: False when the program ran on the unsharded fallback path.
    sharded: bool = True
    num_shards: int = 0
    num_machines: int = 1
    #: Total measured wall-clock of the superstep loop (milliseconds).
    wall_ms_total: float = 0.0
    telemetry: List[SuperstepTelemetry] = field(default_factory=list)

    @property
    def remote_sync_messages(self) -> int:
        return sum(t.remote_messages for t in self.telemetry)

    @property
    def local_sync_messages(self) -> int:
        return sum(t.local_messages for t in self.telemetry)

    @property
    def sync_payload_bytes(self) -> int:
        return sum(t.payload_bytes for t in self.telemetry)


class ClusterEngine:
    """BSP executor over per-partition CSR shards with replica sync.

    Parameters
    ----------
    sharded:
        The sharded graph (any partitioner's assignment — see
        :meth:`~repro.graph.shard.ShardedGraph.from_assignments`).
    cost_model:
        Charges the same simulated latency trace as
        :class:`~repro.engine.runtime.Engine`, so simulated and measured
        time sit side by side in one report.
    backend:
        ``"serial"`` (in-process, deterministic) or ``"process"`` (one
        worker OS process per machine over pipes).
    num_workers:
        Process backend only: number of worker processes to group the
        partitions onto (contiguous blocks).  Defaults to one worker per
        partition, capped at the CPU count.  Machines *are* workers.
    num_machines / machine_of_partition:
        Serial backend only: the logical machine layout used to classify
        sync traffic remote vs. local (defaults to one machine per
        partition).  The process backend derives both from its workers.
    """

    def __init__(self, sharded: ShardedGraph,
                 cost_model: Optional[CostModel] = None,
                 backend: str = "serial",
                 num_workers: Optional[int] = None,
                 num_machines: Optional[int] = None,
                 machine_of_partition: Optional[Mapping[int, int]] = None
                 ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r} (choose from {BACKENDS})")
        self.sharded = sharded
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.backend = backend
        partitions = sharded.partitions
        if backend == "process":
            if num_machines is not None or machine_of_partition is not None:
                raise ValueError(
                    "process backend derives machines from its workers; "
                    "pass num_workers instead")
            if num_workers is not None and num_workers < 1:
                raise ValueError("num_workers must be >= 1")
            workers = (num_workers if num_workers is not None
                       else min(len(partitions), os.cpu_count() or 1))
            workers = min(workers, len(partitions))
            self.num_machines = workers
            self.machine_of = self._contiguous_map(partitions, workers)
        else:
            if num_workers is not None:
                raise ValueError("num_workers only applies to the "
                                 "process backend")
            if machine_of_partition is not None:
                self.machine_of = dict(machine_of_partition)
                missing = [p for p in partitions
                           if p not in self.machine_of]
                if missing:
                    raise ValueError(
                        f"partitions without a machine: {missing}")
                self.num_machines = (num_machines if num_machines is not None
                                     else len(set(self.machine_of.values())))
            else:
                machines = (num_machines if num_machines is not None
                            else len(partitions))
                self.machine_of = self._contiguous_map(partitions, machines)
                self.num_machines = machines
        self.placement = sharded.placement(
            num_machines=self.num_machines,
            machine_of_partition=self.machine_of)
        self._stats = self.placement.stats()

    @staticmethod
    def _contiguous_map(partitions, num_machines) -> Dict[int, int]:
        from repro.engine.placement import Placement
        return Placement.contiguous_machine_map(partitions, num_machines)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, program: VertexProgram,
            max_supersteps: int = 100) -> ClusterReport:
        """Execute ``program`` until convergence or ``max_supersteps``."""
        if max_supersteps < 1:
            raise ValueError("max_supersteps must be >= 1")
        if not self._can_shard(program):
            return self._run_fallback(program, max_supersteps)
        if self.backend == "process":
            transport = ProcessTransport(self.sharded, program,
                                         self.machine_of)
        else:
            transport = SerialTransport(self.sharded, program,
                                        self.machine_of)
        try:
            return self._run_sharded(program, transport, max_supersteps)
        finally:
            transport.close()

    def _can_shard(self, program: VertexProgram) -> bool:
        if not getattr(program, "shardable", False):
            return False
        if type(program).dense_kernel is VertexProgram.dense_kernel:
            return False
        # A shardable program may still decline a kernel for this graph.
        first = self.sharded.shards[self.sharded.partitions[0]]
        return program.dense_kernel(first.csr) is not None

    def _run_sharded(self, program: VertexProgram, transport,
                     max_supersteps: int) -> ClusterReport:
        """Mirror of ``Engine._run_dense``'s loop, with the per-superstep
        work fanned out to the shards and measured on the way through."""
        num_vertices = self.sharded.num_vertices
        costs = []
        aggregates: List[Any] = []
        telemetry: List[SuperstepTelemetry] = []
        total_messages = 0
        converged = False
        superstep = 0
        while superstep < max_supersteps:
            computed = transport.compute_owned()
            if computed == 0:
                converged = True
                break
            start = time.perf_counter()
            result = transport.step(superstep)
            wall_ms = (time.perf_counter() - start) * 1000.0
            active_fraction = (computed / num_vertices
                               if num_vertices else 0.0)
            costs.append(self.cost_model.superstep_cost(
                self._stats, active_fraction))
            aggregates.append(result.aggregate)
            total_messages += result.sent
            stats: SyncStats = result.stats
            telemetry.append(SuperstepTelemetry(
                superstep=superstep,
                computed=computed,
                active_fraction=active_fraction,
                wall_ms=wall_ms,
                compute_ms=result.compute_seconds * 1000.0,
                synced=result.synced,
                remote_messages=stats.remote_messages,
                local_messages=stats.local_messages,
                payload_bytes=stats.payload_bytes,
                remote_per_machine=dict(stats.remote_per_machine),
                local_per_machine=dict(stats.local_per_machine),
            ))
            superstep += 1
            if program.should_stop(result.aggregate, superstep):
                converged = True
                break
        else:
            converged = transport.compute_owned() == 0
        states = transport.states()
        return ClusterReport(
            algorithm=program.name,
            supersteps=len(costs),
            latency_ms=sum(c.total_ms for c in costs),
            superstep_costs=costs,
            states=states,
            messages_sent=total_messages,
            converged=converged,
            aggregates=aggregates,
            backend=transport.backend,
            sharded=True,
            num_shards=len(self.sharded.partitions),
            num_machines=self.num_machines,
            wall_ms_total=sum(t.wall_ms for t in telemetry),
            telemetry=telemetry,
        )

    def _run_fallback(self, program: VertexProgram,
                      max_supersteps: int) -> ClusterReport:
        """Unsharded execution for programs outside the sharding contract:
        the ordinary engine over the reassembled graph (dense where the
        program has a kernel, object otherwise), measured wall included."""
        engine = Engine(self.sharded.to_graph(), self.placement,
                        self.cost_model, mode="dense")
        start = time.perf_counter()
        report = engine.run(program, max_supersteps=max_supersteps)
        wall_ms = (time.perf_counter() - start) * 1000.0
        return ClusterReport(
            algorithm=report.algorithm,
            supersteps=report.supersteps,
            latency_ms=report.latency_ms,
            superstep_costs=report.superstep_costs,
            states=report.states,
            messages_sent=report.messages_sent,
            converged=report.converged,
            aggregates=report.aggregates,
            backend=self.backend,
            sharded=False,
            num_shards=len(self.sharded.partitions),
            num_machines=self.num_machines,
            wall_ms_total=wall_ms,
            telemetry=[],
        )
