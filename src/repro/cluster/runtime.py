"""The sharded cluster engine: real multi-shard BSP execution.

:class:`ClusterEngine` executes a vertex program over a
:class:`~repro.graph.shard.ShardedGraph` the way the paper's testbed
(and the cost model standing in for it) says a PowerGraph-style system
does: every partition runs the program's dense kernel over its own CSR
shard, and between supersteps the replicas of cut vertices are made
consistent by a gather-to-master / scatter-to-mirrors exchange
(:mod:`repro.cluster.transport`).  The ``serial`` backend steps the
shards in-process (deterministic reference); the ``process`` backend
runs them in worker OS processes over pipes.

The result is a :class:`ClusterReport` — a drop-in
:class:`~repro.engine.runtime.SimulationReport` (states, supersteps,
message counts, aggregates and the *same* simulated latency trace as
``Engine``, charged from the same active fractions) extended with what
the single-process engine cannot measure: per-superstep wall-clock and
actually-observed replica-sync traffic, split remote/local per machine.
The differential test layer holds the measured traffic equal to
:meth:`~repro.engine.placement.Placement.stats`' prediction, turning the
cost model into a validated artifact.

Programs whose kernels don't satisfy the sharding contract (see
:mod:`repro.engine.dense`) — or that have no dense kernel at all — run
on the **fallback path**: the unsharded :class:`~repro.engine.runtime.
Engine` over the reassembled graph, still wrapped in a
:class:`ClusterReport` (with ``sharded=False`` and simulated-only
traffic), so every workload runs through one entry point.

Fault tolerance and elasticity
------------------------------
``ClusterEngine(checkpoint_every=N)`` turns the engine fault-tolerant:
every N completed supersteps it captures a shard-level checkpoint (see
:mod:`repro.cluster.checkpoint`) — per-partition kernel state plus the
coordinator's superstep trail — and when a machine dies mid-superstep
(detected by the transports' bounded waits, or killed deliberately by a
:class:`~repro.cluster.faults.FaultInjector`) the engine rolls back:
teardown, respawn (``on_failure="respawn"``) or redistribution of the
dead machine's shards over the survivors (``"redistribute"``), state
restore, and deterministic replay from the checkpoint boundary.  The
invariant the differential test layer holds: a faulted-and-recovered run
produces **bit-identical** states and aggregates to the unfaulted run.
With ``checkpoint_dir`` set, checkpoints also persist to disk and
:meth:`ClusterEngine.resume` restarts an interrupted run from the last
consistent boundary.  :meth:`ClusterEngine.rebalance` (idle) and
``run(..., rebalance_at=...)`` (live, at a superstep boundary) migrate
shard state verbatim onto a new machine layout — the elastic join/leave
path, built on the same snapshot/restore primitives.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro import obs
from repro.cluster.checkpoint import (
    CheckpointState,
    CheckpointStore,
    RecoveryEvent,
    capture_progress,
)
from repro.cluster.faults import ClusterError, FaultInjector, WorkerDied
from repro.cluster.transport import (
    BACKENDS,
    ProcessTransport,
    SerialTransport,
    SyncStats,
)
from repro.engine.cost import CostModel
from repro.engine.runtime import Engine, SimulationReport
from repro.engine.vertex_program import VertexProgram
from repro.graph.shard import ShardedGraph

#: Recovery policies for a dead machine: respawn the same layout, or
#: redistribute its shards over the surviving machines.
ON_FAILURE = ("respawn", "redistribute")


@dataclass
class SuperstepTelemetry:
    """Measured (not simulated) facts about one superstep."""

    superstep: int
    computed: int
    active_fraction: float
    #: Coordinator wall-clock of the whole superstep (compute + sync).
    wall_ms: float
    #: Slowest shard's kernel-step wall-clock (the BSP straggler).
    compute_ms: float
    #: Whether a replica-sync exchange ran this superstep.
    synced: bool
    remote_messages: int
    local_messages: int
    payload_bytes: int
    remote_per_machine: Dict[int, int] = field(default_factory=dict)
    local_per_machine: Dict[int, int] = field(default_factory=dict)


@dataclass
class ClusterReport(SimulationReport):
    """A :class:`SimulationReport` plus measured cluster telemetry."""

    backend: str = "serial"
    #: False when the program ran on the unsharded fallback path.
    sharded: bool = True
    num_shards: int = 0
    num_machines: int = 1
    #: Total measured wall-clock of the superstep loop (milliseconds).
    wall_ms_total: float = 0.0
    telemetry: List[SuperstepTelemetry] = field(default_factory=list)
    #: Failures detected and rolled back during this run, in order.
    recoveries: List[RecoveryEvent] = field(default_factory=list)
    #: Checkpoints captured (including the initial boundary-0 one).
    checkpoints_written: int = 0
    #: Wall-clock spent capturing/persisting checkpoints (milliseconds).
    checkpoint_wall_ms: float = 0.0

    @property
    def remote_sync_messages(self) -> int:
        return sum(t.remote_messages for t in self.telemetry)

    @property
    def local_sync_messages(self) -> int:
        return sum(t.local_messages for t in self.telemetry)

    @property
    def sync_payload_bytes(self) -> int:
        return sum(t.payload_bytes for t in self.telemetry)


class ClusterEngine:
    """BSP executor over per-partition CSR shards with replica sync.

    Parameters
    ----------
    sharded:
        The sharded graph (any partitioner's assignment — see
        :meth:`~repro.graph.shard.ShardedGraph.from_assignments`).
    cost_model:
        Charges the same simulated latency trace as
        :class:`~repro.engine.runtime.Engine`, so simulated and measured
        time sit side by side in one report.
    backend:
        ``"serial"`` (in-process, deterministic) or ``"process"`` (one
        worker OS process per machine over pipes).
    num_workers:
        Process backend only: number of worker processes to group the
        partitions onto (contiguous blocks).  Defaults to one worker per
        partition, capped at the CPU count.  Machines *are* workers.
    num_machines / machine_of_partition:
        Serial backend only: the logical machine layout used to classify
        sync traffic remote vs. local (defaults to one machine per
        partition).  The process backend derives both from its workers.
    checkpoint_every:
        Capture a shard-level checkpoint every N completed supersteps
        (plus one at boundary 0).  Enables crash recovery: a dead worker
        rolls the run back to the last checkpoint and replays.  ``None``
        (default) disables checkpointing *and* recovery — a worker death
        then raises :class:`~repro.cluster.faults.ClusterError`.
    checkpoint_dir:
        Also persist checkpoints (and the run topology) to this
        directory, enabling :meth:`resume`.  Requires
        ``checkpoint_every``.
    fault_injector:
        Deterministic kill schedule for tests/benchmarks (see
        :mod:`repro.cluster.faults`).
    on_failure:
        ``"respawn"`` (default) rebuilds the same machine layout;
        ``"redistribute"`` reassigns the dead machine's partitions over
        the survivors (elastic shrink) before replaying.
    heartbeat_timeout:
        Process backend: per-reply bound in seconds (liveness is probed
        every poll interval regardless, so crash detection is fast; the
        timeout only catches wedged-but-alive workers).
    max_recoveries:
        Give up with :class:`ClusterError` after this many rollbacks.
    """

    def __init__(self, sharded: ShardedGraph,
                 cost_model: Optional[CostModel] = None,
                 backend: str = "serial",
                 num_workers: Optional[int] = None,
                 num_machines: Optional[int] = None,
                 machine_of_partition: Optional[Mapping[int, int]] = None,
                 checkpoint_every: Optional[int] = None,
                 checkpoint_dir: Optional[str] = None,
                 fault_injector: Optional[FaultInjector] = None,
                 on_failure: str = "respawn",
                 heartbeat_timeout: float = ProcessTransport.DEFAULT_TIMEOUT,
                 max_recoveries: int = 8) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r} (choose from {BACKENDS})")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 (or None)")
        if checkpoint_dir is not None and checkpoint_every is None:
            raise ValueError("checkpoint_dir requires checkpoint_every")
        if on_failure not in ON_FAILURE:
            raise ValueError(
                f"unknown on_failure {on_failure!r} "
                f"(choose from {ON_FAILURE})")
        if heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        if max_recoveries < 0:
            raise ValueError("max_recoveries must be >= 0")
        self.sharded = sharded
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.backend = backend
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        self.fault_injector = fault_injector
        self.on_failure = on_failure
        self.heartbeat_timeout = heartbeat_timeout
        self.max_recoveries = max_recoveries
        partitions = sharded.partitions
        if backend == "process":
            if num_machines is not None or machine_of_partition is not None:
                raise ValueError(
                    "process backend derives machines from its workers; "
                    "pass num_workers instead")
            if num_workers is not None and num_workers < 1:
                raise ValueError("num_workers must be >= 1")
            workers = (num_workers if num_workers is not None
                       else min(len(partitions), os.cpu_count() or 1))
            workers = min(workers, len(partitions))
            self.num_machines = workers
            self.machine_of = self._contiguous_map(partitions, workers)
        else:
            if num_workers is not None:
                raise ValueError("num_workers only applies to the "
                                 "process backend")
            if machine_of_partition is not None:
                self.machine_of = dict(machine_of_partition)
                missing = [p for p in partitions
                           if p not in self.machine_of]
                if missing:
                    raise ValueError(
                        f"partitions without a machine: {missing}")
                self.num_machines = (num_machines if num_machines is not None
                                     else len(set(self.machine_of.values())))
            else:
                machines = (num_machines if num_machines is not None
                            else len(partitions))
                self.machine_of = self._contiguous_map(partitions, machines)
                self.num_machines = machines
        self._refresh_placement()

    @staticmethod
    def _contiguous_map(partitions, num_machines) -> Dict[int, int]:
        from repro.engine.placement import Placement
        return Placement.contiguous_machine_map(partitions, num_machines)

    def _refresh_placement(self) -> None:
        self.placement = self.sharded.placement(
            num_machines=self.num_machines,
            machine_of_partition=self.machine_of)
        self._stats = self.placement.stats()

    @property
    def _recovery_enabled(self) -> bool:
        return self.checkpoint_every is not None

    # ------------------------------------------------------------------
    # Elastic re-sharding
    # ------------------------------------------------------------------
    def _set_machine_map(self, machine_of_partition: Mapping[int, int]
                         ) -> None:
        machine_of = {int(p): int(m)
                      for p, m in machine_of_partition.items()}
        missing = [p for p in self.sharded.partitions
                   if p not in machine_of]
        if missing:
            raise ValueError(f"partitions without a machine: {missing}")
        # Densify machine ids to 0..n-1 (the placement/cost layer indexes
        # machines contiguously).  Order-preserving, so the grouping — the
        # only thing that matters for traffic classification — survives,
        # and master election is by partition id, so states are untouched.
        dense = {m: i for i, m in enumerate(sorted(set(machine_of.values())))}
        self.machine_of = {p: dense[m] for p, m in machine_of.items()}
        self.num_machines = len(dense)
        self._refresh_placement()

    def rebalance(self, machine_of_partition: Mapping[int, int]) -> None:
        """Adopt a new partition -> machine layout (machines joined or
        left).  Takes effect on the next :meth:`run`; for a migration at
        a live superstep boundary pass ``rebalance_at`` to :meth:`run`.
        """
        self._set_machine_map(machine_of_partition)

    def _evict_machine(self, dead: int) -> None:
        """Redistribute the dead machine's partitions over the survivors
        (round-robin in partition order — deterministic)."""
        survivors = sorted(set(self.machine_of.values()) - {dead})
        if not survivors:
            raise ClusterError(
                f"machine {dead} died and no machines survive")
        orphaned = sorted(p for p, m in self.machine_of.items()
                          if m == dead)
        remapped = dict(self.machine_of)
        for index, partition in enumerate(orphaned):
            remapped[partition] = survivors[index % len(survivors)]
        self._set_machine_map(remapped)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, program: VertexProgram,
            max_supersteps: int = 100,
            rebalance_at: Optional[Mapping[int, Mapping[int, int]]] = None
            ) -> ClusterReport:
        """Execute ``program`` until convergence or ``max_supersteps``.

        ``rebalance_at`` maps superstep -> machine layout: when the loop
        reaches that superstep boundary, live shard state is migrated
        verbatim onto the new layout and execution continues (states are
        unaffected; cost classification follows the new layout).
        """
        if max_supersteps < 1:
            raise ValueError("max_supersteps must be >= 1")
        if not self._can_shard(program):
            if rebalance_at:
                raise ValueError(
                    "rebalance_at requires sharded execution; "
                    f"{program.name} runs on the unsharded fallback path")
            return self._run_fallback(program, max_supersteps)
        return self._run_sharded(program, max_supersteps,
                                 rebalance_at=rebalance_at)

    @classmethod
    def resume(cls, checkpoint_dir: str,
               backend: Optional[str] = None,
               num_workers: Optional[int] = None,
               max_supersteps: Optional[int] = None) -> ClusterReport:
        """Restart an interrupted run from its last on-disk checkpoint.

        Rebuilds the engine from ``topology.pkl`` (written by a run with
        ``checkpoint_dir`` set), restores the latest consistent superstep
        boundary, and runs to completion.  ``backend``/``num_workers``
        override the original deployment — the checkpoint is keyed by
        partition, so any layout can resume it.
        """
        store = CheckpointStore(checkpoint_dir, create=False)
        topology = store.read_topology()
        resolved_backend = topology["backend"] if backend is None else backend
        engine = cls(topology["sharded"],
                     cost_model=topology["cost_model"],
                     backend=resolved_backend,
                     num_workers=(num_workers
                                  if resolved_backend == "process" else None),
                     checkpoint_every=topology["checkpoint_every"],
                     checkpoint_dir=checkpoint_dir,
                     heartbeat_timeout=topology["heartbeat_timeout"])
        checkpoint = store.latest()
        if checkpoint is None:
            raise ClusterError(f"no checkpoint found in {checkpoint_dir}")
        if checkpoint.fingerprint != engine.sharded.fingerprint():
            raise ClusterError(
                "checkpoint does not match the sharded graph in "
                f"{checkpoint_dir}")
        if backend is None and num_workers is None:
            engine._set_machine_map(topology["machine_of"])
        return engine._run_sharded(
            topology["program"],
            max_supersteps if max_supersteps is not None
            else topology["max_supersteps"],
            start=checkpoint)

    def _can_shard(self, program: VertexProgram) -> bool:
        if not getattr(program, "shardable", False):
            return False
        if type(program).dense_kernel is VertexProgram.dense_kernel:
            return False
        # A shardable program may still decline a kernel for this graph.
        first = self.sharded.shards[self.sharded.partitions[0]]
        return program.dense_kernel(first.csr) is not None

    def _make_transport(self, program: VertexProgram):
        if self.backend == "process":
            return ProcessTransport(self.sharded, program, self.machine_of,
                                    timeout=self.heartbeat_timeout)
        return SerialTransport(self.sharded, program, self.machine_of)

    def _capture(self, transport, cursor: int, costs, aggregates,
                 telemetry, total_messages: int) -> CheckpointState:
        return CheckpointState(
            cursor=cursor,
            shard_states=transport.snapshot(),
            progress=capture_progress(costs, aggregates, telemetry,
                                      total_messages),
            fingerprint=self.sharded.fingerprint())

    def _topology(self, program: VertexProgram,
                  max_supersteps: int) -> Dict[str, Any]:
        return {"sharded": self.sharded,
                "machine_of": dict(self.machine_of),
                "num_machines": self.num_machines,
                "backend": self.backend,
                "cost_model": self.cost_model,
                "program": program,
                "max_supersteps": max_supersteps,
                "checkpoint_every": self.checkpoint_every,
                "heartbeat_timeout": self.heartbeat_timeout,
                "fingerprint": self.sharded.fingerprint()}

    def _migrate(self, transport, program: VertexProgram,
                 machine_map: Mapping[int, int]):
        """Verbatim live-state migration onto a new machine layout."""
        live = transport.snapshot()
        transport.close()
        self._set_machine_map(machine_map)
        replacement = self._make_transport(program)
        try:
            replacement.restore(live)
        except WorkerDied:
            replacement.close()
            raise
        return replacement

    def _run_sharded(self, program: VertexProgram, max_supersteps: int,
                     start: Optional[CheckpointState] = None,
                     rebalance_at: Optional[
                         Mapping[int, Mapping[int, int]]] = None
                     ) -> ClusterReport:
        """Mirror of ``Engine._run_dense``'s loop, with the per-superstep
        work fanned out to the shards, measured on the way through, and —
        when checkpointing is on — wrapped in rollback recovery."""
        num_vertices = self.sharded.num_vertices
        costs: List[Any] = []
        aggregates: List[Any] = []
        telemetry: List[SuperstepTelemetry] = []
        total_messages = 0
        recoveries: List[RecoveryEvent] = []
        checkpoints_written = 0
        checkpoint_wall_ms = 0.0
        pending_rebalance = dict(rebalance_at or {})
        converged = False
        superstep = 0
        store = (CheckpointStore(self.checkpoint_dir)
                 if self.checkpoint_dir else None)
        last_checkpoint = start
        transport = self._make_transport(program)
        initialized = False
        try:
            while True:
                try:
                    if not initialized:
                        if start is not None:
                            transport.restore(start.shard_states)
                            superstep = start.cursor
                            self._install_progress(start, costs,
                                                   aggregates, telemetry)
                            total_messages = start.progress["messages"]
                        elif self._recovery_enabled:
                            if store is not None:
                                store.write_topology(
                                    self._topology(program, max_supersteps))
                            checkpoint_start = time.perf_counter()
                            last_checkpoint = self._capture(
                                transport, 0, costs, aggregates, telemetry,
                                total_messages)
                            if store is not None:
                                store.write(last_checkpoint)
                            checkpoints_written += 1
                            checkpoint_wall_ms += (
                                time.perf_counter() - checkpoint_start
                            ) * 1000.0
                        initialized = True
                    while superstep < max_supersteps:
                        if superstep in pending_rebalance:
                            transport = self._migrate(
                                transport, program,
                                pending_rebalance.pop(superstep))
                        computed = transport.compute_owned()
                        if computed == 0:
                            converged = True
                            break
                        step_start = time.perf_counter()
                        with obs.span("cluster.superstep",
                                      backend=transport.backend,
                                      superstep=superstep,
                                      active=computed):
                            result = transport.step(superstep,
                                                    self.fault_injector)
                        wall_ms = (time.perf_counter() - step_start) * 1000.0
                        active_fraction = (computed / num_vertices
                                           if num_vertices else 0.0)
                        costs.append(self.cost_model.superstep_cost(
                            self._stats, active_fraction))
                        aggregates.append(result.aggregate)
                        total_messages += result.sent
                        stats: SyncStats = result.stats
                        if obs.is_enabled():
                            # SyncStats re-expressed as registry series —
                            # the dataclass itself stays untouched, so the
                            # measured-vs-predicted suites see identical
                            # values.
                            backend = transport.backend
                            obs.counter("repro_cluster_supersteps_total",
                                        backend=backend).inc()
                            obs.counter("repro_cluster_remote_messages_total",
                                        backend=backend
                                        ).inc(stats.remote_messages)
                            obs.counter("repro_cluster_local_messages_total",
                                        backend=backend
                                        ).inc(stats.local_messages)
                            obs.counter("repro_cluster_payload_bytes_total",
                                        backend=backend
                                        ).inc(stats.payload_bytes)
                            obs.histogram("repro_cluster_superstep_seconds",
                                          backend=backend
                                          ).observe(wall_ms / 1000.0)
                        telemetry.append(SuperstepTelemetry(
                            superstep=superstep,
                            computed=computed,
                            active_fraction=active_fraction,
                            wall_ms=wall_ms,
                            compute_ms=result.compute_seconds * 1000.0,
                            synced=result.synced,
                            remote_messages=stats.remote_messages,
                            local_messages=stats.local_messages,
                            payload_bytes=stats.payload_bytes,
                            remote_per_machine=dict(stats.remote_per_machine),
                            local_per_machine=dict(stats.local_per_machine),
                        ))
                        superstep += 1
                        if (self.checkpoint_every is not None
                                and superstep % self.checkpoint_every == 0):
                            checkpoint_start = time.perf_counter()
                            last_checkpoint = self._capture(
                                transport, superstep, costs, aggregates,
                                telemetry, total_messages)
                            if store is not None:
                                store.write(last_checkpoint)
                            checkpoints_written += 1
                            checkpoint_wall_ms += (
                                time.perf_counter() - checkpoint_start
                            ) * 1000.0
                        if program.should_stop(result.aggregate, superstep):
                            converged = True
                            break
                    else:
                        converged = transport.compute_owned() == 0
                    states = transport.states()
                    break
                except WorkerDied as death:
                    if not self._recovery_enabled:
                        raise
                    if len(recoveries) >= self.max_recoveries:
                        raise ClusterError(
                            f"giving up after {len(recoveries)} recoveries "
                            f"(machine {death.machine}: {death.reason})"
                        ) from death
                    recovery_start = time.perf_counter()
                    transport.close()
                    if self.on_failure == "redistribute":
                        self._evict_machine(death.machine)
                    transport = self._make_transport(program)
                    detected_at = superstep
                    del costs[:], aggregates[:], telemetry[:]
                    if last_checkpoint is not None:
                        transport.restore(last_checkpoint.shard_states)
                        superstep = last_checkpoint.cursor
                        self._install_progress(last_checkpoint, costs,
                                               aggregates, telemetry)
                        total_messages = (
                            last_checkpoint.progress["messages"])
                    else:
                        # Death before the boundary-0 checkpoint finished:
                        # nothing committed yet, start over from scratch.
                        initialized = False
                        superstep = 0
                        total_messages = 0
                    converged = False
                    recoveries.append(RecoveryEvent(
                        machine=death.machine,
                        reason=death.reason,
                        superstep_detected=detected_at,
                        resumed_from=superstep,
                        wall_ms=(time.perf_counter() - recovery_start)
                        * 1000.0))
        finally:
            transport.close()
        return ClusterReport(
            algorithm=program.name,
            supersteps=len(costs),
            latency_ms=sum(c.total_ms for c in costs),
            superstep_costs=costs,
            states=states,
            messages_sent=total_messages,
            converged=converged,
            aggregates=aggregates,
            backend=transport.backend,
            sharded=True,
            num_shards=len(self.sharded.partitions),
            num_machines=self.num_machines,
            wall_ms_total=sum(t.wall_ms for t in telemetry),
            telemetry=telemetry,
            recoveries=recoveries,
            checkpoints_written=checkpoints_written,
            checkpoint_wall_ms=checkpoint_wall_ms,
        )

    @staticmethod
    def _install_progress(checkpoint: CheckpointState, costs, aggregates,
                          telemetry) -> None:
        costs.extend(checkpoint.progress["costs"])
        aggregates.extend(checkpoint.progress["aggregates"])
        telemetry.extend(checkpoint.progress["telemetry"])

    def _run_fallback(self, program: VertexProgram,
                      max_supersteps: int) -> ClusterReport:
        """Unsharded execution for programs outside the sharding contract:
        the ordinary engine over the reassembled graph (dense where the
        program has a kernel, object otherwise), measured wall included."""
        engine = Engine(self.sharded.to_graph(), self.placement,
                        self.cost_model, mode="dense")
        start = time.perf_counter()
        report = engine.run(program, max_supersteps=max_supersteps)
        wall_ms = (time.perf_counter() - start) * 1000.0
        return ClusterReport(
            algorithm=report.algorithm,
            supersteps=report.supersteps,
            latency_ms=report.latency_ms,
            superstep_costs=report.superstep_costs,
            states=report.states,
            messages_sent=report.messages_sent,
            converged=report.converged,
            aggregates=report.aggregates,
            backend=self.backend,
            sharded=False,
            num_shards=len(self.sharded.partitions),
            num_machines=self.num_machines,
            wall_ms_total=wall_ms,
            telemetry=[],
        )
