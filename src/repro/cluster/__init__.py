"""Sharded distributed BSP runtime (real multi-process graph processing).

Where :class:`~repro.engine.runtime.Engine` *simulates* a cluster's
latency on one unsharded graph, this package *executes* the
PowerGraph-style master/mirror model the simulation stands in for:
:class:`~repro.graph.shard.ShardedGraph` splits any edge -> partition
assignment into per-partition CSR shards, and :class:`ClusterEngine`
runs BSP supersteps shard-locally (reusing the programs' dense kernels)
with gather-to-master / scatter-to-mirrors replica synchronisation
between supersteps — in-process (``serial``) or across worker OS
processes (``process``) — while measuring wall-clock and the actual
remote/local sync traffic next to the simulated latency.

The runtime is fault-tolerant and elastic: ``checkpoint_every`` enables
shard-level checkpoints (:mod:`repro.cluster.checkpoint`) and rollback
recovery from worker deaths — detected by bounded waits or injected
deterministically by a :class:`FaultInjector`
(:mod:`repro.cluster.faults`) — and ``ClusterEngine.rebalance`` /
``run(..., rebalance_at=...)`` migrate live shard state onto a new
machine layout.
"""

from repro.cluster.checkpoint import (
    CheckpointState,
    CheckpointStore,
    RecoveryEvent,
)
from repro.cluster.faults import (
    INJECTION_POINTS,
    ClusterError,
    FaultInjector,
    Kill,
    WorkerDied,
)
from repro.cluster.runtime import (
    ON_FAILURE,
    ClusterEngine,
    ClusterReport,
    SuperstepTelemetry,
)
from repro.cluster.transport import (
    BACKENDS,
    ProcessTransport,
    SerialTransport,
    SyncStats,
)
from repro.graph.shard import Shard, ShardCSR, ShardedGraph

__all__ = [
    "BACKENDS",
    "INJECTION_POINTS",
    "ON_FAILURE",
    "CheckpointState",
    "CheckpointStore",
    "ClusterEngine",
    "ClusterError",
    "ClusterReport",
    "FaultInjector",
    "Kill",
    "ProcessTransport",
    "RecoveryEvent",
    "SerialTransport",
    "Shard",
    "ShardCSR",
    "ShardedGraph",
    "SuperstepTelemetry",
    "SyncStats",
    "WorkerDied",
]
