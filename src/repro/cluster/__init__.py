"""Sharded distributed BSP runtime (real multi-process graph processing).

Where :class:`~repro.engine.runtime.Engine` *simulates* a cluster's
latency on one unsharded graph, this package *executes* the
PowerGraph-style master/mirror model the simulation stands in for:
:class:`~repro.graph.shard.ShardedGraph` splits any edge -> partition
assignment into per-partition CSR shards, and :class:`ClusterEngine`
runs BSP supersteps shard-locally (reusing the programs' dense kernels)
with gather-to-master / scatter-to-mirrors replica synchronisation
between supersteps — in-process (``serial``) or across worker OS
processes (``process``) — while measuring wall-clock and the actual
remote/local sync traffic next to the simulated latency.
"""

from repro.cluster.runtime import (
    ClusterEngine,
    ClusterReport,
    SuperstepTelemetry,
)
from repro.cluster.transport import (
    BACKENDS,
    ProcessTransport,
    SerialTransport,
    SyncStats,
)
from repro.graph.shard import Shard, ShardCSR, ShardedGraph

__all__ = [
    "BACKENDS",
    "ClusterEngine",
    "ClusterReport",
    "ProcessTransport",
    "SerialTransport",
    "Shard",
    "ShardCSR",
    "ShardedGraph",
    "SuperstepTelemetry",
    "SyncStats",
]
