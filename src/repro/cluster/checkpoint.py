"""Shard-level checkpoints for the cluster runtime.

A checkpoint is taken at a **superstep boundary** — after a superstep's
compute and replica sync have both completed, before the next superstep's
masks are computed.  At that point every replica of every vertex holds
the combined (globally consistent) value and no sync payload is in
flight, so the per-shard kernel states alone are a consistent cut of the
whole computation: restoring them and replaying from the boundary
reproduces the unfaulted run bit-for-bit (the PR-2 ``StateSnapshot``
idiom, applied to execution state instead of partitioner state).

A :class:`CheckpointState` carries

* ``cursor`` — the number of completed supersteps;
* ``shard_states`` — per-partition kernel state dicts (every non-array
  attribute plus copies of every numpy array, captured by
  ``ShardRunner.snapshot``), keyed by **partition** rather than machine
  so the same checkpoint restores onto any machine layout — the property
  that makes failure redistribution and elastic re-sharding work;
* ``progress`` — the coordinator-side superstep trail (costs,
  aggregates, telemetry, message totals) so a resumed report is
  indistinguishable from an uninterrupted one;
* ``fingerprint`` — the :meth:`~repro.graph.shard.ShardedGraph.
  fingerprint` of the sharding it was taken from, verified on restore.

:class:`CheckpointStore` persists checkpoints under a directory —
``topology.pkl`` (the sharded graph, program and engine configuration,
written once per run) plus ``ckpt_<cursor>.pkl`` files, all written
atomically (temp file + ``os.replace``) so a crash mid-write can never
corrupt the latest restorable state.  ``ClusterEngine.resume(path)``
needs nothing else.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class RecoveryEvent:
    """One detected failure and the rollback that answered it."""

    #: Machine whose death was detected.
    machine: int
    #: Human-readable detection reason (exit code, timeout, injector).
    reason: str
    #: Superstep cursor when the death was detected.
    superstep_detected: int
    #: Checkpoint cursor execution rolled back to.
    resumed_from: int
    #: Wall-clock of the rollback itself (teardown + respawn + restore).
    wall_ms: float

    @property
    def supersteps_lost(self) -> int:
        """Completed supersteps that must be replayed."""
        return self.superstep_detected - self.resumed_from


@dataclass
class CheckpointState:
    """A consistent cut of a cluster run at a superstep boundary."""

    cursor: int
    shard_states: Dict[int, Dict[str, Any]]
    progress: Dict[str, Any]
    fingerprint: str = ""


def _atomic_pickle(path: str, payload: Any) -> None:
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)


def _read_pickle(path: str) -> Any:
    with open(path, "rb") as handle:
        return pickle.load(handle)


class CheckpointStore:
    """Directory-backed checkpoint persistence with atomic writes."""

    TOPOLOGY = "topology.pkl"
    PREFIX = "ckpt_"
    SUFFIX = ".pkl"

    def __init__(self, directory: str, create: bool = True) -> None:
        self.directory = str(directory)
        if create:
            os.makedirs(self.directory, exist_ok=True)
        elif not os.path.isdir(self.directory):
            raise FileNotFoundError(
                f"checkpoint directory not found: {self.directory}")

    # -- topology (written once per run) --------------------------------
    def write_topology(self, payload: Dict[str, Any]) -> str:
        path = os.path.join(self.directory, self.TOPOLOGY)
        _atomic_pickle(path, payload)
        return path

    def read_topology(self) -> Dict[str, Any]:
        path = os.path.join(self.directory, self.TOPOLOGY)
        if not os.path.isfile(path):
            raise FileNotFoundError(f"no run topology in {self.directory}")
        return _read_pickle(path)

    # -- checkpoints ----------------------------------------------------
    def _path(self, cursor: int) -> str:
        return os.path.join(self.directory,
                            f"{self.PREFIX}{cursor:06d}{self.SUFFIX}")

    def write(self, state: CheckpointState) -> str:
        path = self._path(state.cursor)
        _atomic_pickle(path, state)
        return path

    def cursors(self) -> List[int]:
        """Cursors of every stored checkpoint, ascending."""
        found = []
        for name in os.listdir(self.directory):
            if name.startswith(self.PREFIX) and name.endswith(self.SUFFIX):
                middle = name[len(self.PREFIX):-len(self.SUFFIX)]
                if middle.isdigit():
                    found.append(int(middle))
        return sorted(found)

    def load(self, cursor: int) -> CheckpointState:
        return _read_pickle(self._path(cursor))

    def latest(self) -> Optional[CheckpointState]:
        """The checkpoint with the highest cursor, or ``None``."""
        cursors = self.cursors()
        if not cursors:
            return None
        return self.load(cursors[-1])


#: Progress-dict keys a checkpoint carries (one place, so capture and
#: restore can never drift).
PROGRESS_KEYS = ("costs", "aggregates", "telemetry", "messages")


def capture_progress(costs: List[Any], aggregates: List[Any],
                     telemetry: List[Any], messages: int) -> Dict[str, Any]:
    return {"costs": list(costs), "aggregates": list(aggregates),
            "telemetry": list(telemetry), "messages": int(messages)}
