"""Failure model and deterministic fault injection for the cluster runtime.

The paper's distributed setting assumes machines that fail and rejoin
mid-computation; this module gives the runtime a *named* failure model so
recovery can be tested as a CI-gated property instead of hoped for:

* :class:`ClusterError` / :class:`WorkerDied` — the runtime's failure
  vocabulary.  Every bounded wait in
  :class:`~repro.cluster.transport.ProcessTransport` raises
  :class:`WorkerDied` carrying the dead machine's id instead of hanging
  on a pipe, whether the worker was SIGKILLed from outside or killed by
  an injector.
* :data:`INJECTION_POINTS` — the catalog of superstep positions where a
  machine may be killed.  The points bracket the replica-sync exchange
  (the only moment shards hold mutually inconsistent partial state), so
  together they cover every distinct crash consistency class one BSP
  superstep has:

  - ``pre-gather``  — shard kernels have stepped, partial per-target
    combinations exist locally, nothing has been exchanged;
  - ``mid-scatter`` — mirror partials were folded at the masters, but
    the combined slices have not been broadcast back;
  - ``post-apply``  — the superstep fully committed; the crash lands
    between the commit and the next checkpoint decision.

* :class:`FaultInjector` — a deterministic (optionally seeded) kill
  schedule.  The transports consult it at each injection point and
  SIGKILL (process backend) or mark dead (serial backend) the named
  machine.  A schedule entry fires **once**: replayed supersteps after a
  recovery run unfaulted, so any schedule terminates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

#: Superstep positions where a fault may be injected, in execution order.
INJECTION_POINTS: Tuple[str, ...] = ("pre-gather", "mid-scatter",
                                     "post-apply")


class ClusterError(RuntimeError):
    """A cluster run failed in a way the runtime could not recover from."""


class WorkerDied(ClusterError):
    """A specific machine stopped responding (crash, SIGKILL, timeout).

    Raised by the transports' bounded waits; the engine's recovery layer
    catches it and rolls back to the last checkpoint when recovery is
    enabled, otherwise it propagates to the caller — an error with the
    dead machine's id, never a silent hang.
    """

    def __init__(self, machine: int, reason: str) -> None:
        super().__init__(f"cluster machine {machine} died: {reason}")
        self.machine = machine
        self.reason = reason


@dataclass(frozen=True)
class Kill:
    """Kill ``machine`` when superstep ``superstep`` reaches ``point``.

    ``mid-scatter`` only exists on syncing supersteps (a superstep with
    no replica exchange has no scatter to interrupt); an entry aimed at a
    non-syncing superstep's scatter simply never fires.
    """

    superstep: int
    point: str
    machine: int

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r} "
                f"(choose from {INJECTION_POINTS})")
        if self.superstep < 0:
            raise ValueError("superstep must be >= 0")


class FaultInjector:
    """A deterministic kill schedule consulted at every injection point.

    The schedule is fixed at construction (explicitly, or drawn from a
    seeded RNG by :meth:`random`), so a faulted run is exactly
    reproducible.  Entries are consumed when they fire — ``fired`` keeps
    the audit trail — which guarantees the post-recovery replay of the
    same superstep runs clean.
    """

    def __init__(self, kills: Iterable[Kill] = ()) -> None:
        self._pending: List[Kill] = list(kills)
        for kill in self._pending:
            if not isinstance(kill, Kill):
                raise TypeError(f"expected Kill, got {type(kill).__name__}")
        #: Entries that have fired, in firing order.
        self.fired: List[Kill] = []

    @classmethod
    def random(cls, seed: int, num_machines: int, kills: int = 1,
               max_superstep: int = 6,
               points: Sequence[str] = INJECTION_POINTS) -> "FaultInjector":
        """A seeded random schedule of ``kills`` kill events."""
        if num_machines < 1:
            raise ValueError("num_machines must be >= 1")
        rng = random.Random(seed)
        schedule = [Kill(superstep=rng.randint(0, max_superstep),
                         point=rng.choice(list(points)),
                         machine=rng.randrange(num_machines))
                    for _ in range(kills)]
        return cls(schedule)

    @property
    def pending(self) -> Tuple[Kill, ...]:
        return tuple(self._pending)

    def check(self, point: str, superstep: int) -> Optional[int]:
        """Machine to kill at ``(point, superstep)``, consuming the entry
        (``None`` when the schedule has nothing here)."""
        for index, kill in enumerate(self._pending):
            if kill.point == point and kill.superstep == superstep:
                self._pending.pop(index)
                self.fired.append(kill)
                return kill.machine
        return None
