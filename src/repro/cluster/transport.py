"""Replica-sync transports for the sharded cluster runtime.

Each BSP superstep runs every shard's dense kernel locally, producing
*partial* per-target message combinations (partial sums / mins / counts
over the shard's own adjacency slots).  The transport then performs the
PowerGraph synchronisation round that makes replicas globally consistent:

* **gather** — every mirror replica sends its partial (value, received)
  slice to the vertex's master partition, which folds the contributions
  in ascending partition order (master's own partial first — a fixed
  association, so the serial and process backends are bit-identical);
* **scatter** — the master broadcasts the combined slice back to every
  mirror, which overwrites its local arrays in place.

Both directions move one logical message per shared vertex per channel,
so a syncing superstep carries exactly ``2 · (span − 1)`` messages per
replicated vertex — the quantity
:meth:`repro.engine.placement.Placement.stats` predicts.  The transports
*measure* rather than assume it: every applied payload is recorded as
remote (endpoint partitions on different machines) or local (same
machine) message counts per machine, plus payload bytes, and the
differential test layer holds the measurement equal to the prediction.

Two backends share the exchange logic through :class:`ShardGroup`:

* :class:`SerialTransport` — all shards in this process, stepped
  sequentially.  Deterministic reference semantics; "machines" are the
  logical machine map used for remote/local classification.
* :class:`ProcessTransport` — shards grouped onto worker OS processes
  (one worker per partition by default), long-lived over
  ``multiprocessing`` pipes.  The pickle boundary is narrow, PR-2 style:
  shard arrays ship once at start-up, then only channel slices and small
  telemetry tuples cross per superstep.  Machines *are* the workers, so
  remote messages are exactly the payloads that crossed a pipe.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.engine.dense import DenseKernel
from repro.engine.vertex_program import VertexProgram
from repro.graph.shard import Shard, ShardedGraph

#: Transport backends understood by :class:`~repro.cluster.runtime.ClusterEngine`.
BACKENDS = ("serial", "process")


@dataclass
class SyncStats:
    """Measured replica-sync traffic of one superstep."""

    remote_messages: int = 0
    local_messages: int = 0
    payload_bytes: int = 0
    remote_per_machine: Dict[int, int] = field(default_factory=dict)
    local_per_machine: Dict[int, int] = field(default_factory=dict)

    def record(self, src_part: int, dst_part: int, messages: int,
               nbytes: int, machine_of: Mapping[int, int]) -> None:
        """Record ``messages`` flowing ``src_part -> dst_part``.

        Mirrors the prediction's accounting: every message charges *both*
        endpoint machines, and counts as remote only when the endpoints'
        machines differ.
        """
        src_machine = machine_of[src_part]
        dst_machine = machine_of[dst_part]
        self.payload_bytes += nbytes
        if src_machine == dst_machine:
            self.local_messages += messages
            self.local_per_machine[src_machine] = (
                self.local_per_machine.get(src_machine, 0) + messages)
            self.local_per_machine[dst_machine] = (
                self.local_per_machine.get(dst_machine, 0) + messages)
        else:
            self.remote_messages += messages
            self.remote_per_machine[src_machine] = (
                self.remote_per_machine.get(src_machine, 0) + messages)
            self.remote_per_machine[dst_machine] = (
                self.remote_per_machine.get(dst_machine, 0) + messages)

    def merge(self, other: "SyncStats") -> None:
        self.remote_messages += other.remote_messages
        self.local_messages += other.local_messages
        self.payload_bytes += other.payload_bytes
        for machine, count in other.remote_per_machine.items():
            self.remote_per_machine[machine] = (
                self.remote_per_machine.get(machine, 0) + count)
        for machine, count in other.local_per_machine.items():
            self.local_per_machine[machine] = (
                self.local_per_machine.get(machine, 0) + count)


@dataclass
class _PendingSync:
    """One shard's deferred scatter: local partials awaiting replica sync.

    The kernel stores the exact arrays below into its message buffers
    (``has_msg``, ``incoming``, ...), so in-place mutation after the
    barrier updates the kernel's state for the next superstep.
    """

    kind: str  # "sum" | "min" | "count"
    values: np.ndarray
    recv: np.ndarray


class ShardRunner:
    """One shard's kernel plus the replica-sync interception layer.

    The program's own :class:`~repro.engine.dense.DenseKernel` runs
    unmodified over the shard CSR; the runner rebinds its scatter helpers
    so each per-target combination is computed over *local* slots only
    and parked as a :class:`_PendingSync` for the transport, and rebinds
    ``sent_from`` to count sends from the shard-local adjacency lists
    (``csr.degrees`` on a shard is the logical global degree).
    """

    def __init__(self, shard: Shard, program: VertexProgram) -> None:
        kernel = program.dense_kernel(shard.csr)
        if kernel is None:
            raise ValueError(
                f"{program.name}: dense_kernel returned None; sharded "
                "execution needs a dense kernel")
        kernel.owned = shard.owned.copy()
        # Instance-attribute rebinding: kernels invoke the helpers via
        # ``self.scatter_*`` / ``self.sent_from``, so these shadow the
        # class methods for this kernel only.
        kernel.scatter_sum = self._scatter_sum
        kernel.scatter_min = self._scatter_min
        kernel.scatter_count = self._scatter_count
        kernel.sent_from = self._sent_from
        self.shard = shard
        self.kernel = kernel
        self.pending: Optional[_PendingSync] = None
        self._mask: Optional[np.ndarray] = None

    # -- intercepted kernel helpers ------------------------------------
    def _sent_from(self, send_mask: np.ndarray) -> int:
        return int(self.shard.csr.local_degrees[send_mask].sum())

    def _park(self, kind: str, values: np.ndarray,
              recv: np.ndarray) -> None:
        if self.pending is not None:
            raise RuntimeError(
                "sharded kernel protocol violation: more than one scatter "
                "per superstep (see repro.engine.dense)")
        self.pending = _PendingSync(kind, values, recv)

    def _scatter_sum(self, send_mask: np.ndarray,
                     values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        # The base helpers already combine over this shard's local slots
        # (the kernel's csr *is* the shard CSR); the interception only
        # parks the result for the replica-sync barrier.
        recv, sums = DenseKernel.scatter_sum(self.kernel, send_mask,
                                             values)
        self._park("sum", sums, recv)
        return recv, sums

    def _scatter_min(self, send_mask: np.ndarray, values: np.ndarray,
                     sentinel: Any) -> Tuple[np.ndarray, np.ndarray]:
        recv, mins = DenseKernel.scatter_min(self.kernel, send_mask,
                                             values, sentinel)
        self._park("min", mins, recv)
        return recv, mins

    def _scatter_count(self, send_mask: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray]:
        recv, counts = DenseKernel.scatter_count(self.kernel, send_mask)
        self._park("count", counts, recv)
        return recv, counts

    # -- superstep protocol --------------------------------------------
    def begin_superstep(self) -> int:
        """Compute this superstep's mask; return the owned computed count."""
        self._mask = self.kernel.compute_mask()
        return int((self._mask & self.shard.owned).sum())

    def step(self, superstep: int) -> Tuple[int, Any, float]:
        """Run the kernel step; return (sent, aggregate, compute_seconds)."""
        self.pending = None
        start = time.perf_counter()
        sent, aggregate = self.kernel.step(superstep, self._mask)
        return int(sent), aggregate, time.perf_counter() - start

    def states(self) -> Dict[int, Any]:
        """Final states of the vertices mastered on this shard."""
        owned_ids = set(
            self.shard.csr.vertex_ids[self.shard.owned].tolist())
        return {vertex: state
                for vertex, state in self.kernel.states().items()
                if vertex in owned_ids}


#: A routed sync payload: (dst_partition, src_partition, values, recv).
_Payload = Tuple[int, int, np.ndarray, np.ndarray]


@dataclass
class GroupStepResult:
    sent: int
    aggregate: Any
    compute_seconds: float
    syncing: bool


def _reduce_aggregates(parts: Iterable[Any]) -> Any:
    """Sum non-``None`` contributions; ``None`` when nothing contributed
    (exactly the object path's aggregate folding)."""
    total: Any = None
    for part in parts:
        if part is not None:
            total = part if total is None else total + part
    return total


class ShardGroup:
    """A set of shard runners co-hosted in one process ("machine").

    The serial backend uses a single group for all shards; the process
    backend gives each worker one group.  Sync payloads between two
    shards of the same group never leave the process and are counted as
    *local* traffic; cross-group payloads are routed by the coordinator
    and counted as *remote* — the machine map and the host map coincide.
    """

    def __init__(self, shards: List[Shard], program: VertexProgram,
                 machine_of: Mapping[int, int],
                 host_of: Mapping[int, int], host: int) -> None:
        self.runners = {shard.partition: ShardRunner(shard, program)
                        for shard in shards}
        self.machine_of = dict(machine_of)
        self.host_of = dict(host_of)
        self.host = host
        self._staged: List[_Payload] = []
        self.stats = SyncStats()

    # -- superstep ------------------------------------------------------
    def compute_owned(self) -> int:
        return sum(runner.begin_superstep()
                   for _, runner in sorted(self.runners.items()))

    def step(self, superstep: int) -> GroupStepResult:
        self.stats = SyncStats()
        self._staged = []
        sent = 0
        aggregates = []
        compute = 0.0
        syncing: Optional[bool] = None
        for _, runner in sorted(self.runners.items()):
            shard_sent, aggregate, seconds = runner.step(superstep)
            sent += shard_sent
            aggregates.append(aggregate)
            compute = max(compute, seconds)
            shard_syncing = runner.pending is not None
            if syncing is None:
                syncing = shard_syncing
            elif syncing != shard_syncing:
                raise RuntimeError(
                    "shards disagree on whether this superstep syncs — "
                    "non-deterministic kernel")
        return GroupStepResult(sent=sent,
                               aggregate=_reduce_aggregates(aggregates),
                               compute_seconds=compute,
                               syncing=bool(syncing))

    # -- gather phase ---------------------------------------------------
    def collect_gathers(self) -> Dict[int, List[_Payload]]:
        """Mirror -> master slices, keyed by destination host.  Payloads
        for this host are staged internally instead of returned."""
        outbound: Dict[int, List[_Payload]] = {}
        for src, runner in sorted(self.runners.items()):
            pending = runner.pending
            if pending is None:
                continue
            for dst, idx in sorted(runner.shard.mirror_channels.items()):
                payload: _Payload = (dst, src, pending.values[idx],
                                     pending.recv[idx])
                host = self.host_of[dst]
                if host == self.host:
                    self._staged.append(payload)
                else:
                    outbound.setdefault(host, []).append(payload)
        return outbound

    def apply_gathers(self, inbound: List[_Payload]) -> None:
        """Fold mirror partials into the masters' pending arrays.

        Association is fixed — the master's own partial is the base, then
        contributions in ascending mirror-partition order — so serial and
        process backends produce bit-identical combined values.
        """
        by_master: Dict[int, Dict[int, Tuple[np.ndarray, np.ndarray]]] = {}
        for dst, src, values, recv in self._staged + inbound:
            by_master.setdefault(dst, {})[src] = (values, recv)
        self._staged = []
        for dst in sorted(by_master):
            runner = self.runners[dst]
            pending = runner.pending
            for src in sorted(by_master[dst]):
                values, recv = by_master[dst][src]
                idx = runner.shard.master_channels[src]
                if pending.kind == "min":
                    pending.values[idx] = np.minimum(pending.values[idx],
                                                     values)
                else:  # "sum" / "count" combine additively
                    pending.values[idx] = pending.values[idx] + values
                pending.recv[idx] |= recv
                self.stats.record(src, dst, len(idx),
                                  values.nbytes + recv.nbytes,
                                  self.machine_of)

    # -- scatter phase --------------------------------------------------
    def collect_scatters(self) -> Dict[int, List[_Payload]]:
        """Master -> mirror combined slices, keyed by destination host."""
        outbound: Dict[int, List[_Payload]] = {}
        for src, runner in sorted(self.runners.items()):
            pending = runner.pending
            if pending is None:
                continue
            for dst, idx in sorted(runner.shard.master_channels.items()):
                payload: _Payload = (dst, src, pending.values[idx],
                                     pending.recv[idx])
                host = self.host_of[dst]
                if host == self.host:
                    self._staged.append(payload)
                else:
                    outbound.setdefault(host, []).append(payload)
        return outbound

    def apply_scatters(self, inbound: List[_Payload]) -> None:
        """Overwrite mirrors' pending arrays with the combined values."""
        for dst, src, values, recv in self._staged + inbound:
            runner = self.runners[dst]
            pending = runner.pending
            idx = runner.shard.mirror_channels[src]
            pending.values[idx] = values
            pending.recv[idx] = recv
            self.stats.record(src, dst, len(idx),
                              values.nbytes + recv.nbytes,
                              self.machine_of)
        self._staged = []

    # -- results --------------------------------------------------------
    def states(self) -> Dict[int, Any]:
        merged: Dict[int, Any] = {}
        for _, runner in sorted(self.runners.items()):
            merged.update(runner.states())
        return merged


@dataclass
class TransportStepResult:
    """One superstep as seen by the coordinator."""

    sent: int
    aggregate: Any
    compute_seconds: float
    synced: bool
    stats: SyncStats


class SerialTransport:
    """All shards in this process, stepped sequentially — the
    deterministic reference backend the process backend is tested
    against.  The machine map is purely logical here (default: one
    machine per partition) and only classifies traffic."""

    backend = "serial"

    def __init__(self, sharded: ShardedGraph, program: VertexProgram,
                 machine_of: Mapping[int, int]) -> None:
        shards = [sharded.shards[p] for p in sharded.partitions]
        # Single host: every partition is host 0; remote/local
        # classification still follows the logical machine map.
        host_of = {p: 0 for p in sharded.partitions}
        self.group = ShardGroup(shards, program, machine_of, host_of,
                                host=0)
        self.num_hosts = 1

    def compute_owned(self) -> int:
        return self.group.compute_owned()

    def step(self, superstep: int) -> TransportStepResult:
        result = self.group.step(superstep)
        if result.syncing:
            outbound = self.group.collect_gathers()
            assert not outbound, "serial transport routed off-host"
            self.group.apply_gathers([])
            outbound = self.group.collect_scatters()
            assert not outbound, "serial transport routed off-host"
            self.group.apply_scatters([])
        return TransportStepResult(sent=result.sent,
                                   aggregate=result.aggregate,
                                   compute_seconds=result.compute_seconds,
                                   synced=result.syncing,
                                   stats=self.group.stats)

    def states(self) -> Dict[int, Any]:
        return self.group.states()

    def close(self) -> None:
        pass


def _cluster_worker(conn, shards: List[Shard], program: VertexProgram,
                    machine_of: Dict[int, int], host_of: Dict[int, int],
                    host: int) -> None:
    """Worker process main loop: one :class:`ShardGroup`, command-driven.

    Commands are small tuples; sync payloads are numpy slices.  The
    worker stages intra-host payloads itself and only ships cross-host
    slices back to the coordinator for routing.
    """
    group = ShardGroup(shards, program, machine_of, host_of, host)
    while True:
        message = conn.recv()
        op = message[0]
        if op == "mask":
            conn.send(group.compute_owned())
        elif op == "step":
            result = group.step(message[1])
            outbound = (group.collect_gathers() if result.syncing else {})
            conn.send((result.sent, result.aggregate,
                       result.compute_seconds, result.syncing, outbound))
        elif op == "gather":
            group.apply_gathers(message[1])
            conn.send(group.collect_scatters())
        elif op == "scatter":
            group.apply_scatters(message[1])
            conn.send(group.stats)
        elif op == "states":
            conn.send(group.states())
        elif op == "stop":
            conn.close()
            return
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown cluster worker op {op!r}")


class ProcessTransport:
    """One long-lived worker process per host, shards grouped onto hosts.

    The default deployment is one worker per partition (hosts ==
    partitions); ``num_workers`` groups partitions onto fewer workers in
    contiguous blocks, exactly like
    :meth:`~repro.engine.placement.Placement.contiguous_machine_map` —
    and the machine map *is* the worker map, so measured remote traffic
    is precisely the payload volume that crossed a process boundary.
    """

    backend = "process"

    def __init__(self, sharded: ShardedGraph, program: VertexProgram,
                 machine_of: Mapping[int, int]) -> None:
        partitions = sharded.partitions
        self.machine_of = dict(machine_of)
        hosts = sorted(set(self.machine_of.values()))
        self.num_hosts = len(hosts)
        context = mp.get_context()
        self._processes = []
        self._conns = {}
        try:
            for host in hosts:
                parent_conn, child_conn = context.Pipe()
                shards = [sharded.shards[p] for p in partitions
                          if self.machine_of[p] == host]
                process = context.Process(
                    target=_cluster_worker,
                    args=(child_conn, shards, program, self.machine_of,
                          self.machine_of, host),
                    daemon=True)
                process.start()
                child_conn.close()
                self._processes.append(process)
                self._conns[host] = parent_conn
        except Exception:
            self.close()
            raise

    def _broadcast(self, message) -> Dict[int, Any]:
        for conn in self._conns.values():
            conn.send(message)
        return {host: conn.recv() for host, conn in self._conns.items()}

    def compute_owned(self) -> int:
        return sum(self._broadcast(("mask",)).values())

    def step(self, superstep: int) -> TransportStepResult:
        replies = self._broadcast(("step", superstep))
        sent = sum(reply[0] for reply in replies.values())
        aggregate = _reduce_aggregates(
            replies[host][1] for host in sorted(replies))
        compute = max(reply[2] for reply in replies.values())
        syncing = {reply[3] for reply in replies.values()}
        if len(syncing) > 1:
            raise RuntimeError("workers disagree on sync — "
                               "non-deterministic kernel")
        synced = syncing.pop()
        stats = SyncStats()
        if synced:
            # Route gather payloads, then scatter payloads, through the
            # coordinator hub (logical channels stay point-to-point and
            # are counted as such by the receiving group).
            routed = self._route(replies, payload_index=4)
            for host, conn in sorted(self._conns.items()):
                conn.send(("gather", routed.get(host, [])))
            scatter_replies = {host: conn.recv()
                               for host, conn in sorted(self._conns.items())}
            routed = self._route(scatter_replies, payload_index=None)
            for host, conn in sorted(self._conns.items()):
                conn.send(("scatter", routed.get(host, [])))
            for host, conn in sorted(self._conns.items()):
                stats.merge(conn.recv())
        return TransportStepResult(sent=sent, aggregate=aggregate,
                                   compute_seconds=compute,
                                   synced=synced, stats=stats)

    @staticmethod
    def _route(replies: Dict[int, Any],
               payload_index: Optional[int]) -> Dict[int, List[_Payload]]:
        """Merge per-worker ``{dst_host: payloads}`` maps into one
        routing table, in ascending source-host order (deterministic)."""
        routed: Dict[int, List[_Payload]] = {}
        for host in sorted(replies):
            reply = replies[host]
            outbound = reply[payload_index] if payload_index is not None \
                else reply
            for dst_host, payloads in sorted(outbound.items()):
                routed.setdefault(dst_host, []).extend(payloads)
        return routed

    def states(self) -> Dict[int, Any]:
        merged: Dict[int, Any] = {}
        for host in sorted(self._conns):
            self._conns[host].send(("states",))
        for host in sorted(self._conns):
            merged.update(self._conns[host].recv())
        return merged

    def close(self) -> None:
        for conn in self._conns.values():
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5)
        for conn in self._conns.values():
            conn.close()
        self._conns = {}
        self._processes = []
