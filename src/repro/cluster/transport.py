"""Replica-sync transports for the sharded cluster runtime.

Each BSP superstep runs every shard's dense kernel locally, producing
*partial* per-target message combinations (partial sums / mins / counts
over the shard's own adjacency slots).  The transport then performs the
PowerGraph synchronisation round that makes replicas globally consistent:

* **gather** — every mirror replica sends its partial (value, received)
  slice to the vertex's master partition, which folds the contributions
  in ascending partition order (master's own partial first — a fixed
  association, so the serial and process backends are bit-identical);
* **scatter** — the master broadcasts the combined slice back to every
  mirror, which overwrites its local arrays in place.

Both directions move one logical message per shared vertex per channel,
so a syncing superstep carries exactly ``2 · (span − 1)`` messages per
replicated vertex — the quantity
:meth:`repro.engine.placement.Placement.stats` predicts.  The transports
*measure* rather than assume it: every applied payload is recorded as
remote (endpoint partitions on different machines) or local (same
machine) message counts per machine, plus payload bytes, and the
differential test layer holds the measurement equal to the prediction.

Two backends share the exchange logic through :class:`ShardGroup`:

* :class:`SerialTransport` — all shards in this process, stepped
  sequentially.  Deterministic reference semantics; "machines" are the
  logical machine map used for remote/local classification.
* :class:`ProcessTransport` — shards grouped onto worker OS processes
  (one worker per partition by default), long-lived over
  ``multiprocessing`` pipes.  The pickle boundary is narrow, PR-2 style:
  shard arrays ship once at start-up, then only channel slices and small
  telemetry tuples cross per superstep.  Machines *are* the workers, so
  remote messages are exactly the payloads that crossed a pipe.

Failure detection and fault injection
-------------------------------------
No wait in either transport is unbounded.  Every pipe receive polls in
short intervals, probing the worker process's liveness between polls, so
a SIGKILLed worker surfaces as :class:`~repro.cluster.faults.WorkerDied`
(carrying the dead machine's id) within one poll interval — and a worker
that is alive but wedged trips the configurable ``timeout`` instead of
hanging the coordinator forever.  Both transports expose the recovery
primitives the engine's checkpoint/rollback layer is built on:
``snapshot()`` / ``restore()`` move per-partition kernel state across
transport incarnations (and machine layouts), and ``kill_machine()``
lets a deterministic :class:`~repro.cluster.faults.FaultInjector` kill a
named machine at a named superstep position — a real ``SIGKILL`` on the
process backend, a simulated death flag on the serial one, with the same
detection points either way.
"""

from __future__ import annotations

import copy
import multiprocessing as mp
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro import obs
from repro.cluster.faults import FaultInjector, WorkerDied
from repro.engine.dense import DenseKernel
from repro.engine.vertex_program import VertexProgram
from repro.graph.shard import Shard, ShardedGraph

#: Transport backends understood by :class:`~repro.cluster.runtime.ClusterEngine`.
BACKENDS = ("serial", "process")


@dataclass
class SyncStats:
    """Measured replica-sync traffic of one superstep."""

    remote_messages: int = 0
    local_messages: int = 0
    payload_bytes: int = 0
    remote_per_machine: Dict[int, int] = field(default_factory=dict)
    local_per_machine: Dict[int, int] = field(default_factory=dict)

    def record(self, src_part: int, dst_part: int, messages: int,
               nbytes: int, machine_of: Mapping[int, int]) -> None:
        """Record ``messages`` flowing ``src_part -> dst_part``.

        Mirrors the prediction's accounting: every message charges *both*
        endpoint machines, and counts as remote only when the endpoints'
        machines differ.
        """
        src_machine = machine_of[src_part]
        dst_machine = machine_of[dst_part]
        self.payload_bytes += nbytes
        if src_machine == dst_machine:
            self.local_messages += messages
            self.local_per_machine[src_machine] = (
                self.local_per_machine.get(src_machine, 0) + messages)
            self.local_per_machine[dst_machine] = (
                self.local_per_machine.get(dst_machine, 0) + messages)
        else:
            self.remote_messages += messages
            self.remote_per_machine[src_machine] = (
                self.remote_per_machine.get(src_machine, 0) + messages)
            self.remote_per_machine[dst_machine] = (
                self.remote_per_machine.get(dst_machine, 0) + messages)

    def merge(self, other: "SyncStats") -> None:
        self.remote_messages += other.remote_messages
        self.local_messages += other.local_messages
        self.payload_bytes += other.payload_bytes
        for machine, count in other.remote_per_machine.items():
            self.remote_per_machine[machine] = (
                self.remote_per_machine.get(machine, 0) + count)
        for machine, count in other.local_per_machine.items():
            self.local_per_machine[machine] = (
                self.local_per_machine.get(machine, 0) + count)


@dataclass
class _PendingSync:
    """One shard's deferred scatter: local partials awaiting replica sync.

    The kernel stores the exact arrays below into its message buffers
    (``has_msg``, ``incoming``, ...), so in-place mutation after the
    barrier updates the kernel's state for the next superstep.
    """

    kind: str  # "sum" | "min" | "count"
    values: np.ndarray
    recv: np.ndarray


class ShardRunner:
    """One shard's kernel plus the replica-sync interception layer.

    The program's own :class:`~repro.engine.dense.DenseKernel` runs
    unmodified over the shard CSR; the runner rebinds its scatter helpers
    so each per-target combination is computed over *local* slots only
    and parked as a :class:`_PendingSync` for the transport, and rebinds
    ``sent_from`` to count sends from the shard-local adjacency lists
    (``csr.degrees`` on a shard is the logical global degree).
    """

    def __init__(self, shard: Shard, program: VertexProgram) -> None:
        kernel = program.dense_kernel(shard.csr)
        if kernel is None:
            raise ValueError(
                f"{program.name}: dense_kernel returned None; sharded "
                "execution needs a dense kernel")
        kernel.owned = shard.owned.copy()
        # Instance-attribute rebinding: kernels invoke the helpers via
        # ``self.scatter_*`` / ``self.sent_from``, so these shadow the
        # class methods for this kernel only.
        kernel.scatter_sum = self._scatter_sum
        kernel.scatter_min = self._scatter_min
        kernel.scatter_count = self._scatter_count
        kernel.sent_from = self._sent_from
        self.shard = shard
        self.kernel = kernel
        self.pending: Optional[_PendingSync] = None
        self._mask: Optional[np.ndarray] = None

    # -- intercepted kernel helpers ------------------------------------
    def _sent_from(self, send_mask: np.ndarray) -> int:
        return int(self.shard.csr.local_degrees[send_mask].sum())

    def _park(self, kind: str, values: np.ndarray,
              recv: np.ndarray) -> None:
        if self.pending is not None:
            raise RuntimeError(
                "sharded kernel protocol violation: more than one scatter "
                "per superstep (see repro.engine.dense)")
        self.pending = _PendingSync(kind, values, recv)

    def _scatter_sum(self, send_mask: np.ndarray,
                     values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        # The base helpers already combine over this shard's local slots
        # (the kernel's csr *is* the shard CSR); the interception only
        # parks the result for the replica-sync barrier.
        recv, sums = DenseKernel.scatter_sum(self.kernel, send_mask,
                                             values)
        self._park("sum", sums, recv)
        return recv, sums

    def _scatter_min(self, send_mask: np.ndarray, values: np.ndarray,
                     sentinel: Any) -> Tuple[np.ndarray, np.ndarray]:
        recv, mins = DenseKernel.scatter_min(self.kernel, send_mask,
                                             values, sentinel)
        self._park("min", mins, recv)
        return recv, mins

    def _scatter_count(self, send_mask: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray]:
        recv, counts = DenseKernel.scatter_count(self.kernel, send_mask)
        self._park("count", counts, recv)
        return recv, counts

    # -- superstep protocol --------------------------------------------
    def begin_superstep(self) -> int:
        """Compute this superstep's mask; return the owned computed count."""
        self._mask = self.kernel.compute_mask()
        return int((self._mask & self.shard.owned).sum())

    def step(self, superstep: int) -> Tuple[int, Any, float]:
        """Run the kernel step; return (sent, aggregate, compute_seconds)."""
        self.pending = None
        start = time.perf_counter()
        sent, aggregate = self.kernel.step(superstep, self._mask)
        return int(sent), aggregate, time.perf_counter() - start

    def states(self) -> Dict[int, Any]:
        """Final states of the vertices mastered on this shard."""
        owned_ids = set(
            self.shard.csr.vertex_ids[self.shard.owned].tolist())
        return {vertex: state
                for vertex, state in self.kernel.states().items()
                if vertex in owned_ids}

    # -- checkpoint protocol -------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """This shard's complete kernel state at a superstep boundary.

        Captures every kernel attribute except the (immutable, rebuildable)
        shard CSR and the runner-rebound helper callables: numpy arrays by
        copy, everything else by deepcopy.  Message buffers (``has_msg``
        and the kernel's incoming arrays) are ordinary attributes, so the
        in-flight inbox travels with the snapshot.
        """
        state: Dict[str, Any] = {}
        for key, value in self.kernel.__dict__.items():
            if key == "csr" or callable(value):
                continue
            state[key] = (value.copy() if isinstance(value, np.ndarray)
                          else copy.deepcopy(value))
        return state

    def restore(self, state: Dict[str, Any]) -> None:
        """Install a :meth:`snapshot` image (copied — the checkpoint stays
        reusable for later rollbacks)."""
        for key, value in state.items():
            setattr(self.kernel, key,
                    value.copy() if isinstance(value, np.ndarray)
                    else copy.deepcopy(value))
        self.pending = None
        self._mask = None


#: A routed sync payload: (dst_partition, src_partition, values, recv).
_Payload = Tuple[int, int, np.ndarray, np.ndarray]


@dataclass
class GroupStepResult:
    sent: int
    aggregate: Any
    compute_seconds: float
    syncing: bool


def _reduce_aggregates(parts: Iterable[Any]) -> Any:
    """Sum non-``None`` contributions; ``None`` when nothing contributed
    (exactly the object path's aggregate folding)."""
    total: Any = None
    for part in parts:
        if part is not None:
            total = part if total is None else total + part
    return total


class ShardGroup:
    """A set of shard runners co-hosted in one process ("machine").

    The serial backend uses a single group for all shards; the process
    backend gives each worker one group.  Sync payloads between two
    shards of the same group never leave the process and are counted as
    *local* traffic; cross-group payloads are routed by the coordinator
    and counted as *remote* — the machine map and the host map coincide.
    """

    def __init__(self, shards: List[Shard], program: VertexProgram,
                 machine_of: Mapping[int, int],
                 host_of: Mapping[int, int], host: int) -> None:
        self.runners = {shard.partition: ShardRunner(shard, program)
                        for shard in shards}
        self.machine_of = dict(machine_of)
        self.host_of = dict(host_of)
        self.host = host
        self._staged: List[_Payload] = []
        self.stats = SyncStats()

    # -- superstep ------------------------------------------------------
    def compute_owned(self) -> int:
        return sum(runner.begin_superstep()
                   for _, runner in sorted(self.runners.items()))

    def step(self, superstep: int) -> GroupStepResult:
        self.stats = SyncStats()
        self._staged = []
        sent = 0
        aggregates = []
        compute = 0.0
        syncing: Optional[bool] = None
        for _, runner in sorted(self.runners.items()):
            shard_sent, aggregate, seconds = runner.step(superstep)
            sent += shard_sent
            aggregates.append(aggregate)
            compute = max(compute, seconds)
            shard_syncing = runner.pending is not None
            if syncing is None:
                syncing = shard_syncing
            elif syncing != shard_syncing:
                raise RuntimeError(
                    "shards disagree on whether this superstep syncs — "
                    "non-deterministic kernel")
        return GroupStepResult(sent=sent,
                               aggregate=_reduce_aggregates(aggregates),
                               compute_seconds=compute,
                               syncing=bool(syncing))

    # -- gather phase ---------------------------------------------------
    def collect_gathers(self) -> Dict[int, List[_Payload]]:
        """Mirror -> master slices, keyed by destination host.  Payloads
        for this host are staged internally instead of returned."""
        outbound: Dict[int, List[_Payload]] = {}
        for src, runner in sorted(self.runners.items()):
            pending = runner.pending
            if pending is None:
                continue
            for dst, idx in sorted(runner.shard.mirror_channels.items()):
                payload: _Payload = (dst, src, pending.values[idx],
                                     pending.recv[idx])
                host = self.host_of[dst]
                if host == self.host:
                    self._staged.append(payload)
                else:
                    outbound.setdefault(host, []).append(payload)
        return outbound

    def apply_gathers(self, inbound: List[_Payload]) -> None:
        """Fold mirror partials into the masters' pending arrays.

        Association is fixed — the master's own partial is the base, then
        contributions in ascending mirror-partition order — so serial and
        process backends produce bit-identical combined values.
        """
        by_master: Dict[int, Dict[int, Tuple[np.ndarray, np.ndarray]]] = {}
        for dst, src, values, recv in self._staged + inbound:
            by_master.setdefault(dst, {})[src] = (values, recv)
        self._staged = []
        for dst in sorted(by_master):
            runner = self.runners[dst]
            pending = runner.pending
            for src in sorted(by_master[dst]):
                values, recv = by_master[dst][src]
                idx = runner.shard.master_channels[src]
                if pending.kind == "min":
                    pending.values[idx] = np.minimum(pending.values[idx],
                                                     values)
                else:  # "sum" / "count" combine additively
                    pending.values[idx] = pending.values[idx] + values
                pending.recv[idx] |= recv
                self.stats.record(src, dst, len(idx),
                                  values.nbytes + recv.nbytes,
                                  self.machine_of)

    # -- scatter phase --------------------------------------------------
    def collect_scatters(self) -> Dict[int, List[_Payload]]:
        """Master -> mirror combined slices, keyed by destination host."""
        outbound: Dict[int, List[_Payload]] = {}
        for src, runner in sorted(self.runners.items()):
            pending = runner.pending
            if pending is None:
                continue
            for dst, idx in sorted(runner.shard.master_channels.items()):
                payload: _Payload = (dst, src, pending.values[idx],
                                     pending.recv[idx])
                host = self.host_of[dst]
                if host == self.host:
                    self._staged.append(payload)
                else:
                    outbound.setdefault(host, []).append(payload)
        return outbound

    def apply_scatters(self, inbound: List[_Payload]) -> None:
        """Overwrite mirrors' pending arrays with the combined values."""
        for dst, src, values, recv in self._staged + inbound:
            runner = self.runners[dst]
            pending = runner.pending
            idx = runner.shard.mirror_channels[src]
            pending.values[idx] = values
            pending.recv[idx] = recv
            self.stats.record(src, dst, len(idx),
                              values.nbytes + recv.nbytes,
                              self.machine_of)
        self._staged = []

    # -- results --------------------------------------------------------
    def states(self) -> Dict[int, Any]:
        merged: Dict[int, Any] = {}
        for _, runner in sorted(self.runners.items()):
            merged.update(runner.states())
        return merged

    # -- checkpoint protocol --------------------------------------------
    def snapshot(self) -> Dict[int, Dict[str, Any]]:
        """Per-partition kernel states of every shard in this group."""
        return {partition: runner.snapshot()
                for partition, runner in sorted(self.runners.items())}

    def restore(self, shard_states: Mapping[int, Dict[str, Any]]) -> None:
        for partition, runner in sorted(self.runners.items()):
            runner.restore(shard_states[partition])


@dataclass
class TransportStepResult:
    """One superstep as seen by the coordinator."""

    sent: int
    aggregate: Any
    compute_seconds: float
    synced: bool
    stats: SyncStats


class SerialTransport:
    """All shards in this process, stepped sequentially — the
    deterministic reference backend the process backend is tested
    against.  The machine map is purely logical here (default: one
    machine per partition) and only classifies traffic.

    Fault injection is simulated: ``kill_machine`` marks a logical
    machine dead and every subsequent exchange raises
    :class:`WorkerDied` at the same superstep positions the process
    backend would detect a real crash — so the engine's recovery path is
    exercised identically (and fast) on both backends.
    """

    backend = "serial"

    def __init__(self, sharded: ShardedGraph, program: VertexProgram,
                 machine_of: Mapping[int, int]) -> None:
        shards = [sharded.shards[p] for p in sharded.partitions]
        # Single host: every partition is host 0; remote/local
        # classification still follows the logical machine map.
        host_of = {p: 0 for p in sharded.partitions}
        self.group = ShardGroup(shards, program, machine_of, host_of,
                                host=0)
        self.num_hosts = 1
        self._machines = set(machine_of.values())
        self._dead: set = set()

    # -- failure primitives --------------------------------------------
    def kill_machine(self, machine: int) -> bool:
        """Simulate a crash of ``machine`` (unknown/dead ids are no-ops)."""
        if machine not in self._machines or machine in self._dead:
            return False
        self._dead.add(machine)
        return True

    def _check_alive(self) -> None:
        if self._dead:
            raise WorkerDied(min(self._dead), "killed by fault injection")

    def _fire(self, injector: Optional[FaultInjector], point: str,
              superstep: int) -> None:
        if injector is None:
            return
        victim = injector.check(point, superstep)
        if victim is not None:
            self.kill_machine(victim)

    # -- superstep protocol --------------------------------------------
    def compute_owned(self) -> int:
        self._check_alive()
        return self.group.compute_owned()

    def step(self, superstep: int,
             injector: Optional[FaultInjector] = None
             ) -> TransportStepResult:
        self._check_alive()
        result = self.group.step(superstep)
        self._fire(injector, "pre-gather", superstep)
        self._check_alive()
        if result.syncing:
            outbound = self.group.collect_gathers()
            assert not outbound, "serial transport routed off-host"
            self.group.apply_gathers([])
            self._fire(injector, "mid-scatter", superstep)
            self._check_alive()
            outbound = self.group.collect_scatters()
            assert not outbound, "serial transport routed off-host"
            self.group.apply_scatters([])
        # A post-apply kill lands after the superstep committed; like a
        # real crash it is detected at the *next* exchange (the following
        # superstep, a checkpoint snapshot, or the final states fetch).
        self._fire(injector, "post-apply", superstep)
        return TransportStepResult(sent=result.sent,
                                   aggregate=result.aggregate,
                                   compute_seconds=result.compute_seconds,
                                   synced=result.syncing,
                                   stats=self.group.stats)

    def states(self) -> Dict[int, Any]:
        self._check_alive()
        return self.group.states()

    # -- checkpoint protocol -------------------------------------------
    def snapshot(self) -> Dict[int, Dict[str, Any]]:
        self._check_alive()
        return self.group.snapshot()

    def restore(self, shard_states: Mapping[int, Dict[str, Any]]) -> None:
        self.group.restore(shard_states)

    def close(self) -> None:
        pass


def _cluster_worker(conn, inherited, shards: List[Shard],
                    program: VertexProgram, machine_of: Dict[int, int],
                    host_of: Dict[int, int], host: int) -> None:
    """Worker process main loop: one :class:`ShardGroup`, command-driven.

    Commands are small tuples; sync payloads are numpy slices.  The
    worker stages intra-host payloads itself and only ships cross-host
    slices back to the coordinator for routing.
    """
    # The fork duplicated every pipe end that existed in the parent —
    # including this worker's *own* coordinator-side end.  Close them
    # all: otherwise the coordinator dropping its end can never deliver
    # EOF/EPIPE here (this process itself would keep the pipe alive),
    # and a worker blocked in send() during teardown would hang forever.
    for other in inherited:
        try:
            other.close()
        except OSError:  # pragma: no cover - already closed
            pass
    group = ShardGroup(shards, program, machine_of, host_of, host)
    # Trace context of the most recent "step" command: gather/scatter
    # commands belong to the same coordinator superstep, so their spans
    # parent to it too.
    step_ctx = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            # Coordinator went away (e.g. torn down mid-superstep during
            # a recovery): exit quietly instead of tracebacking.
            return
        op = message[0]
        try:
            if op == "mask":
                conn.send(group.compute_owned())
            elif op == "step":
                # The coordinator appends its span context to the command
                # only while tracing — the pickled message is unchanged
                # otherwise.
                step_ctx = message[2] if len(message) > 2 else None
                with obs.use_context(step_ctx), \
                        obs.span("cluster.worker_step", host=host,
                                 superstep=message[1]):
                    result = group.step(message[1])
                    outbound = (group.collect_gathers()
                                if result.syncing else {})
                conn.send((result.sent, result.aggregate,
                           result.compute_seconds, result.syncing,
                           outbound))
            elif op == "gather":
                with obs.use_context(step_ctx), \
                        obs.span("cluster.worker_gather", host=host):
                    group.apply_gathers(message[1])
                    outbound = group.collect_scatters()
                conn.send(outbound)
            elif op == "scatter":
                with obs.use_context(step_ctx), \
                        obs.span("cluster.worker_scatter", host=host):
                    group.apply_scatters(message[1])
                conn.send(group.stats)
            elif op == "states":
                conn.send(group.states())
            elif op == "snapshot":
                conn.send(group.snapshot())
            elif op == "restore":
                group.restore(message[1])
                conn.send(True)
            elif op == "stop":
                conn.close()
                return
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown cluster worker op {op!r}")
        except (BrokenPipeError, OSError):
            # Reply pipe dropped mid-send (coordinator tore the
            # transport down): exit quietly, like the recv case above.
            return


class ProcessTransport:
    """One long-lived worker process per host, shards grouped onto hosts.

    The default deployment is one worker per partition (hosts ==
    partitions); ``num_workers`` groups partitions onto fewer workers in
    contiguous blocks, exactly like
    :meth:`~repro.engine.placement.Placement.contiguous_machine_map` —
    and the machine map *is* the worker map, so measured remote traffic
    is precisely the payload volume that crossed a process boundary.
    """

    backend = "process"

    #: Liveness-probe interval of the bounded receive loop (seconds).
    POLL_INTERVAL = 0.05
    #: Default per-reply timeout; must exceed the worst-case single
    #: superstep of the workload (a wedged-but-alive worker trips it).
    DEFAULT_TIMEOUT = 30.0

    def __init__(self, sharded: ShardedGraph, program: VertexProgram,
                 machine_of: Mapping[int, int],
                 timeout: Optional[float] = None) -> None:
        partitions = sharded.partitions
        self.machine_of = dict(machine_of)
        self.timeout = self.DEFAULT_TIMEOUT if timeout is None else timeout
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        hosts = sorted(set(self.machine_of.values()))
        self.num_hosts = len(hosts)
        self._parts_of_host = {
            host: [p for p in partitions if self.machine_of[p] == host]
            for host in hosts}
        context = mp.get_context()
        self._procs: Dict[int, Any] = {}
        self._conns = {}
        try:
            # All pipes exist before the first fork so every child can
            # enumerate (and close) the ends it inherited but does not
            # own — see _cluster_worker.  Without this, teardown via
            # closing the coordinator ends cannot unblock a worker.
            pipes = {host: context.Pipe() for host in hosts}
            for host in hosts:
                parent_conn, child_conn = pipes[host]
                inherited = [end for other, pair in pipes.items()
                             for end in pair if end is not child_conn]
                shards = [sharded.shards[p]
                          for p in self._parts_of_host[host]]
                process = context.Process(
                    target=_cluster_worker,
                    args=(child_conn, inherited, shards, program,
                          self.machine_of, self.machine_of, host),
                    daemon=True)
                process.start()
                self._procs[host] = process
                self._conns[host] = parent_conn
            for _, child_conn in pipes.values():
                child_conn.close()
        except Exception:
            self.close()
            raise

    # -- bounded, liveness-probing pipe exchange ------------------------
    def _send(self, host: int, message) -> None:
        try:
            self._conns[host].send(message)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerDied(host, f"pipe closed on send ({exc})") from None

    def _recv(self, host: int):
        """Receive one reply from ``host``; never blocks unboundedly.

        Polls in :data:`POLL_INTERVAL` slices, probing the worker
        process's liveness between polls: a SIGKILLed worker is detected
        within one interval, a wedged-but-alive worker within
        ``timeout`` — either way a :class:`WorkerDied` with the machine
        id, not a silent hang.
        """
        conn = self._conns[host]
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                if conn.poll(self.POLL_INTERVAL):
                    return conn.recv()
            except (EOFError, OSError):
                raise WorkerDied(host, "pipe closed") from None
            process = self._procs[host]
            if not process.is_alive():
                raise WorkerDied(
                    host, f"worker exited with code {process.exitcode}")
            if time.monotonic() >= deadline:
                raise WorkerDied(
                    host, f"no reply within {self.timeout:.1f}s "
                          f"(worker still alive — likely wedged)")

    def _broadcast(self, message) -> Dict[int, Any]:
        for host in sorted(self._conns):
            self._send(host, message)
        return {host: self._recv(host) for host in sorted(self._conns)}

    # -- failure primitives --------------------------------------------
    def kill_machine(self, machine: int) -> bool:
        """SIGKILL the worker hosting ``machine`` (no-op when unknown or
        already dead) — the fault injector's process-backend kill."""
        process = self._procs.get(machine)
        if process is None or not process.is_alive():
            return False
        os.kill(process.pid, signal.SIGKILL)
        process.join(timeout=5)
        return True

    def _fire(self, injector: Optional[FaultInjector], point: str,
              superstep: int) -> None:
        if injector is None:
            return
        victim = injector.check(point, superstep)
        if victim is not None:
            self.kill_machine(victim)

    # -- superstep protocol --------------------------------------------
    def compute_owned(self) -> int:
        return sum(self._broadcast(("mask",)).values())

    def step(self, superstep: int,
             injector: Optional[FaultInjector] = None
             ) -> TransportStepResult:
        command = ("step", superstep)
        if obs.is_enabled():
            # Ship the coordinator's span context across the pickle
            # boundary so worker spans join this trace.
            ctx = obs.current_context()
            if ctx is not None:
                command = ("step", superstep, ctx)
        replies = self._broadcast(command)
        sent = sum(reply[0] for reply in replies.values())
        aggregate = _reduce_aggregates(
            replies[host][1] for host in sorted(replies))
        compute = max(reply[2] for reply in replies.values())
        syncing = {reply[3] for reply in replies.values()}
        if len(syncing) > 1:
            raise RuntimeError("workers disagree on sync — "
                               "non-deterministic kernel")
        synced = syncing.pop()
        self._fire(injector, "pre-gather", superstep)
        stats = SyncStats()
        if synced:
            # Route gather payloads, then scatter payloads, through the
            # coordinator hub (logical channels stay point-to-point and
            # are counted as such by the receiving group).
            routed = self._route(replies, payload_index=4)
            for host in sorted(self._conns):
                self._send(host, ("gather", routed.get(host, [])))
            scatter_replies = {host: self._recv(host)
                               for host in sorted(self._conns)}
            self._fire(injector, "mid-scatter", superstep)
            routed = self._route(scatter_replies, payload_index=None)
            for host in sorted(self._conns):
                self._send(host, ("scatter", routed.get(host, [])))
            for host in sorted(self._conns):
                stats.merge(self._recv(host))
        # Post-apply kills commit the superstep first; detection happens
        # at the next exchange, exactly like a real crash there.
        self._fire(injector, "post-apply", superstep)
        return TransportStepResult(sent=sent, aggregate=aggregate,
                                   compute_seconds=compute,
                                   synced=synced, stats=stats)

    @staticmethod
    def _route(replies: Dict[int, Any],
               payload_index: Optional[int]) -> Dict[int, List[_Payload]]:
        """Merge per-worker ``{dst_host: payloads}`` maps into one
        routing table, in ascending source-host order (deterministic)."""
        routed: Dict[int, List[_Payload]] = {}
        for host in sorted(replies):
            reply = replies[host]
            outbound = reply[payload_index] if payload_index is not None \
                else reply
            for dst_host, payloads in sorted(outbound.items()):
                routed.setdefault(dst_host, []).extend(payloads)
        return routed

    def states(self) -> Dict[int, Any]:
        merged: Dict[int, Any] = {}
        for host in sorted(self._conns):
            self._send(host, ("states",))
        for host in sorted(self._conns):
            merged.update(self._recv(host))
        return merged

    # -- checkpoint protocol -------------------------------------------
    def snapshot(self) -> Dict[int, Dict[str, Any]]:
        """Per-partition kernel states gathered from every worker."""
        merged: Dict[int, Dict[str, Any]] = {}
        for reply in self._broadcast(("snapshot",)).values():
            merged.update(reply)
        return merged

    def restore(self, shard_states: Mapping[int, Dict[str, Any]]) -> None:
        """Ship each worker the states of exactly its own shards (keyed
        by partition, so any machine layout can receive any snapshot)."""
        for host in sorted(self._conns):
            subset = {partition: shard_states[partition]
                      for partition in self._parts_of_host[host]}
            self._send(host, ("restore", subset))
        for host in sorted(self._conns):
            self._recv(host)

    def close(self) -> None:
        for conn in self._conns.values():
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        # Close our pipe ends *before* joining: a worker abandoned
        # mid-protocol may be blocked in send() on a payload nobody will
        # read — we are the only other holder of its pipe (workers close
        # inherited ends at startup), so this delivers EPIPE and the
        # worker exits.  Anything still alive after the grace period is
        # wedged and holds no state we need; kill it rather than stall
        # the recovery path.
        for conn in self._conns.values():
            conn.close()
        for process in self._procs.values():
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.kill()
                process.join(timeout=5)
        self._conns = {}
        self._procs = {}
