"""Small shared utilities."""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


def stable_hash(value: int, seed: int = 0) -> int:
    """Deterministic 64-bit integer hash (splitmix64 finaliser).

    Python's built-in ``hash`` is the identity on small ints, which would
    make hash partitioning degenerate to round-robin on typical vertex ids.
    This mixer gives well-distributed, platform-independent hashes so runs
    are reproducible across machines and Python versions.
    """
    x = (value + 0x9E3779B97F4A7C15 * (seed + 1)) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def hash_to_range(value: int, k: int, seed: int = 0) -> int:
    """Map ``value`` uniformly into ``range(k)``."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return stable_hash(value, seed) % k
