"""Plain-text report rendering for the benchmark harness.

The paper presents results as bar charts (Fig. 7, Fig. 8) and tables
(Table II); the harness renders the same data as fixed-width text tables —
one row per bar / series point — so runs are diffable and greppable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.harness import LatencyRow


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render a fixed-width table with right-aligned numeric columns."""
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) if _is_numeric(cell)
                               else cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _render_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell.replace(",", ""))
        return True
    except ValueError:
        return False


def format_stacked_rows(rows: Sequence[LatencyRow],
                        title: str = "",
                        num_blocks: int = 3) -> str:
    """Render Fig. 7-style stacked latencies: one row per configuration.

    Columns show partitioning latency, cumulative total after each block,
    and the resulting replication degree — the same information the paper
    encodes as stacked bars with annotations.
    """
    headers = ["config", "part_ms"]
    headers += [f"total@{b + 1}blk" for b in range(num_blocks)]
    headers += ["repl_degree", "imbalance"]
    table_rows = []
    for row in rows:
        cells: List[object] = [row.label, row.partitioning_ms]
        cells += [row.total_after_blocks(b + 1) for b in range(num_blocks)]
        cells += [row.replication_degree, row.imbalance]
        table_rows.append(cells)
    return format_table(headers, table_rows, title=title)


def format_spotlight(results: Dict[str, Dict[int, float]],
                     title: str = "") -> str:
    """Render a Fig. 8-style spread sweep: strategies × spreads."""
    spreads = sorted({s for per in results.values() for s in per})
    headers = ["strategy"] + [f"spread={s}" for s in spreads]
    rows = []
    for label, per_spread in results.items():
        rows.append([label] + [per_spread.get(s, float("nan"))
                               for s in spreads])
    return format_table(headers, rows, title=title)


def summarize_winner(rows: Sequence[LatencyRow], blocks: int) -> str:
    """One-line verdict: which configuration minimises total latency."""
    best = min(rows, key=lambda r: r.total_after_blocks(blocks))
    return (f"minimum total latency after {blocks} block(s): "
            f"{best.label} ({best.total_after_blocks(blocks):.1f} ms)")
