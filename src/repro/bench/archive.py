"""Experiment archiving: persist benchmark rows as JSON and diff runs.

Reproduction numbers drift as the implementation evolves; archiving every
harness run makes the drift visible.  An archive stores the experiment id,
the configuration rows and free-form metadata; :func:`diff_archives`
reports per-configuration changes in the tracked metrics so a regression
in replication degree or latency shows up as a structured delta instead
of a vague "numbers look different".
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import List, Mapping, Optional, Sequence

from repro.bench.harness import LatencyRow

FORMAT_VERSION = 1


@dataclass
class ArchivedRow:
    """JSON-friendly snapshot of one LatencyRow."""

    label: str
    partitioning_ms: float
    block_ms: List[float]
    replication_degree: float
    imbalance: float
    score_computations: int
    #: Measured cluster wall-clock per block (empty when the experiment
    #: ran without ``measure_wall``; defaulted so version-1 archives
    #: written before the field existed still load).
    block_wall_ms: List[float] = field(default_factory=list)

    @classmethod
    def from_row(cls, row: LatencyRow) -> "ArchivedRow":
        return cls(label=row.label,
                   partitioning_ms=row.partitioning_ms,
                   block_ms=list(row.block_ms),
                   replication_degree=row.replication_degree,
                   imbalance=row.imbalance,
                   score_computations=row.score_computations,
                   block_wall_ms=list(row.block_wall_ms))

    def to_row(self) -> LatencyRow:
        return LatencyRow(label=self.label,
                          partitioning_ms=self.partitioning_ms,
                          block_ms=list(self.block_ms),
                          replication_degree=self.replication_degree,
                          imbalance=self.imbalance,
                          score_computations=self.score_computations,
                          block_wall_ms=list(self.block_wall_ms))


def save_archive(path: "str | os.PathLike", experiment: str,
                 rows: Sequence[LatencyRow],
                 metadata: Optional[Mapping[str, object]] = None) -> None:
    """Write an experiment's rows (plus metadata) as JSON."""
    payload = {
        "format_version": FORMAT_VERSION,
        "experiment": experiment,
        "metadata": dict(metadata or {}),
        "rows": [asdict(ArchivedRow.from_row(row)) for row in rows],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_archive(path: "str | os.PathLike"):
    """Load an archive; returns ``(experiment, rows, metadata)``."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported archive version {version!r}")
    rows = [ArchivedRow(**entry).to_row() for entry in payload["rows"]]
    return payload["experiment"], rows, payload.get("metadata", {})


@dataclass
class MetricDelta:
    """Relative change of one metric for one configuration."""

    label: str
    metric: str
    before: float
    after: float

    @property
    def relative(self) -> float:
        if self.before == 0:
            return 0.0 if self.after == 0 else float("inf")
        return (self.after - self.before) / self.before


def diff_archives(before_rows: Sequence[LatencyRow],
                  after_rows: Sequence[LatencyRow],
                  threshold: float = 0.02) -> List[MetricDelta]:
    """Per-configuration metric changes exceeding ``threshold`` (relative).

    Configurations present on only one side are reported with the missing
    side as NaN so additions/removals are visible too.
    """
    deltas: List[MetricDelta] = []
    before = {row.label: row for row in before_rows}
    after = {row.label: row for row in after_rows}
    nan = float("nan")
    for label in sorted(set(before) | set(after)):
        b, a = before.get(label), after.get(label)
        if b is None or a is None:
            deltas.append(MetricDelta(label, "presence",
                                      nan if b is None else 1.0,
                                      nan if a is None else 1.0))
            continue
        for metric in ("partitioning_ms", "replication_degree",
                       "imbalance"):
            b_val = getattr(b, metric)
            a_val = getattr(a, metric)
            if b_val == 0 and a_val == 0:
                continue
            base = abs(b_val) if b_val != 0 else 1.0
            if abs(a_val - b_val) / base > threshold:
                deltas.append(MetricDelta(label, metric, b_val, a_val))
    return deltas
