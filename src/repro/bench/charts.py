"""ASCII chart rendering for the reproduction figures.

The paper presents Fig. 7 as stacked bar charts and Fig. 8 as grouped
bars.  These renderers draw the same shapes in plain text so a terminal
diff shows not just the numbers but the *picture* — the sweet spot dip of
Fig. 7a-f and the spread staircase of Fig. 8 are visible at a glance.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.bench.harness import LatencyRow

#: Glyphs for the partitioning segment and successive processing blocks.
_SEGMENT_GLYPHS = "#*+=~^"


def stacked_bar_chart(rows: Sequence[LatencyRow], width: int = 60,
                      num_blocks: int = 3, title: str = "") -> str:
    """Render Fig. 7-style horizontal stacked bars.

    Each row becomes one bar: a ``#`` segment for partitioning latency
    followed by one segment per processing block (``*``, ``+``, ...),
    scaled to the longest total.
    """
    if not rows:
        return title
    totals = [row.total_after_blocks(num_blocks) for row in rows]
    scale = max(totals) or 1.0
    label_width = max(len(row.label) for row in rows)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for row, total in zip(rows, totals):
        segments = [row.partitioning_ms] + list(row.block_ms[:num_blocks])
        bar = ""
        for index, segment in enumerate(segments):
            glyph = _SEGMENT_GLYPHS[min(index, len(_SEGMENT_GLYPHS) - 1)]
            bar += glyph * max(0, round(segment / scale * width))
        lines.append(f"{row.label:<{label_width}} |{bar:<{width}}| "
                     f"{total:,.0f} ms")
    legend = "legend: # partitioning"
    for b in range(min(num_blocks, len(_SEGMENT_GLYPHS) - 1)):
        legend += f"  {_SEGMENT_GLYPHS[b + 1]} block {b + 1}"
    lines.append(legend)
    return "\n".join(lines)


def grouped_bar_chart(series: Mapping[str, Mapping[int, float]],
                      width: int = 50, title: str = "",
                      x_label: str = "spread") -> str:
    """Render Fig. 8-style grouped horizontal bars.

    ``series`` maps strategy -> {x value -> measurement}; bars are grouped
    by strategy and scaled to the global maximum.
    """
    if not series:
        return title
    all_values = [v for per in series.values() for v in per.values()]
    scale = max(all_values) or 1.0
    xs = sorted({x for per in series.values() for x in per})
    label_width = max(len(f"{x_label}={x}") for x in xs)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for strategy, per in series.items():
        lines.append(f"{strategy}:")
        for x in xs:
            value = per.get(x)
            if value is None:
                continue
            bar = "#" * max(1, round(value / scale * width))
            lines.append(f"  {f'{x_label}={x}':<{label_width}} "
                         f"|{bar:<{width}}| {value:.3f}")
    return "\n".join(lines)


def line_chart(points: Mapping[float, float], width: int = 60,
               height: int = 12, title: str = "") -> str:
    """Render a sparse scatter/line chart (e.g. window size over time)."""
    if not points:
        return title
    xs = sorted(points)
    ys = [points[x] for x in xs]
    x_min, x_max = xs[0], xs[-1]
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points.items():
        col = min(width - 1, int((x - x_min) / x_span * (width - 1)))
        row = min(height - 1, int((y - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][col] = "o"
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(f"y: {y_min:g} .. {y_max:g}")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"x: {x_min:g} .. {x_max:g}")
    return "\n".join(lines)
