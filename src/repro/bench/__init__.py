"""Experiment harness: workload definitions, runners, and reporting."""

from repro.bench.workloads import (
    GraphSpec,
    BRAIN,
    ORKUT,
    WEB,
    PAPER_GRAPHS,
    adwise_factory,
    baseline_factories,
)
from repro.bench.harness import (
    ExperimentConfig,
    LatencyRow,
    run_partitioning,
    stacked_latency_experiment,
    replication_sweep,
    spotlight_sweep,
)
from repro.bench.reporting import format_spotlight, format_stacked_rows, format_table
from repro.bench.charts import grouped_bar_chart, line_chart, stacked_bar_chart
from repro.bench.archive import diff_archives, load_archive, save_archive

__all__ = [
    "GraphSpec",
    "BRAIN",
    "ORKUT",
    "WEB",
    "PAPER_GRAPHS",
    "adwise_factory",
    "baseline_factories",
    "ExperimentConfig",
    "LatencyRow",
    "run_partitioning",
    "stacked_latency_experiment",
    "replication_sweep",
    "spotlight_sweep",
    "format_table",
    "format_stacked_rows",
    "format_spotlight",
    "grouped_bar_chart",
    "line_chart",
    "stacked_bar_chart",
    "diff_archives",
    "load_archive",
    "save_archive",
]
