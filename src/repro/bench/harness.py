"""Experiment runners reproducing the paper's figures.

Three experiment shapes cover every figure:

* :func:`stacked_latency_experiment` — Fig. 7a–f: for each partitioner
  configuration, partition the graph (parallel loading, z instances), then
  simulate the processing workload and report partitioning latency plus
  cumulative per-block processing latency (the paper's stacked bars).
* :func:`replication_sweep` — Fig. 7g–i and Fig. 1: replication degree (and
  partitioning latency) per configuration.
* :func:`spotlight_sweep` — Fig. 8: replication degree as a function of the
  spotlight spread, for each strategy.

All runs assert the paper's balance condition
``(maxsize − minsize)/maxsize < 0.05`` unless a run is explicitly marked
as tolerating imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.graph.graph import Graph
from repro.graph.stream import EdgeStream
from repro.engine.cost import cost_model_for
from repro.engine.placement import Placement
from repro.engine.runtime import Engine
from repro.engine.vertex_program import VertexProgram
from repro.partitioning.base import StreamingPartitioner
from repro.partitioning.parallel import ParallelLoader, ParallelResult
from repro.simtime import Clock, SimulatedClock
from repro.bench.workloads import (
    DEFAULT_SPREAD,
    NUM_INSTANCES,
    NUM_PARTITIONS,
)

PartitionerFactory = Callable[[Sequence[int], Clock], StreamingPartitioner]

#: The paper's Fig. 7 balance condition.
BALANCE_LIMIT = 0.05


@dataclass
class ExperimentConfig:
    """One bar group of a Fig. 7-style experiment."""

    label: str
    factory: PartitionerFactory


@dataclass
class LatencyRow:
    """One configuration's stacked-latency measurements.

    ``block_ms`` is simulated latency from the cost model;
    ``block_wall_ms`` (present when the experiment ran with
    ``measure_wall=True``) is the *measured* wall-clock of the same
    blocks on the sharded cluster runtime — the sim-vs-real pair the
    cost-model calibration compares.
    """

    label: str
    partitioning_ms: float
    block_ms: List[float]
    replication_degree: float
    imbalance: float
    score_computations: int
    block_wall_ms: List[float] = field(default_factory=list)

    def total_after_blocks(self, blocks: int) -> float:
        """Partitioning + processing latency after ``blocks`` blocks."""
        return self.partitioning_ms + sum(self.block_ms[:blocks])

    @property
    def total_ms(self) -> float:
        return self.partitioning_ms + sum(self.block_ms)

    @property
    def total_wall_ms(self) -> float:
        """Measured processing wall-clock over all blocks (0.0 when the
        experiment did not measure wall-clock)."""
        return sum(self.block_wall_ms)


def run_partitioning(factory: PartitionerFactory,
                     stream: EdgeStream,
                     num_partitions: int = NUM_PARTITIONS,
                     num_instances: int = NUM_INSTANCES,
                     spread: int = DEFAULT_SPREAD) -> ParallelResult:
    """Partition ``stream`` with the paper's parallel-loading setup."""
    loader = ParallelLoader(
        factory,
        partitions=list(range(num_partitions)),
        num_instances=num_instances,
        spread=spread,
        clock_factory=SimulatedClock,
    )
    return loader.run(stream)


def check_balance(result: ParallelResult, limit: float = BALANCE_LIMIT) -> None:
    """Assert the paper's balance condition; raise with detail if violated."""
    observed = result.imbalance
    if observed >= limit:
        raise AssertionError(
            f"{result.algorithm}: imbalance {observed:.3f} >= {limit} "
            f"(sizes {sorted(result.partition_sizes.values())})")


def _placement(result: ParallelResult,
               num_partitions: int,
               num_machines: int) -> Placement:
    return Placement(
        result.assignments,
        partitions=list(range(num_partitions)),
        num_machines=num_machines,
    )


def stacked_latency_experiment(
        graph: Graph,
        stream_factory: Callable[[], EdgeStream],
        configs: Sequence[ExperimentConfig],
        workload: str = "pagerank",
        block_iterations: int = 100,
        num_blocks: int = 3,
        program_factory: Optional[Callable[[Graph], VertexProgram]] = None,
        num_partitions: int = NUM_PARTITIONS,
        num_instances: int = NUM_INSTANCES,
        spread: int = DEFAULT_SPREAD,
        enforce_balance: bool = True,
        balance_limit: float = BALANCE_LIMIT,
        engine_mode: str = "dense",
        measure_wall: bool = False) -> List[LatencyRow]:
    """Fig. 7a–f experiment: partition, then simulate processing blocks.

    For stationary workloads (PageRank, coloring) each block's latency is
    the analytic cost of ``block_iterations`` supersteps.  For
    message-driven workloads pass ``program_factory``; each block then runs
    the program on the engine and its simulated latency is measured.

    ``engine_mode`` selects the execution backend; the default runs dense
    (vectorized CSR) kernels where the program ships one and falls back to
    the object path otherwise, producing identical rows either way.

    With ``measure_wall=True`` each block is *also* executed on the
    sharded cluster runtime (serial backend, same machine count as the
    simulation), and the measured wall-clock lands in
    ``LatencyRow.block_wall_ms`` next to the simulated ``block_ms`` —
    the first-class sim-vs-real pair for cost-model calibration.
    """
    rows: List[LatencyRow] = []
    cost_model = cost_model_for(workload)
    for config in configs:
        result = run_partitioning(
            config.factory, stream_factory(),
            num_partitions=num_partitions,
            num_instances=num_instances,
            spread=spread)
        if enforce_balance:
            check_balance(result, limit=balance_limit)
        placement = _placement(result, num_partitions, num_instances)
        engine = Engine(graph, placement, cost_model, mode=engine_mode)
        cluster_engine = None
        if measure_wall:
            from repro.cluster import ClusterEngine
            from repro.graph.shard import ShardedGraph
            sharded = ShardedGraph.from_assignments(
                result.assignments,
                partitions=range(num_partitions),
                vertices=graph.vertices())
            cluster_engine = ClusterEngine(
                sharded, cost_model, backend="serial",
                num_machines=num_instances)
        block_ms: List[float] = []
        block_wall_ms: List[float] = []
        for _ in range(num_blocks):
            if program_factory is None:
                block_ms.append(
                    engine.stationary_latency_ms(block_iterations))
            else:
                report = engine.run(program_factory(graph),
                                    max_supersteps=block_iterations)
                block_ms.append(report.latency_ms)
            if cluster_engine is not None:
                # Mirror the simulated block's superstep budget exactly:
                # measured programs get the same cap; the analytic
                # (stationary) path gets +2 so the program's settle/halt
                # steps complete.
                if program_factory is None:
                    program = _block_program(workload, block_iterations)
                    cap = block_iterations + 2
                else:
                    program = program_factory(graph)
                    cap = block_iterations
                cluster_report = cluster_engine.run(
                    program, max_supersteps=cap)
                block_wall_ms.append(cluster_report.wall_ms_total)
        rows.append(LatencyRow(
            label=config.label,
            partitioning_ms=result.latency_ms,
            block_ms=block_ms,
            replication_degree=result.replication_degree,
            imbalance=result.imbalance,
            score_computations=result.score_computations,
            block_wall_ms=block_wall_ms,
        ))
    return rows


def _block_program(workload: str, block_iterations: int) -> VertexProgram:
    """A runnable program for one measured block of a stationary workload
    (the simulated path takes the analytic shortcut instead)."""
    from repro.engine.algorithms import GreedyColoring, PageRank
    if workload == "pagerank":
        return PageRank(iterations=block_iterations)
    if workload == "coloring":
        return GreedyColoring(max_iterations=block_iterations)
    raise ValueError(
        f"measure_wall needs a program_factory for workload {workload!r}")


def replication_sweep(
        stream_factory: Callable[[], EdgeStream],
        configs: Sequence[ExperimentConfig],
        num_partitions: int = NUM_PARTITIONS,
        num_instances: int = NUM_INSTANCES,
        spread: int = DEFAULT_SPREAD,
        enforce_balance: bool = True,
        balance_limit: float = BALANCE_LIMIT) -> List[LatencyRow]:
    """Fig. 7g–i / Fig. 1: replication degree per configuration."""
    rows: List[LatencyRow] = []
    for config in configs:
        result = run_partitioning(
            config.factory, stream_factory(),
            num_partitions=num_partitions,
            num_instances=num_instances,
            spread=spread)
        if enforce_balance:
            check_balance(result, limit=balance_limit)
        rows.append(LatencyRow(
            label=config.label,
            partitioning_ms=result.latency_ms,
            block_ms=[],
            replication_degree=result.replication_degree,
            imbalance=result.imbalance,
            score_computations=result.score_computations,
        ))
    return rows


def spotlight_sweep(
        stream_factory: Callable[[], EdgeStream],
        configs: Sequence[ExperimentConfig],
        spreads: Sequence[int],
        num_partitions: int = NUM_PARTITIONS,
        num_instances: int = NUM_INSTANCES) -> Dict[str, Dict[int, float]]:
    """Fig. 8: replication degree per (strategy, spread).

    Returns ``{strategy label: {spread: replication degree}}``.  Balance is
    not enforced here: large spreads with few instances are exactly the
    regime where prior systems sacrifice either balance or locality, and
    the figure reports replication degree only.
    """
    results: Dict[str, Dict[int, float]] = {}
    for config in configs:
        per_spread: Dict[int, float] = {}
        for spread in spreads:
            result = run_partitioning(
                config.factory, stream_factory(),
                num_partitions=num_partitions,
                num_instances=num_instances,
                spread=spread)
            per_spread[spread] = result.replication_degree
        results[config.label] = per_spread
    return results
