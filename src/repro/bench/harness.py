"""Experiment runners reproducing the paper's figures.

Three experiment shapes cover every figure:

* :func:`stacked_latency_experiment` — Fig. 7a–f: for each partitioner
  configuration, partition the graph (parallel loading, z instances), then
  simulate the processing workload and report partitioning latency plus
  cumulative per-block processing latency (the paper's stacked bars).
* :func:`replication_sweep` — Fig. 7g–i and Fig. 1: replication degree (and
  partitioning latency) per configuration.
* :func:`spotlight_sweep` — Fig. 8: replication degree as a function of the
  spotlight spread, for each strategy.

All runs assert the paper's balance condition
``(maxsize − minsize)/maxsize < 0.05`` unless a run is explicitly marked
as tolerating imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.graph.graph import Graph
from repro.graph.stream import EdgeStream
from repro.engine.cost import cost_model_for
from repro.engine.placement import Placement
from repro.engine.runtime import Engine
from repro.engine.vertex_program import VertexProgram
from repro.partitioning.base import StreamingPartitioner
from repro.partitioning.parallel import ParallelLoader, ParallelResult
from repro.simtime import Clock, SimulatedClock
from repro.bench.workloads import (
    DEFAULT_SPREAD,
    NUM_INSTANCES,
    NUM_PARTITIONS,
)

PartitionerFactory = Callable[[Sequence[int], Clock], StreamingPartitioner]

#: The paper's Fig. 7 balance condition.
BALANCE_LIMIT = 0.05


@dataclass
class ExperimentConfig:
    """One bar group of a Fig. 7-style experiment."""

    label: str
    factory: PartitionerFactory


@dataclass
class LatencyRow:
    """One configuration's stacked-latency measurements."""

    label: str
    partitioning_ms: float
    block_ms: List[float]
    replication_degree: float
    imbalance: float
    score_computations: int

    def total_after_blocks(self, blocks: int) -> float:
        """Partitioning + processing latency after ``blocks`` blocks."""
        return self.partitioning_ms + sum(self.block_ms[:blocks])

    @property
    def total_ms(self) -> float:
        return self.partitioning_ms + sum(self.block_ms)


def run_partitioning(factory: PartitionerFactory,
                     stream: EdgeStream,
                     num_partitions: int = NUM_PARTITIONS,
                     num_instances: int = NUM_INSTANCES,
                     spread: int = DEFAULT_SPREAD) -> ParallelResult:
    """Partition ``stream`` with the paper's parallel-loading setup."""
    loader = ParallelLoader(
        factory,
        partitions=list(range(num_partitions)),
        num_instances=num_instances,
        spread=spread,
        clock_factory=SimulatedClock,
    )
    return loader.run(stream)


def check_balance(result: ParallelResult, limit: float = BALANCE_LIMIT) -> None:
    """Assert the paper's balance condition; raise with detail if violated."""
    observed = result.imbalance
    if observed >= limit:
        raise AssertionError(
            f"{result.algorithm}: imbalance {observed:.3f} >= {limit} "
            f"(sizes {sorted(result.partition_sizes.values())})")


def _placement(result: ParallelResult,
               num_partitions: int,
               num_machines: int) -> Placement:
    return Placement(
        result.assignments,
        partitions=list(range(num_partitions)),
        num_machines=num_machines,
    )


def stacked_latency_experiment(
        graph: Graph,
        stream_factory: Callable[[], EdgeStream],
        configs: Sequence[ExperimentConfig],
        workload: str = "pagerank",
        block_iterations: int = 100,
        num_blocks: int = 3,
        program_factory: Optional[Callable[[Graph], VertexProgram]] = None,
        num_partitions: int = NUM_PARTITIONS,
        num_instances: int = NUM_INSTANCES,
        spread: int = DEFAULT_SPREAD,
        enforce_balance: bool = True,
        balance_limit: float = BALANCE_LIMIT,
        engine_mode: str = "dense") -> List[LatencyRow]:
    """Fig. 7a–f experiment: partition, then simulate processing blocks.

    For stationary workloads (PageRank, coloring) each block's latency is
    the analytic cost of ``block_iterations`` supersteps.  For
    message-driven workloads pass ``program_factory``; each block then runs
    the program on the engine and its simulated latency is measured.

    ``engine_mode`` selects the execution backend; the default runs dense
    (vectorized CSR) kernels where the program ships one and falls back to
    the object path otherwise, producing identical rows either way.
    """
    rows: List[LatencyRow] = []
    cost_model = cost_model_for(workload)
    for config in configs:
        result = run_partitioning(
            config.factory, stream_factory(),
            num_partitions=num_partitions,
            num_instances=num_instances,
            spread=spread)
        if enforce_balance:
            check_balance(result, limit=balance_limit)
        placement = _placement(result, num_partitions, num_instances)
        engine = Engine(graph, placement, cost_model, mode=engine_mode)
        block_ms: List[float] = []
        for _ in range(num_blocks):
            if program_factory is None:
                block_ms.append(
                    engine.stationary_latency_ms(block_iterations))
            else:
                report = engine.run(program_factory(graph),
                                    max_supersteps=block_iterations)
                block_ms.append(report.latency_ms)
        rows.append(LatencyRow(
            label=config.label,
            partitioning_ms=result.latency_ms,
            block_ms=block_ms,
            replication_degree=result.replication_degree,
            imbalance=result.imbalance,
            score_computations=result.score_computations,
        ))
    return rows


def replication_sweep(
        stream_factory: Callable[[], EdgeStream],
        configs: Sequence[ExperimentConfig],
        num_partitions: int = NUM_PARTITIONS,
        num_instances: int = NUM_INSTANCES,
        spread: int = DEFAULT_SPREAD,
        enforce_balance: bool = True,
        balance_limit: float = BALANCE_LIMIT) -> List[LatencyRow]:
    """Fig. 7g–i / Fig. 1: replication degree per configuration."""
    rows: List[LatencyRow] = []
    for config in configs:
        result = run_partitioning(
            config.factory, stream_factory(),
            num_partitions=num_partitions,
            num_instances=num_instances,
            spread=spread)
        if enforce_balance:
            check_balance(result, limit=balance_limit)
        rows.append(LatencyRow(
            label=config.label,
            partitioning_ms=result.latency_ms,
            block_ms=[],
            replication_degree=result.replication_degree,
            imbalance=result.imbalance,
            score_computations=result.score_computations,
        ))
    return rows


def spotlight_sweep(
        stream_factory: Callable[[], EdgeStream],
        configs: Sequence[ExperimentConfig],
        spreads: Sequence[int],
        num_partitions: int = NUM_PARTITIONS,
        num_instances: int = NUM_INSTANCES) -> Dict[str, Dict[int, float]]:
    """Fig. 8: replication degree per (strategy, spread).

    Returns ``{strategy label: {spread: replication degree}}``.  Balance is
    not enforced here: large spreads with few instances are exactly the
    regime where prior systems sacrifice either balance or locality, and
    the figure reports replication degree only.
    """
    results: Dict[str, Dict[int, float]] = {}
    for config in configs:
        per_spread: Dict[int, float] = {}
        for spread in spreads:
            result = run_partitioning(
                config.factory, stream_factory(),
                num_partitions=num_partitions,
                num_instances=num_instances,
                spread=spread)
            per_spread[spread] = result.replication_degree
        results[config.label] = per_spread
    return results
