"""Workload definitions: scaled analogues of the paper's Table II corpus.

Each :class:`GraphSpec` names one of the paper's three evaluation graphs
and builds a scaled synthetic analogue matched on the properties the
paper's mechanisms exploit (clustering coefficient and degree skew — see
DESIGN.md §5 for the substitution argument):

* **Orkut** — social network, weak clustering (ĉ ≈ 0.04): Barabási–Albert.
* **Brain** — biological network, moderate clustering (ĉ ≈ 0.51):
  Holme–Kim power-law-cluster.
* **Web** — web graph, strong clustering (ĉ ≈ 0.82): dense near-clique
  communities with preferential hub links.

The evaluation setup constants mirror the paper: k = 32 partitions, z = 8
parallel partitioner instances (machines), spotlight spread 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

from repro.graph.graph import Graph
from repro.graph.generators import (
    barabasi_albert_graph,
    community_powerlaw_graph,
    web_like_graph,
)
from repro.graph.stream import InMemoryEdgeStream, locally_shuffled, shuffled
from repro.core.adwise import AdwisePartitioner
from repro.partitioning.base import StreamingPartitioner
from repro.partitioning.dbh import DBHPartitioner
from repro.partitioning.greedy import GreedyPartitioner
from repro.partitioning.grid import GridPartitioner
from repro.partitioning.hashing import HashPartitioner
from repro.partitioning.hdrf import HDRFPartitioner
from repro.simtime import Clock

#: Paper setup: 32 partitions across 8 machines, spotlight spread 4.
NUM_PARTITIONS = 32
NUM_INSTANCES = 8
DEFAULT_SPREAD = 4


@dataclass(frozen=True)
class GraphSpec:
    """A named, reproducible evaluation graph."""

    name: str
    builder: Callable[[int], Graph]
    clustering_band: str
    use_clustering_score: bool
    seed: int = 7

    def build(self) -> Graph:
        return self.builder(self.seed)

    def stream(self, order: str = "adjacency",
               shuffle_seed: int = 13,
               buffer_size: int = 1024) -> InMemoryEdgeStream:
        """An edge stream of the graph.

        Orders (all reproducible, fixed seeds):

        * ``"adjacency"`` (default) — edges grouped by source vertex, the
          natural order of SNAP/KONECT edge-list files the paper streams
          from; carries the stream locality the spotlight optimisation
          exploits.
        * ``"local-shuffle"`` — coarse-grained locality with fine-grained
          disorder (a running shuffle over a ``buffer_size`` reservoir),
          modelling crawl/export order; the regime where window-based
          partitioning recovers locality single-edge streaming loses.
        * ``"shuffled"`` — uniformly random order, no locality at all.
        """
        graph = self.build()
        if order == "adjacency":
            return InMemoryEdgeStream(graph.edge_list())
        if order == "local-shuffle":
            return locally_shuffled(graph.edges(), buffer_size=buffer_size,
                                    seed=shuffle_seed)
        if order == "shuffled":
            return shuffled(graph.edges(), seed=shuffle_seed)
        raise ValueError(f"unknown stream order {order!r}")


def _build_orkut(seed: int) -> Graph:
    # Power-law social graph; average degree ~38 matches Orkut's 117M/3M.
    return barabasi_albert_graph(n=1500, m=19, seed=seed)


def _build_brain(seed: int) -> Graph:
    # Dense ER communities (clustering ~0.43) + hub overlay (degree skew),
    # matching Brain's moderate clustering and very high average degree.
    return community_powerlaw_graph(num_communities=40, community_size=50,
                                    intra_p=0.6, overlay_m=3, seed=seed)


def _build_web(seed: int) -> Graph:
    # Near-clique site communities with hub links: clustering ~0.9.
    return web_like_graph(num_communities=150, community_size=16,
                          intra_p=0.95, inter_edges=2, seed=seed)


ORKUT = GraphSpec(
    name="Orkut",
    builder=_build_orkut,
    clustering_band="low",
    # The paper switches the clustering score OFF for Orkut.
    use_clustering_score=False,
)

BRAIN = GraphSpec(
    name="Brain",
    builder=_build_brain,
    clustering_band="moderate",
    use_clustering_score=True,
)

WEB = GraphSpec(
    name="Web",
    builder=_build_web,
    clustering_band="high",
    use_clustering_score=True,
)

PAPER_GRAPHS: Dict[str, GraphSpec] = {
    "orkut": ORKUT,
    "brain": BRAIN,
    "web": WEB,
}


# ---------------------------------------------------------------------------
# Partitioner factories for the ParallelLoader
# ---------------------------------------------------------------------------

def adwise_factory(latency_preference_ms: Optional[float],
                   use_clustering: bool = True,
                   **kwargs) -> Callable[[Sequence[int], Clock],
                                         StreamingPartitioner]:
    """Factory building ADWISE instances with a shared configuration."""
    def build(partitions: Sequence[int], clock: Clock) -> StreamingPartitioner:
        return AdwisePartitioner(
            partitions,
            latency_preference_ms=latency_preference_ms,
            clock=clock,
            use_clustering=use_clustering,
            **kwargs,
        )
    return build


def baseline_factories(fast: bool = False
                       ) -> Dict[str, Callable[[Sequence[int], Clock],
                                               StreamingPartitioner]]:
    """Factories for the single-edge streaming baselines.

    ``fast=True`` backs the degree-aware baselines with the array-backed
    :class:`~repro.partitioning.fast_state.FastPartitionState`.
    """
    return {
        "Hash": lambda parts, clock: HashPartitioner(parts, clock=clock),
        "Grid": lambda parts, clock: GridPartitioner(parts, clock=clock),
        "DBH": lambda parts, clock: DBHPartitioner(parts, clock=clock,
                                                   fast=fast),
        "HDRF": lambda parts, clock: HDRFPartitioner(parts, clock=clock,
                                                     fast=fast),
        "Greedy": lambda parts, clock: GreedyPartitioner(parts, clock=clock,
                                                         fast=fast),
    }
