"""ADWISE reproduction: adaptive window-based streaming edge partitioning.

A full implementation of the ICDCS 2018 paper "ADWISE: Adaptive
Window-based Streaming Edge Partitioning for High-Speed Graph Processing"
(Mayer et al.), including the single-edge streaming baselines it compares
against (Hash, Grid, DBH, HDRF, Greedy), the parallel loading model with
spotlight partitioning, and a deterministic distributed graph-processing
engine simulator used to reproduce the paper's partitioning-vs-processing
latency trade-off experiments.

Quickstart::

    from repro import open_session

    session = open_session(algorithm="adwise", partitions=8,
                           latency_preference_ms=50.0)
    session.ingest([(0, 1), (1, 2), (0, 2)])
    result = session.finalize()
    print(result.replication_degree, result.imbalance)

or, batch-style with explicit objects::

    from repro import AdwisePartitioner, shuffled, barabasi_albert_graph

    graph = barabasi_albert_graph(n=1000, m=5, seed=1)
    stream = shuffled(graph.edges(), seed=2)
    partitioner = AdwisePartitioner(range(8), latency_preference_ms=50.0)
    result = partitioner.partition_stream(stream)

For a long-lived multi-tenant daemon speaking this API over TCP, see
``repro.service`` and the ``serve`` CLI subcommand.
"""

from repro.graph import (
    Edge,
    Graph,
    EdgeStream,
    FileChunkStream,
    FileEdgeStream,
    InMemoryEdgeStream,
    chunk_file_stream,
    chunk_stream,
    locally_shuffled,
    shuffled,
    barabasi_albert_graph,
    brain_like_graph,
    community_powerlaw_graph,
    orkut_like_graph,
    powerlaw_cluster_graph,
    rmat_graph,
    watts_strogatz_graph,
    web_like_graph,
    average_clustering,
    summarize,
)
from repro.core import (
    AdaptiveBalancer,
    AdaptiveWindowController,
    AdwisePartitioner,
    AdwiseScoring,
    EdgeWindow,
    spotlight_spreads,
)
from repro.partitioning import (
    DBHPartitioner,
    GreedyPartitioner,
    GridPartitioner,
    HashPartitioner,
    HDRFPartitioner,
    JaBeJaVCPartitioner,
    NEPartitioner,
    OneDimPartitioner,
    ParallelLoader,
    ParallelResult,
    PartitionResult,
    PartitionState,
    PartitionerSpec,
    StateSnapshot,
    PowerLyraPartitioner,
    RestreamingDriver,
    StreamingPartitioner,
    TwoDimPartitioner,
    replication_degree,
)
from repro.engine import (
    CostModel,
    Engine,
    Placement,
    SimulationReport,
    VertexProgram,
)
from repro.cluster import (
    ClusterEngine,
    ClusterError,
    ClusterReport,
    FaultInjector,
    ShardedGraph,
)
from repro.simtime import SimulatedClock, WallClock
from repro.api import (
    PartitionSession,
    SessionError,
    SessionSnapshot,
    SessionStats,
    open_session,
    restore_session,
)
from repro.partitioning.base import Assignment

__version__ = "1.1.0"

__all__ = [
    "Edge",
    "Graph",
    "EdgeStream",
    "FileEdgeStream",
    "InMemoryEdgeStream",
    "FileChunkStream",
    "chunk_file_stream",
    "chunk_stream",
    "locally_shuffled",
    "shuffled",
    "barabasi_albert_graph",
    "brain_like_graph",
    "community_powerlaw_graph",
    "orkut_like_graph",
    "powerlaw_cluster_graph",
    "rmat_graph",
    "watts_strogatz_graph",
    "web_like_graph",
    "average_clustering",
    "summarize",
    "AdaptiveBalancer",
    "AdaptiveWindowController",
    "AdwisePartitioner",
    "AdwiseScoring",
    "EdgeWindow",
    "spotlight_spreads",
    "DBHPartitioner",
    "GreedyPartitioner",
    "GridPartitioner",
    "HashPartitioner",
    "HDRFPartitioner",
    "JaBeJaVCPartitioner",
    "NEPartitioner",
    "PowerLyraPartitioner",
    "RestreamingDriver",
    "OneDimPartitioner",
    "ParallelLoader",
    "PartitionerSpec",
    "StateSnapshot",
    "ParallelResult",
    "PartitionResult",
    "PartitionState",
    "StreamingPartitioner",
    "TwoDimPartitioner",
    "replication_degree",
    "CostModel",
    "Engine",
    "Placement",
    "SimulationReport",
    "VertexProgram",
    "ClusterEngine",
    "ClusterError",
    "ClusterReport",
    "FaultInjector",
    "ShardedGraph",
    "SimulatedClock",
    "WallClock",
    "Assignment",
    "PartitionSession",
    "SessionError",
    "SessionSnapshot",
    "SessionStats",
    "open_session",
    "restore_session",
    "__version__",
]
