"""Exporters: Prometheus text exposition, JSONL dumps, Chrome/Perfetto
trace conversion and a human span-tree renderer.

All exporters consume the *snapshot* form (plain dicts) so they work
identically on the live registry, a pickled worker snapshot, or a JSONL
sink file read back from disk.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from .registry import MetricsRegistry, nearest_rank

__all__ = [
    "prometheus_text",
    "registry_jsonl",
    "dump_jsonl",
    "chrome_trace_events",
    "write_chrome_trace",
    "load_trace_jsonl",
    "render_tree",
]

SnapshotLike = Union[MetricsRegistry, Dict[str, list]]


def _as_snapshot(source: SnapshotLike) -> Dict[str, list]:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return source


def _label_str(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        '%s="%s"' % (k, str(v).replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in sorted(merged.items())
    )
    return "{%s}" % inner


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def prometheus_text(source: SnapshotLike) -> str:
    """Render a registry (or snapshot) in Prometheus text exposition format.

    Histograms emit the standard ``_bucket``/``_sum``/``_count`` triplet
    plus exact ``quantile``-labeled gauges (p50/p99) computed from the
    retained sample window.
    """
    snap = _as_snapshot(source)
    lines: List[str] = []
    seen_types: set = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append("# TYPE %s %s" % (name, kind))

    for entry in snap.get("counters", []):
        type_line(entry["name"], "counter")
        lines.append(
            "%s%s %s" % (entry["name"], _label_str(entry["labels"]), _fmt(entry["value"]))
        )
    for entry in snap.get("gauges", []):
        type_line(entry["name"], "gauge")
        lines.append(
            "%s%s %s" % (entry["name"], _label_str(entry["labels"]), _fmt(entry["value"]))
        )
    for entry in snap.get("histograms", []):
        name = entry["name"]
        labels = entry["labels"]
        type_line(name, "histogram")
        cumulative = 0
        for bound, count in zip(entry["bounds"], entry["bucket_counts"]):
            cumulative += count
            lines.append(
                "%s_bucket%s %d"
                % (name, _label_str(labels, {"le": _fmt(bound)}), cumulative)
            )
        cumulative += entry["bucket_counts"][len(entry["bounds"])] if len(
            entry["bucket_counts"]
        ) > len(entry["bounds"]) else 0
        lines.append(
            "%s_bucket%s %d" % (name, _label_str(labels, {"le": "+Inf"}), cumulative)
        )
        lines.append("%s_sum%s %s" % (name, _label_str(labels), _fmt(entry["sum"])))
        lines.append("%s_count%s %d" % (name, _label_str(labels), entry["count"]))
        window = sorted(entry.get("samples", []))
        for fraction, tag in ((0.5, "0.5"), (0.99, "0.99")):
            lines.append(
                "%s%s %s"
                % (
                    name,
                    _label_str(labels, {"quantile": tag}),
                    _fmt(nearest_rank(window, fraction)),
                )
            )
    return "\n".join(lines) + "\n"


def registry_jsonl(source: SnapshotLike) -> str:
    """One JSON line per series — the offline-diffing format."""
    snap = _as_snapshot(source)
    lines: List[str] = []
    for kind in ("counters", "gauges", "histograms"):
        for entry in snap.get(kind, []):
            record = dict(entry)
            record["kind"] = kind[:-1]
            lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + ("\n" if lines else "")


def dump_jsonl(source: SnapshotLike, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(registry_jsonl(source))


# ----------------------------------------------------------------------
# Trace export
# ----------------------------------------------------------------------


def chrome_trace_events(spans: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Convert finished spans to Chrome trace 'X' (complete) events.

    The output loads directly in Perfetto / chrome://tracing; trace and
    span ids ride along in ``args`` so cross-process parentage stays
    inspectable.
    """
    events: List[Dict[str, Any]] = []
    for span in spans:
        args = dict(span.get("attrs", {}))
        args["trace_id"] = span.get("trace_id", "")
        args["span_id"] = span.get("span_id", "")
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        if span.get("error"):
            args["error"] = span["error"]
        events.append(
            {
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "ts": span["ts_us"],
                "dur": max(1, span.get("dur_us", 1)),
                "pid": span.get("pid", 0),
                "tid": span.get("tid", 0),
                "args": args,
            }
        )
    return events


def write_chrome_trace(path: str, spans: Iterable[Dict[str, Any]]) -> None:
    payload = {"traceEvents": chrome_trace_events(spans), "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)


def load_trace_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a span sink file (one JSON span per line) back into memory."""
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def render_tree(spans: Sequence[Dict[str, Any]]) -> str:
    """Human-readable parent/child tree of one or more traces.

    Spans from several processes interleave by wall-clock start; orphans
    (parent span not captured locally) render as roots with a marker.
    """
    by_id = {span["span_id"]: span for span in spans}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent not in by_id:
            parent = None  # orphan: remote parent not in this capture
        children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: (s.get("ts_us", 0), s.get("span_id", "")))

    lines: List[str] = []

    def walk(span: Dict[str, Any], depth: int) -> None:
        dur_ms = span.get("dur_us", 0) / 1000.0
        marker = ""
        if span.get("parent_id") and span["parent_id"] not in by_id:
            marker = " [remote-parent %s]" % span["parent_id"]
        attrs = span.get("attrs") or {}
        attr_text = (
            " " + " ".join("%s=%s" % (k, v) for k, v in sorted(attrs.items()))
            if attrs
            else ""
        )
        lines.append(
            "%s%s %.3fms pid=%s%s%s"
            % ("  " * depth, span["name"], dur_ms, span.get("pid", "?"), attr_text, marker)
        )
        for child in children.get(span["span_id"], []):
            walk(child, depth + 1)

    roots = children.get(None, [])
    traces = sorted({span.get("trace_id", "") for span in spans})
    multi = len(traces) > 1
    for trace_id in traces:
        if multi:
            lines.append("trace %s" % trace_id)
        for root in roots:
            if root.get("trace_id", "") == trace_id:
                walk(root, 1 if multi else 0)
    return "\n".join(lines)
