"""Process-local metrics registry: counters, gauges, histograms.

Design constraints (see DESIGN.md §13):

* **Disabled by default, zero-allocation when off.**  Call sites fetch
  instrument handles through :func:`repro.obs.counter` / ``gauge`` /
  ``histogram``; when observability is disabled those helpers return the
  module-level no-op singletons, so hot paths pay one attribute call on a
  shared object and allocate nothing.
* **Exact recent percentiles.**  Histograms keep a bounded numpy ring of
  raw samples alongside cumulative bucket counts, so ``p50``/``p99`` over
  the retained window are exact (nearest-rank), while the bucket counts
  give the cumulative view Prometheus expects.
* **Mergeable snapshots.**  ``MetricsRegistry.snapshot()`` returns a plain
  picklable dict that a coordinator can ``merge_snapshot()`` from worker
  processes; counters sum, gauges last-write, histograms merge counts and
  concatenate retained samples.

Increments are not individually locked: CPython's GIL makes the races
benign (a lost increment under pathological contention, never corruption),
and metrics here are diagnostics, not accounting.  Series *creation* is
locked so label fan-out from threads is safe.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_COUNTER",
    "NOOP_GAUGE",
    "NOOP_HISTOGRAM",
    "nearest_rank",
    "DEFAULT_BUCKETS",
]

# Log-spaced latency buckets in seconds: 10 µs .. 10 s, then +Inf.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** exp, 10) for exp in [x / 2.0 for x in range(-10, 3)]
)


def nearest_rank(ordered: Sequence[float], fraction: float) -> float:
    """Exact nearest-rank percentile of an already-sorted sequence.

    The canonical definition: the smallest value such that at least
    ``fraction`` of the samples are <= it.  ``fraction`` is clamped into
    ``[0, 1]``; an empty sequence yields ``0.0`` so callers can render
    idle series without guards.
    """
    n = len(ordered)
    if n == 0:
        return 0.0
    if fraction <= 0.0:
        return float(ordered[0])
    if fraction >= 1.0:
        return float(ordered[-1])
    rank = max(0, math.ceil(fraction * n) - 1)
    return float(ordered[min(rank, n - 1)])


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value (queue depths, window sizes, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Bucketed histogram with an exact recent-sample window.

    ``observe()`` feeds both a cumulative bucket vector (numpy
    ``searchsorted`` against log-spaced bounds) and a bounded ring of raw
    samples; ``percentile()`` is exact nearest-rank over the ring, which
    is what the service's ``TenantMetrics`` delegates to.
    """

    __slots__ = (
        "bounds",
        "bucket_counts",
        "count",
        "total",
        "min",
        "max",
        "window",
        "_samples",
        "_cursor",
        "_filled",
    )

    def __init__(
        self,
        window: int = 1024,
        bounds: Optional[Iterable[float]] = None,
    ) -> None:
        if window <= 0:
            raise ValueError("histogram window must be positive")
        self.bounds = np.asarray(
            sorted(bounds) if bounds is not None else DEFAULT_BUCKETS,
            dtype=np.float64,
        )
        # One slot per finite bound plus the +Inf overflow bucket.
        self.bucket_counts = np.zeros(len(self.bounds) + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.window = int(window)
        self._samples = np.zeros(self.window, dtype=np.float64)
        self._cursor = 0
        self._filled = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        idx = int(np.searchsorted(self.bounds, value, side="left"))
        self.bucket_counts[idx] += 1
        self._samples[self._cursor] = value
        self._cursor = (self._cursor + 1) % self.window
        if self._filled < self.window:
            self._filled += 1

    def samples(self) -> np.ndarray:
        """The retained window of raw samples, unordered."""
        return self._samples[: self._filled].copy()

    def percentile(self, fraction: float) -> float:
        """Exact nearest-rank percentile over the retained window."""
        if self._filled == 0:
            return 0.0
        window = np.sort(self._samples[: self._filled])
        return nearest_rank(window, fraction)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot_entry(self, name: str, labels: Dict[str, str]) -> Dict[str, object]:
        """Plain-dict form of this histogram, as one snapshot series."""
        return {
            "name": name,
            "labels": dict(labels),
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "bounds": [float(b) for b in self.bounds],
            "bucket_counts": [int(c) for c in self.bucket_counts],
            "window": self.window,
            "samples": [float(s) for s in self.samples()],
        }


class _NoopInstrument:
    """Shared do-nothing instrument returned while observability is off.

    A single stateless instance stands in for every counter, gauge and
    histogram, so disabled call sites never allocate.
    """

    __slots__ = ()

    value = 0.0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, fraction: float) -> float:
        return 0.0

    def samples(self) -> List[float]:
        return []


NOOP_COUNTER = _NoopInstrument()
NOOP_GAUGE = NOOP_COUNTER
NOOP_HISTOGRAM = NOOP_COUNTER

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Keyed store of labeled series.

    Series are identified by ``(name, sorted labels)``; repeated lookups
    return the same instrument so handles can be cached at call sites.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, _LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, _LabelKey], Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        series = self._counters.get(key)
        if series is None:
            with self._lock:
                series = self._counters.setdefault(key, Counter())
        return series

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        series = self._gauges.get(key)
        if series is None:
            with self._lock:
                series = self._gauges.setdefault(key, Gauge())
        return series

    def histogram(
        self,
        name: str,
        window: int = 1024,
        bounds: Optional[Iterable[float]] = None,
        **labels: object,
    ) -> Histogram:
        key = (name, _label_key(labels))
        series = self._histograms.get(key)
        if series is None:
            with self._lock:
                series = self._histograms.setdefault(
                    key, Histogram(window=window, bounds=bounds)
                )
        return series

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------
    # Snapshot / merge (cross-process aggregation)
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, list]:
        """Plain picklable view of every series, for cross-process merge."""
        counters = [
            {"name": name, "labels": dict(key), "value": series.value}
            for (name, key), series in sorted(self._counters.items())
        ]
        gauges = [
            {"name": name, "labels": dict(key), "value": series.value}
            for (name, key), series in sorted(self._gauges.items())
        ]
        histograms = [
            series.snapshot_entry(name, dict(key))
            for (name, key), series in sorted(self._histograms.items())
        ]
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge_snapshot(self, snap: Dict[str, list]) -> None:
        """Fold a snapshot from another process into this registry.

        Counters and histogram totals add; gauges take the snapshot's
        value (last write wins); histogram sample windows concatenate,
        keeping the most recent ``window`` samples.
        """
        for entry in snap.get("counters", []):
            self.counter(entry["name"], **entry["labels"]).inc(entry["value"])
        for entry in snap.get("gauges", []):
            self.gauge(entry["name"], **entry["labels"]).set(entry["value"])
        for entry in snap.get("histograms", []):
            series = self.histogram(
                entry["name"],
                window=entry.get("window", 1024),
                bounds=entry.get("bounds"),
                **entry["labels"],
            )
            incoming = np.asarray(entry.get("bucket_counts", []), dtype=np.int64)
            if len(incoming) == len(series.bucket_counts):
                series.bucket_counts += incoming
            series.count += int(entry.get("count", 0))
            series.total += float(entry.get("sum", 0.0))
            if entry.get("count"):
                series.min = min(series.min, float(entry.get("min", series.min)))
                series.max = max(series.max, float(entry.get("max", series.max)))
            for value in entry.get("samples", []):
                series._samples[series._cursor] = value
                series._cursor = (series._cursor + 1) % series.window
                if series._filled < series.window:
                    series._filled += 1
