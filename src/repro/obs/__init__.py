"""``repro.obs`` — unified observability plane.

One registry + one tracer per process, disabled by default.  Call sites
use the module-level helpers::

    from repro import obs

    edges = obs.counter("repro_partition_edges_total", algorithm="adwise")
    edges.inc(len(batch))

    with obs.span("partition.ingest", batch=len(batch)):
        ...

When disabled (the default) every helper returns a shared no-op object —
no allocation, no locking, a single attribute call of overhead — so
instrumented hot paths stay within the ≤3% budget gated by
``benchmarks/BENCH_obs.json``.

Enablement propagates to child processes through environment variables:
``enable()`` sets ``REPRO_OBS=1`` (and ``REPRO_TRACE_FILE`` when a span
sink is configured), which forked *and* spawned workers read at import,
so a partition → cluster-superstep → service-ingest run writes one
correlated trace across every participating process.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, Optional

from .export import (
    chrome_trace_events,
    dump_jsonl,
    load_trace_jsonl,
    prometheus_text,
    registry_jsonl,
    render_tree,
    write_chrome_trace,
)
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
    nearest_rank,
)
from .trace import (
    NOOP_SPAN,
    Span,
    SpanTracer,
    current_context,
    traced,
    use_context,
)

__all__ = [
    "enable",
    "disable",
    "is_enabled",
    "registry",
    "tracer",
    "counter",
    "gauge",
    "histogram",
    "span",
    "traced",
    "current_context",
    "use_context",
    "snapshot",
    "merge_snapshot",
    "prometheus_text",
    "registry_jsonl",
    "dump_jsonl",
    "chrome_trace_events",
    "write_chrome_trace",
    "load_trace_jsonl",
    "render_tree",
    "nearest_rank",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "DEFAULT_BUCKETS",
    "NOOP_COUNTER",
    "NOOP_GAUGE",
    "NOOP_HISTOGRAM",
    "NOOP_SPAN",
]

ENV_FLAG = "REPRO_OBS"
ENV_TRACE_FILE = "REPRO_TRACE_FILE"

_registry = MetricsRegistry()
_tracer = SpanTracer()
_enabled = False


def _activate_from_env() -> None:
    """Pick up enablement set by a parent process (fork or spawn)."""
    global _enabled
    if os.environ.get(ENV_FLAG, "") not in ("", "0"):
        _enabled = True
        sink = os.environ.get(ENV_TRACE_FILE) or None
        if sink:
            _tracer.set_sink(sink)


def enable(trace_file: Optional[str] = None) -> None:
    """Turn observability on for this process and its future children.

    ``trace_file`` configures the shared JSONL span sink; every process
    that inherits the environment appends finished spans to it, which is
    how one request yields one trace across process boundaries.
    """
    global _enabled
    _enabled = True
    os.environ[ENV_FLAG] = "1"
    if trace_file is not None:
        os.environ[ENV_TRACE_FILE] = trace_file
        _tracer.set_sink(trace_file)


def disable() -> None:
    """Turn observability off (the default state)."""
    global _enabled
    _enabled = False
    os.environ.pop(ENV_FLAG, None)
    os.environ.pop(ENV_TRACE_FILE, None)
    _tracer.set_sink(None)


def is_enabled() -> bool:
    return _enabled


def registry() -> MetricsRegistry:
    """The live process-local registry (even while disabled)."""
    return _registry


def tracer() -> SpanTracer:
    return _tracer


def counter(name: str, **labels: object):
    if not _enabled:
        return NOOP_COUNTER
    return _registry.counter(name, **labels)


def gauge(name: str, **labels: object):
    if not _enabled:
        return NOOP_GAUGE
    return _registry.gauge(name, **labels)


def histogram(
    name: str,
    window: int = 1024,
    bounds: Optional[Iterable[float]] = None,
    **labels: object,
):
    if not _enabled:
        return NOOP_HISTOGRAM
    return _registry.histogram(name, window=window, bounds=bounds, **labels)


def span(name: str, **attrs: Any):
    if not _enabled:
        return NOOP_SPAN
    return Span(_tracer, name, attrs)


def snapshot() -> Dict[str, list]:
    return _registry.snapshot()


def merge_snapshot(snap: Dict[str, list]) -> None:
    _registry.merge_snapshot(snap)


_activate_from_env()
