"""Span tracer: context-manager spans with cross-process correlation.

Spans nest through a :mod:`contextvars` variable, time themselves with
``time.perf_counter_ns`` (monotonic), and carry ``trace_id`` / ``span_id``
pairs that survive the repo's three process boundaries:

* the PR-2 parallel-loading pickle boundary (``partitioning/parallel.py``),
* the PR-4 cluster transport pipes (``cluster/transport.py``), and
* the PR-6 ndjson service protocol (``service/client.py`` → ``server.py``).

Producers call :func:`current_context` to capture ``{"trace_id", "span_id"}``
and ship it with the payload; consumers wrap their work in
:func:`use_context` so their spans parent to the remote caller.  Finished
spans land in a bounded in-process ring and, when a sink file is
configured (``REPRO_TRACE_FILE``), are appended as JSONL — one
``os.write`` per span, so concurrent processes can share one sink file
and still produce one loadable trace.

When tracing is disabled, :func:`repro.obs.span` returns a shared
stateless no-op context manager: zero allocation on the hot path.
"""

from __future__ import annotations

import contextvars
import functools
import itertools
import json
import os
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "SpanTracer",
    "NOOP_SPAN",
    "current_context",
    "use_context",
]

# (trace_id, span_id) of the innermost live span, or None at root.
_CURRENT: contextvars.ContextVar[Optional[Tuple[str, str]]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

_id_counter = itertools.count(1)
_id_lock = threading.Lock()


def _new_span_id() -> str:
    with _id_lock:
        seq = next(_id_counter)
    return "%x-%x" % (os.getpid(), seq)


def _new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


def current_context() -> Optional[Dict[str, str]]:
    """Wire-format trace context of the innermost live span, if any."""
    current = _CURRENT.get()
    if current is None:
        return None
    return {"trace_id": current[0], "span_id": current[1]}


@contextmanager
def use_context(ctx: Optional[Dict[str, str]]) -> Iterator[None]:
    """Adopt a remote trace context so local spans parent to it.

    ``ctx`` is the dict produced by :func:`current_context` on the other
    side of a pickle/ndjson boundary; ``None`` is a no-op so call sites
    need no guards.
    """
    if not ctx or "trace_id" not in ctx or "span_id" not in ctx:
        yield
        return
    token = _CURRENT.set((str(ctx["trace_id"]), str(ctx["span_id"])))
    try:
        yield
    finally:
        _CURRENT.reset(token)


class SpanTracer:
    """Collects finished spans; optionally mirrors them to a JSONL sink."""

    def __init__(self, capacity: int = 8192, sink_path: Optional[str] = None) -> None:
        self.capacity = capacity
        self.finished: deque = deque(maxlen=capacity)
        self._sink_path = sink_path
        self._sink_fd: Optional[int] = None

    @property
    def sink_path(self) -> Optional[str]:
        return self._sink_path

    def set_sink(self, path: Optional[str]) -> None:
        if self._sink_fd is not None:
            os.close(self._sink_fd)
            self._sink_fd = None
        self._sink_path = path

    def emit(self, span: Dict[str, Any]) -> None:
        self.finished.append(span)
        if self._sink_path is not None:
            if self._sink_fd is None:
                self._sink_fd = os.open(
                    self._sink_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
            line = json.dumps(span, separators=(",", ":")) + "\n"
            # One O_APPEND write per span: atomic enough for concurrent
            # processes sharing the sink file.
            os.write(self._sink_fd, line.encode("utf-8"))

    def spans(self) -> List[Dict[str, Any]]:
        return list(self.finished)

    def clear(self) -> None:
        self.finished.clear()

    def close(self) -> None:
        if self._sink_fd is not None:
            os.close(self._sink_fd)
            self._sink_fd = None


class Span:
    """A timed region.  Use via ``repro.obs.span(...)``, not directly."""

    __slots__ = (
        "name",
        "attrs",
        "tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "_token",
        "_start_ns",
        "_wall_us",
    )

    def __init__(self, tracer: SpanTracer, name: str, attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.trace_id = ""
        self.span_id = ""
        self.parent_id: Optional[str] = None
        self._token: Optional[contextvars.Token] = None
        self._start_ns = 0
        self._wall_us = 0

    def __enter__(self) -> "Span":
        parent = _CURRENT.get()
        if parent is None:
            self.trace_id = _new_trace_id()
            self.parent_id = None
        else:
            self.trace_id, self.parent_id = parent
        self.span_id = _new_span_id()
        self._token = _CURRENT.set((self.trace_id, self.span_id))
        self._wall_us = time.time_ns() // 1000
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur_us = (time.perf_counter_ns() - self._start_ns) // 1000
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        record: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": os.getpid(),
            "tid": threading.get_ident() & 0xFFFFFFFF,
            "ts_us": self._wall_us,
            "dur_us": int(dur_us),
        }
        if self.attrs:
            record["attrs"] = {k: _jsonable(v) for k, v in self.attrs.items()}
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self.tracer.emit(record)
        return False

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class _NoopSpan:
    """Stateless reusable context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


def traced(
    name: Optional[str] = None, **attrs: Any
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator form of ``repro.obs.span``; resolves enablement per call."""

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            from repro import obs

            with obs.span(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
