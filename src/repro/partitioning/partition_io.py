"""Persist and reload partitionings.

A partitioning is the product a preprocessing pipeline hands to the graph
engine, so it must survive a process boundary.  The format is a plain
text file of ``u v partition`` lines with ``#`` comments — trivially
consumable by any downstream system and diffable across runs.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.graph.graph import Edge
from repro.partitioning.base import PartitionResult
from repro.partitioning.state import PartitionState

_COMMENT_PREFIXES = ("#", "%")


def write_assignments(path: "str | os.PathLike",
                      assignments: Mapping[Edge, int],
                      header: str = "") -> int:
    """Write ``u v partition`` lines; return the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for edge, partition in assignments.items():
            handle.write(f"{edge.u} {edge.v} {partition}\n")
            count += 1
    return count


def read_assignments(path: "str | os.PathLike") -> Dict[Edge, int]:
    """Read a ``u v partition`` file back into an assignment mapping."""
    assignments: Dict[Edge, int] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped or stripped.startswith(_COMMENT_PREFIXES):
                continue
            parts = stripped.split()
            if len(parts) < 3:
                raise ValueError(f"malformed assignment line: {line!r}")
            assignments[Edge(int(parts[0]), int(parts[1])).canonical()] = \
                int(parts[2])
    return assignments


def save_result(path: "str | os.PathLike", result: PartitionResult) -> int:
    """Persist a :class:`PartitionResult`'s assignments with provenance."""
    header = (f"algorithm={result.algorithm} "
              f"replication_degree={result.replication_degree:.6f} "
              f"imbalance={result.imbalance:.6f} "
              f"latency_ms={result.latency_ms:.3f}")
    return write_assignments(path, result.assignments, header=header)


def load_result(path: "str | os.PathLike",
                partitions: Optional[Sequence[int]] = None,
                algorithm: str = "loaded") -> PartitionResult:
    """Rebuild a :class:`PartitionResult` from an assignment file.

    The vertex cache is reconstructed by replaying assignments, so all
    quality metrics (replication degree, imbalance) are recomputed rather
    than trusted from the header.
    """
    assignments = read_assignments(path)
    if partitions is None:
        partitions = sorted(set(assignments.values()))
    if not partitions:
        raise ValueError(f"no assignments found in {os.fspath(path)!r}")
    state = PartitionState(partitions)
    for edge, partition in assignments.items():
        state.observe_degrees(edge)
        state.assign(edge, partition)
    return PartitionResult(
        algorithm=algorithm,
        state=state,
        assignments=assignments,
        latency_ms=0.0,
    )
