"""Persist and reload partitionings.

A partitioning is the product a preprocessing pipeline hands to the graph
engine, so it must survive a process boundary.  The format is a plain
text file of ``u v partition`` lines with ``#`` comments — trivially
consumable by any downstream system and diffable across runs.

Multi-million-edge assignment files are practical shard inputs for the
cluster runtime: writes go through batched ``writelines`` (one syscall
per ~16k lines instead of one per edge), and paths ending in ``.gz`` are
read and written through :mod:`gzip` transparently, on both the write
and the read side.
"""

from __future__ import annotations

import gzip
import os
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from repro.graph.graph import Edge
from repro.partitioning.base import PartitionResult
from repro.partitioning.state import PartitionState

_COMMENT_PREFIXES = ("#", "%")

#: Lines buffered per ``writelines`` batch.
_WRITE_BATCH = 16384


def _open_text(path: "str | os.PathLike", mode: str):
    """Open ``path`` for text I/O, through gzip when it ends in ``.gz``."""
    if os.fspath(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_assignments(path: "str | os.PathLike",
                      assignments: Mapping[Edge, int],
                      header: str = "") -> int:
    """Write ``u v partition`` lines; return the number written."""
    count = 0
    with _open_text(path, "w") as handle:
        if header:
            handle.writelines(f"# {line}\n"
                              for line in header.splitlines())
        batch: List[str] = []
        for edge, partition in assignments.items():
            batch.append(f"{edge.u} {edge.v} {partition}\n")
            if len(batch) >= _WRITE_BATCH:
                handle.writelines(batch)
                count += len(batch)
                batch = []
        handle.writelines(batch)
        count += len(batch)
    return count


def iter_assignments(path: "str | os.PathLike") -> Iterator[tuple]:
    """Stream ``(u, v, partition)`` triples without materialising the
    mapping (``.gz`` transparent) — the parser behind
    :func:`read_assignments` and the out-of-core read path."""
    with _open_text(path, "r") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped or stripped.startswith(_COMMENT_PREFIXES):
                continue
            parts = stripped.split()
            if len(parts) < 3:
                raise ValueError(f"malformed assignment line: {line!r}")
            yield int(parts[0]), int(parts[1]), int(parts[2])


def read_assignments(path: "str | os.PathLike") -> Dict[Edge, int]:
    """Read a ``u v partition`` file back into an assignment mapping."""
    return {Edge(u, v).canonical(): partition
            for u, v, partition in iter_assignments(path)}


def save_result(path: "str | os.PathLike", result: PartitionResult) -> int:
    """Persist a :class:`PartitionResult`'s assignments with provenance."""
    header = (f"algorithm={result.algorithm} "
              f"replication_degree={result.replication_degree:.6f} "
              f"imbalance={result.imbalance:.6f} "
              f"latency_ms={result.latency_ms:.3f}")
    return write_assignments(path, result.assignments, header=header)


def load_result(path: "str | os.PathLike",
                partitions: Optional[Sequence[int]] = None,
                algorithm: str = "loaded") -> PartitionResult:
    """Rebuild a :class:`PartitionResult` from an assignment file.

    The vertex cache is reconstructed by replaying assignments, so all
    quality metrics (replication degree, imbalance) are recomputed rather
    than trusted from the header.
    """
    assignments = read_assignments(path)
    if partitions is None:
        partitions = sorted(set(assignments.values()))
    if not partitions:
        raise ValueError(f"no assignments found in {os.fspath(path)!r}")
    state = PartitionState(partitions)
    for edge, partition in assignments.items():
        state.observe_degrees(edge)
        state.assign(edge, partition)
    return PartitionResult(
        algorithm=algorithm,
        state=state,
        assignments=assignments,
        latency_ms=0.0,
    )
