"""Base classes for streaming vertex-cut partitioners.

Every algorithm — the single-edge baselines and ADWISE — implements
:class:`StreamingPartitioner`: a single pass over an edge stream, one
assignment per edge, all bookkeeping through a :class:`PartitionState`.
Latency is accounted on an injected :class:`~repro.simtime.Clock` so that
the "partitioning latency" axis of every experiment is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.graph.graph import Edge
from repro.graph.stream import EdgeStream
from repro.partitioning.fast_state import FastPartitionState
from repro.partitioning.state import PartitionState
from repro.simtime import Clock, SimulatedClock


@dataclass
class PartitionResult:
    """Outcome of one partitioning run.

    Attributes
    ----------
    algorithm:
        Name of the partitioner that produced this result.
    state:
        Final :class:`PartitionState` (vertex cache, partition sizes).
    assignments:
        Edge → partition mapping, in assignment order.
    latency_ms:
        Partitioning latency charged on the clock.
    score_computations:
        Number of score computations performed (the paper's complexity unit).
    """

    algorithm: str
    state: PartitionState
    assignments: Dict[Edge, int]
    latency_ms: float
    score_computations: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def replication_degree(self) -> float:
        return self.state.replication_degree()

    @property
    def imbalance(self) -> float:
        return self.state.imbalance()

    def partition_of(self, edge: Edge) -> int:
        """Partition the canonical form of ``edge`` was assigned to."""
        return self.assignments[edge.canonical()]


class StreamingPartitioner:
    """A single-pass streaming vertex-cut partitioner.

    Subclasses implement :meth:`select_partition` (the scoring decision for
    one edge).  Window-based algorithms override :meth:`partition_stream`
    wholesale since their control flow differs.

    ``fast=True`` backs the partitioner with an array-backed
    :class:`~repro.partitioning.fast_state.FastPartitionState`, enabling
    the batched scoring kernels in degree-aware algorithms; the default
    keeps the legacy dict-backed state for differential testing.
    """

    name = "abstract"

    def __init__(self, partitions: Sequence[int],
                 clock: Optional[Clock] = None,
                 state: Optional[PartitionState] = None,
                 fast: bool = False) -> None:
        if state is not None:
            self.state = state
        elif fast:
            self.state = FastPartitionState(partitions)
        else:
            self.state = PartitionState(partitions)
        self.clock = clock if clock is not None else SimulatedClock()

    @property
    def partitions(self) -> List[int]:
        return self.state.partitions

    # ------------------------------------------------------------------
    # To be provided by subclasses
    # ------------------------------------------------------------------
    def select_partition(self, edge: Edge) -> int:
        """Choose the partition for ``edge`` given the current state."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def partition_edge(self, edge: Edge) -> int:
        """Observe, score and assign a single edge; return its partition."""
        edge = edge.canonical()
        self.state.observe_degrees(edge)
        partition = self.select_partition(edge)
        self.state.assign(edge, partition)
        self.clock.charge_assignment()
        return partition

    def partition_stream(self, stream: EdgeStream) -> PartitionResult:
        """Partition the whole stream; single-edge streaming main loop."""
        start = self.clock.now()
        assignments: Dict[Edge, int] = {}
        for edge in stream:
            canon = edge.canonical()
            assignments[canon] = self.partition_edge(canon)
        return PartitionResult(
            algorithm=self.name,
            state=self.state,
            assignments=assignments,
            latency_ms=self.clock.now() - start,
            score_computations=getattr(self.clock, "score_computations", 0),
        )
