"""Base classes for streaming vertex-cut partitioners.

Every algorithm — the single-edge baselines and ADWISE — implements
:class:`StreamingPartitioner`: a single pass over an edge stream, one
assignment per edge, all bookkeeping through a :class:`PartitionState`.
Latency is accounted on an injected :class:`~repro.simtime.Clock` so that
the "partitioning latency" axis of every experiment is deterministic.

Ingestion is incremental and first-class: a stream is consumed through
``begin() -> ingest(edges)* -> finalize()``, where each :meth:`ingest`
call may deliver any sub-slice of the stream and returns the
:class:`Assignment` decisions it emitted.  :meth:`partition_stream` is a
thin batch wrapper over those three calls, so one-shot runs and
long-lived sessions (``repro.api`` / ``repro.service``) share the exact
same driver — a batch run and any chunking of the same stream through
``ingest`` are bit-identical by construction (enforced by
``tests/test_ingest_api.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro import obs
from repro.graph.graph import Edge
from repro.graph.stream import EdgeStream
from repro.partitioning.fast_state import FastPartitionState
from repro.partitioning.state import PartitionState
from repro.simtime import Clock, SimulatedClock


@dataclass(frozen=True)
class Assignment:
    """One emitted partitioning decision: ``edge`` placed on ``partition``.

    The unit of the incremental ingest API.  Window-based partitioners
    may emit assignments in a different order than edges were ingested
    (and may defer them across ``ingest`` calls), so decisions carry the
    edge rather than relying on positional correspondence.
    """

    edge: Edge
    partition: int


@dataclass
class PartitionResult:
    """Outcome of one partitioning run.

    Attributes
    ----------
    algorithm:
        Name of the partitioner that produced this result.
    state:
        Final :class:`PartitionState` (vertex cache, partition sizes).
    assignments:
        Edge → partition mapping, in assignment order.
    latency_ms:
        Partitioning latency charged on the clock.
    score_computations:
        Number of score computations performed (the paper's complexity unit).
    """

    algorithm: str
    state: PartitionState
    assignments: Dict[Edge, int]
    latency_ms: float
    score_computations: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def replication_degree(self) -> float:
        return self.state.replication_degree()

    @property
    def imbalance(self) -> float:
        return self.state.imbalance()

    def partition_of(self, edge: Edge) -> int:
        """Partition the canonical form of ``edge`` was assigned to."""
        return self.assignments[edge.canonical()]


class StreamingPartitioner:
    """A single-pass streaming vertex-cut partitioner.

    Subclasses implement :meth:`select_partition` (the scoring decision for
    one edge).  Window-based algorithms override :meth:`partition_stream`
    wholesale since their control flow differs.

    ``fast=True`` backs the partitioner with an array-backed
    :class:`~repro.partitioning.fast_state.FastPartitionState`, enabling
    the batched scoring kernels in degree-aware algorithms; the default
    keeps the legacy dict-backed state for differential testing.
    """

    name = "abstract"

    #: Whether this algorithm can consume a stream through the
    #: incremental ``begin/ingest/finalize`` protocol.  Offline
    #: partitioners that need the whole edge set up front (NE, Ja-Be-Ja)
    #: set this to ``False`` and only support :meth:`partition_stream`.
    supports_incremental = True

    def __init__(self, partitions: Sequence[int],
                 clock: Optional[Clock] = None,
                 state: Optional[PartitionState] = None,
                 fast: bool = False) -> None:
        if state is not None:
            self.state = state
        elif fast:
            self.state = FastPartitionState(partitions)
        else:
            self.state = PartitionState(partitions)
        self.clock = clock if clock is not None else SimulatedClock()
        self._streaming = False
        self._assignments: Dict[Edge, int] = {}
        self._start_ms = 0.0

    @property
    def partitions(self) -> List[int]:
        return self.state.partitions

    # ------------------------------------------------------------------
    # To be provided by subclasses
    # ------------------------------------------------------------------
    def select_partition(self, edge: Edge) -> int:
        """Choose the partition for ``edge`` given the current state."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def partition_edge(self, edge: Edge) -> int:
        """Observe, score and assign a single edge; return its partition."""
        edge = edge.canonical()
        self.state.observe_degrees(edge)
        partition = self.select_partition(edge)
        self.state.assign(edge, partition)
        self.clock.charge_assignment()
        return partition

    # ------------------------------------------------------------------
    # Incremental ingestion protocol
    # ------------------------------------------------------------------
    def begin(self, total_edges: int = 0) -> None:
        """Open a new stream: reset per-stream driver state.

        ``total_edges`` is the expected stream length when known (batch
        runs pass ``len(stream)``); ``0`` means unbounded/unknown — the
        natural setting for a live ingest session.  Single-edge
        algorithms ignore it; window-based subclasses use it to budget
        their latency preference.
        """
        self._streaming = True
        self._assignments = {}
        self._start_ms = self.clock.now()
        obs.counter("repro_partition_streams_total",
                    algorithm=self.name).inc()

    def ingest(self, edges: Iterable[Edge]) -> List[Assignment]:
        """Consume a slice of the stream; return the decisions emitted.

        May be called any number of times between :meth:`begin` and
        :meth:`finalize`; calling it on a closed partitioner implicitly
        opens a stream of unknown length.  Single-edge algorithms assign
        every ingested edge immediately, so the returned list has one
        :class:`Assignment` per input edge, in input order.
        """
        if not self._streaming:
            self.begin()
        out: List[Assignment] = []
        assignments = self._assignments
        with obs.span("partition.ingest", algorithm=self.name):
            for edge in edges:
                canon = edge.canonical()
                partition = self.partition_edge(canon)
                assignments[canon] = partition
                out.append(Assignment(canon, partition))
        obs.counter("repro_partition_edges_total",
                    algorithm=self.name).inc(len(out))
        obs.counter("repro_partition_batches_total",
                    algorithm=self.name).inc()
        return out

    def finalize(self) -> PartitionResult:
        """Close the stream: flush deferred work, return the result.

        Single-edge algorithms have nothing buffered, so this only
        assembles the :class:`PartitionResult`; window-based subclasses
        drain their window here (the window-flush semantics batch runs
        get from stream exhaustion).
        """
        if not self._streaming:
            self.begin()
        self._streaming = False
        result = PartitionResult(
            algorithm=self.name,
            state=self.state,
            assignments=self._assignments,
            latency_ms=self.clock.now() - self._start_ms,
            score_computations=getattr(self.clock, "score_computations", 0),
        )
        self._publish_observability(result)
        return result

    def _publish_observability(self, result: PartitionResult) -> None:
        """Mirror the run's totals into the shared metrics registry."""
        if not obs.is_enabled():
            return
        labels = {"algorithm": self.name}
        obs.counter("repro_partition_score_computations_total",
                    **labels).inc(result.score_computations)
        obs.histogram("repro_partition_latency_ms",
                      **labels).observe(result.latency_ms)
        obs.gauge("repro_partition_replication_degree",
                  **labels).set(result.replication_degree)
        obs.gauge("repro_partition_imbalance",
                  **labels).set(result.imbalance)

    def partition_stream(self, stream: EdgeStream) -> PartitionResult:
        """Partition the whole stream — batch wrapper over the
        incremental protocol (one ``begin``/``ingest``/``finalize``)."""
        self.begin(total_edges=len(stream))
        self.ingest(stream)
        return self.finalize()
