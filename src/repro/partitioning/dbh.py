"""Degree-Based Hashing (DBH), Xie et al., NIPS 2014.

Hashes each edge by its *lower-degree* endpoint: low-degree vertices keep
all their edges on one partition while high-degree vertices are cut — the
degree-aware intuition of Fig. 5 in the ADWISE paper, realised with pure
hashing.  DBH is one of the two baselines in the paper's evaluation.

Degrees come from the partial degree table built while streaming (the true
degrees are unknown in a single pass), matching the original algorithm.
"""

from __future__ import annotations

from repro.graph.graph import Edge
from repro.partitioning.base import StreamingPartitioner
from repro.util import stable_hash


class DBHPartitioner(StreamingPartitioner):
    """Hash the lower-degree endpoint of every edge."""

    name = "DBH"

    def __init__(self, partitions, clock=None, state=None, seed: int = 0,
                 fast: bool = False) -> None:
        super().__init__(partitions, clock=clock, state=state, fast=fast)
        self._seed = seed

    def select_partition(self, edge: Edge) -> int:
        self.clock.charge_score()
        # Paired lookup: one call into the (possibly array-backed) degree
        # table instead of two dict probes.
        deg_u, deg_v = self.state.degree_pair(edge.u, edge.v)
        if deg_u < deg_v:
            anchor = edge.u
        elif deg_v < deg_u:
            anchor = edge.v
        else:
            # Tie: hash the smaller id for determinism.
            anchor = min(edge.u, edge.v)
        digest = stable_hash(anchor, self._seed)
        return self.partitions[digest % len(self.partitions)]
