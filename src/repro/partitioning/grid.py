"""Grid-based constrained hashing (GraphBuilder, Jain et al., 2013).

Arranges the ``k`` partitions in a (near-)square grid.  Each vertex hashes
to one grid cell; the candidate partitions of an edge are the intersection
of the grid *row and column* through each endpoint's cell, which bounds each
vertex's replicas by ``2√k − 1``.  Among the candidates the least-loaded
partition wins.

When this instance's partition count is not a perfect square the grid uses
``ceil(√k)`` columns with the tail row partially filled.
"""

from __future__ import annotations

import math
from typing import List, Set

from repro.graph.graph import Edge
from repro.partitioning.base import StreamingPartitioner
from repro.util import stable_hash


class GridPartitioner(StreamingPartitioner):
    """Constrained candidate sets via a partition grid."""

    name = "Grid"

    def __init__(self, partitions, clock=None, state=None, seed: int = 0) -> None:
        super().__init__(partitions, clock=clock, state=state)
        self._seed = seed
        k = len(self.partitions)
        self._cols = max(1, math.ceil(math.sqrt(k)))
        self._rows = math.ceil(k / self._cols)

    def _cell_of(self, vertex: int) -> int:
        return stable_hash(vertex, self._seed) % len(self.partitions)

    def _constraint_set(self, cell: int) -> Set[int]:
        """All partitions in the same grid row or column as ``cell``."""
        row, col = divmod(cell, self._cols)
        k = len(self.partitions)
        members: Set[int] = set()
        for c in range(self._cols):
            idx = row * self._cols + c
            if idx < k:
                members.add(self.partitions[idx])
        for r in range(self._rows):
            idx = r * self._cols + col
            if idx < k:
                members.add(self.partitions[idx])
        return members

    def select_partition(self, edge: Edge) -> int:
        set_u = self._constraint_set(self._cell_of(edge.u))
        set_v = self._constraint_set(self._cell_of(edge.v))
        candidates = set_u & set_v
        if not candidates:
            candidates = set_u | set_v
        pool: List[int] = sorted(candidates)
        self.clock.charge_score(len(pool))
        return min(pool, key=lambda p: (self.state.size(p), p))
