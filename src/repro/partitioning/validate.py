"""Partitioning validation: invariant checks for any PartitionResult.

A partitioning that silently violates an invariant (an edge assigned to a
partition outside the configured set, replica sets inconsistent with the
assignments, the balance constraint of Eq. 2 broken) poisons everything
downstream.  :func:`validate_result` checks all of them and returns a
structured report; the benchmark harness and the CLI run it after every
partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.partitioning.base import PartitionResult
from repro.partitioning.metrics import replica_sets_from_assignments


@dataclass
class ValidationReport:
    """Outcome of validating one partitioning."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_invalid(self) -> None:
        if self.errors:
            raise AssertionError("invalid partitioning:\n  "
                                 + "\n  ".join(self.errors))


def validate_result(result: PartitionResult,
                    tau: Optional[float] = None,
                    expected_edges: Optional[int] = None
                    ) -> ValidationReport:
    """Check a :class:`PartitionResult` against the model's invariants.

    Parameters
    ----------
    tau:
        If given, enforce the balance constraint of Eq. 2:
        ``minsize / maxsize > tau`` for the loaded partitions.
    expected_edges:
        If given, require exactly this many assigned edges.
    """
    report = ValidationReport()
    state = result.state
    valid_partitions = set(state.partitions)

    # 1. Every assignment targets a configured partition.
    for edge, partition in result.assignments.items():
        if partition not in valid_partitions:
            report.errors.append(
                f"edge {tuple(edge)} assigned to unknown partition "
                f"{partition}")

    # 2. Edge accounting.
    size_total = sum(state.partition_edges.values())
    if size_total != state.assigned_edges:
        report.errors.append(
            f"partition sizes sum to {size_total} but "
            f"{state.assigned_edges} edges were assigned")
    if expected_edges is not None and state.assigned_edges != expected_edges:
        report.errors.append(
            f"expected {expected_edges} assigned edges, "
            f"found {state.assigned_edges}")

    # 3. Replica sets consistent with assignments: each endpoint's set
    #    contains the edge's partition, and no replica exists without a
    #    supporting edge (assignments may deduplicate stream duplicates,
    #    so extra replicas are an error but the reverse check is exact).
    derived = replica_sets_from_assignments(result.assignments)
    for vertex, reps in derived.items():
        stored = set(state.replicas(vertex))
        if not reps <= stored:
            report.errors.append(
                f"vertex {vertex}: assignments imply replicas {sorted(reps)} "
                f"but state records {sorted(stored)}")
    for vertex, stored in state.replica_sets.items():
        if vertex not in derived and stored:
            report.warnings.append(
                f"vertex {vertex} has replicas {sorted(stored)} with no "
                f"assignment in the result (duplicate stream edges?)")

    # 4. Balance constraint (Eq. 2), if requested.
    if tau is not None:
        max_size = state.max_size
        if max_size > 0:
            ratio = state.min_size / max_size
            if ratio <= tau:
                report.errors.append(
                    f"balance violated: min/max = {ratio:.3f} <= tau = {tau}")

    # 5. Soft signals.
    if result.latency_ms < 0:
        report.errors.append(f"negative latency {result.latency_ms}")
    empty = [p for p, size in state.partition_edges.items() if size == 0]
    if empty and state.assigned_edges >= len(state.partitions):
        report.warnings.append(f"empty partitions: {empty}")
    return report
