"""Array-backed partition state: the fast path of the vertex cache.

:class:`FastPartitionState` is a drop-in replacement for
:class:`~repro.partitioning.state.PartitionState` that stores the vertex
cache in flat arrays instead of per-vertex dicts and sets.  Vertex ids
are interned to a dense index on first sight; each derived quantity then
lives in the representation its consumers read fastest:

* replica membership is kept twice — as a ``(vertices, k)`` boolean
  matrix whose rows are the indicator vectors ``1{p in R_v}`` the
  batched scoring kernels (:meth:`repro.core.scoring.AdwiseScoring.
  score_all`, :meth:`repro.partitioning.hdrf.HDRFPartitioner.score_all`)
  consume wholesale, and as per-vertex integer bitmasks for the scalar
  membership tests and the set algebra of the greedy baseline (Python
  int bit-ops beat NumPy on single rows of width k),
* the partial degree table stays a plain vertex-keyed dict — no kernel
  consumes degrees as a vector, and a dict read is the fastest scalar
  path — while partition sizes live in a flat Python list mirrored into
  an ``int64`` vector for the kernels,
* max/min partition sizes use the same incremental histogram as the
  legacy state.

The legacy dict API is preserved for reading: every query/mutation
*method* of ``PartitionState`` behaves identically, and ``replica_sets``
/ ``partition_edges`` are materialised on access (aggregate/validation
paths only — the hot loops never touch them).  The one deliberate
divergence: those two attributes are throwaway **snapshots**, so writes
to them are silently discarded, whereas the legacy class exposes its
live dicts.  All mutation must go through ``observe_degrees`` /
``assign`` — which is the only way the shipped code mutates state.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-free installs
    np = None

from repro.graph.graph import Edge
from repro.partitioning.state import (
    StateSnapshot,
    bump_size_histogram,
    iter_bits,
    rebuild_size_stats,
)

#: Initial replica-matrix row capacity; doubled on demand.
_INITIAL_CAPACITY = 1024

#: Queued replica-matrix writes are force-drained at this size so the
#: queue stays bounded even when no vectorised reader ever runs.
_SYNC_THRESHOLD = 8192


class FastPartitionState:
    """Vertex cache + partition sizes backed by flat arrays.

    API-compatible with :class:`~repro.partitioning.state.PartitionState`;
    additionally exposes the vectorised accessors ``sizes_vector``,
    ``replica_vector``, ``replica_bits`` and ``replica_hits`` that the
    batched scoring kernels and fast baselines build on.
    """

    #: Capability marker the scoring kernels dispatch on.
    is_fast = True

    def __init__(self, partitions: Sequence[int]) -> None:
        if np is None:
            raise ImportError(
                "FastPartitionState requires numpy; install it or use the "
                "dict-backed PartitionState (fast=False)")
        ids = list(partitions)
        if not ids:
            raise ValueError("at least one partition required")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate partition ids: {ids}")
        self._partitions: List[int] = ids
        self._pindex: Dict[int, int] = {p: i for i, p in enumerate(ids)}
        k = len(ids)
        self._sizes_list: List[int] = [0] * k
        # NumPy mirror of the sizes list, synced lazily on vector reads.
        self._sizes = np.zeros(k, dtype=np.int64)
        self._sizes_dirty = False
        # Vertex tables, indexed by the dense intern index.
        self._vindex: Dict[int, int] = {}
        self.degree: Dict[int, int] = {}
        self._replica_bits: List[int] = []
        self._capacity = _INITIAL_CAPACITY
        self._replicas = np.zeros((self._capacity, k), dtype=bool)
        # Matrix writes are deferred: assign() queues (row, column) pairs
        # and the matrix is synced when a vectorised reader needs it or
        # the queue reaches _SYNC_THRESHOLD, so partitioners that never
        # touch the matrix (DBH, greedy) pay only an occasional batched
        # drain — and the queue stays bounded on arbitrarily long streams.
        self._pending_replicas: List[Tuple[int, int]] = []
        # Pull-validity counters for the window's component memos
        # (DESIGN.md §14): ``_row_version[i]`` bumps whenever dense
        # vertex ``i``'s replica row gains a bit, and ``_deg`` mirrors
        # the degree table densely so compiled kernels can read degrees
        # without dict lookups.  Memo keys recorded against these
        # counters stay valid exactly as long as a fresh recomputation
        # would produce the memoized value.
        self._row_version = np.zeros(self._capacity, dtype=np.int64)
        self._deg = np.zeros(self._capacity, dtype=np.int64)
        self._zero_row = np.zeros(k, dtype=bool)
        self._zero_row.setflags(write=False)
        self.max_degree: int = 1
        self.assigned_edges: int = 0
        self._max_size = 0
        self._min_size = 0
        self._size_histogram: Dict[int, int] = {0: k}
        self._total_replicas = 0
        self._replicated_vertices = 0

    # ------------------------------------------------------------------
    # Vertex interning
    # ------------------------------------------------------------------
    def _row(self, vertex: int) -> int:
        """Dense index of ``vertex``, interning it on first sight."""
        idx = self._vindex.get(vertex)
        if idx is None:
            idx = len(self._vindex)
            self._vindex[vertex] = idx
            self._replica_bits.append(0)
            if idx >= self._capacity:
                self._grow()
        return idx

    def _grow(self) -> None:
        capacity = self._capacity * 2
        replicas = np.zeros((capacity, len(self._partitions)), dtype=bool)
        replicas[:self._capacity] = self._replicas
        self._replicas = replicas
        row_version = np.zeros(capacity, dtype=np.int64)
        row_version[:self._capacity] = self._row_version
        self._row_version = row_version
        deg = np.zeros(capacity, dtype=np.int64)
        deg[:self._capacity] = self._deg
        self._deg = deg
        self._capacity = capacity

    # ------------------------------------------------------------------
    # Queries (PartitionState API)
    # ------------------------------------------------------------------
    @property
    def partitions(self) -> List[int]:
        """Partition ids this state may assign to (the instance's spread)."""
        return self._partitions

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    def replicas(self, vertex: int) -> FrozenSet[int]:
        """Replica set ``R_v`` (empty if the vertex was never seen)."""
        idx = self._vindex.get(vertex)
        if idx is None:
            return frozenset()
        partitions = self._partitions
        return frozenset(partitions[j]
                         for j in iter_bits(self._replica_bits[idx]))

    def is_replicated_on(self, vertex: int, partition: int) -> bool:
        """Indicator ``1{p in R_v}`` from the scoring functions."""
        idx = self._vindex.get(vertex)
        if idx is None:
            return False
        j = self._pindex.get(partition)
        if j is None:
            return False
        return bool((self._replica_bits[idx] >> j) & 1)

    def degree_of(self, vertex: int) -> int:
        """Observed (partial) degree of ``vertex`` so far in the stream."""
        return self.degree.get(vertex, 0)

    def degree_pair(self, u: int, v: int) -> Tuple[int, int]:
        """Degrees of both endpoints in one call (single-edge hot paths)."""
        get = self.degree.get
        return get(u, 0), get(v, 0)

    @property
    def max_size(self) -> int:
        return self._max_size

    @property
    def min_size(self) -> int:
        return self._min_size

    def size(self, partition: int) -> int:
        return self._sizes_list[self._pindex[partition]]

    def imbalance(self) -> float:
        """Current imbalance ι = (maxsize − minsize) / maxsize (paper §III-C)."""
        max_size = self._max_size
        if max_size == 0:
            return 0.0
        return (max_size - self._min_size) / max_size

    # ------------------------------------------------------------------
    # Vectorised accessors (batched scoring kernel API)
    # ------------------------------------------------------------------
    def sizes_vector(self) -> np.ndarray:
        """Partition sizes in spread order (lazily synced read-only view)."""
        if self._sizes_dirty:
            self._sizes[:] = self._sizes_list
            self._sizes_dirty = False
        return self._sizes

    def sizes_list(self) -> List[int]:
        """Partition sizes in spread order as a plain list (scalar paths)."""
        return self._sizes_list

    def _sync_replicas(self) -> None:
        """Apply queued replica-matrix writes before a vectorised read."""
        pending = self._pending_replicas
        if len(pending) > 32:
            rows, cols = zip(*pending)
            self._replicas[list(rows), list(cols)] = True
        else:
            replicas = self._replicas
            for idx, j in pending:
                replicas[idx, j] = True
        pending.clear()

    def replica_vector(self, vertex: int) -> np.ndarray:
        """Boolean indicator row ``[1{p in R_v} for p in partitions]``.

        Returns a shared all-zero row for unseen vertices; callers must
        treat the result as read-only.
        """
        if self._pending_replicas:
            self._sync_replicas()
        idx = self._vindex.get(vertex)
        if idx is None:
            return self._zero_row
        return self._replicas[idx]

    def replica_bits(self, vertex: int) -> int:
        """Replica set of ``vertex`` as a bitmask over spread positions."""
        idx = self._vindex.get(vertex)
        return self._replica_bits[idx] if idx is not None else 0

    def replica_bits_pair(self, u: int, v: int) -> Tuple[int, int]:
        """Replica bitmasks of both endpoints in one call (greedy fast path)."""
        vindex = self._vindex
        bits = self._replica_bits
        iu = vindex.get(u)
        iv = vindex.get(v)
        return (bits[iu] if iu is not None else 0,
                bits[iv] if iv is not None else 0)

    def replica_rows_pair(self, u: int, v: int
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """Indicator rows of both endpoints with a single matrix sync.

        The single-edge kernels (HDRF/ADWISE ``score_all``) read exactly
        two rows per edge; fetching them together halves the pending-queue
        checks on the hot path.  Rows are read-only views (the shared
        zero row for unseen vertices).
        """
        if self._pending_replicas:
            self._sync_replicas()
        vindex = self._vindex
        iu = vindex.get(u)
        iv = vindex.get(v)
        replicas = self._replicas
        return (replicas[iu] if iu is not None else self._zero_row,
                replicas[iv] if iv is not None else self._zero_row)

    def replica_rows(self, vertices: Sequence[int]) -> np.ndarray:
        """Indicator rows for a batch of vertex ids as one ``(N, k)`` matrix.

        The row for an unseen vertex is all-zero, mirroring
        :meth:`replica_vector`.  The result is a fresh matrix (safe to
        mutate); the batched window kernel consumes whole slot batches
        through this accessor instead of ``N`` scalar row reads.
        """
        if self._pending_replicas:
            self._sync_replicas()
        get = self._vindex.get
        if isinstance(vertices, np.ndarray):
            vertices = vertices.tolist()
        idx = [get(v, -1) for v in vertices]
        if not idx:
            return np.zeros((0, len(self._partitions)), dtype=bool)
        out = self._replicas[idx]
        if -1 in idx:
            out[np.asarray(idx, dtype=np.int64) < 0] = False
        return out

    def degrees_array(self, vertices: Sequence[int]) -> np.ndarray:
        """Observed degrees for a batch of vertex ids (``0`` if unseen)."""
        get = self.degree.get
        if isinstance(vertices, np.ndarray):
            vertices = vertices.tolist()
        return np.fromiter((get(v, 0) for v in vertices),
                           dtype=np.int64, count=len(vertices))

    def replica_hits(self, vertices: Iterable[int]) -> np.ndarray:
        """Per-partition count of ``vertices`` replicated there.

        The vectorised form of the clustering-score numerator: one row
        gather + column sum instead of ``|N| × k`` indicator probes.
        """
        if self._pending_replicas:
            self._sync_replicas()
        vindex = self._vindex
        rows = [idx for idx in (vindex.get(v) for v in vertices)
                if idx is not None]
        if not rows:
            return np.zeros(len(self._partitions), dtype=np.int64)
        return self._replicas[rows].sum(axis=0, dtype=np.int64)

    # ------------------------------------------------------------------
    # Dense accessors (compiled window kernels, DESIGN.md §14)
    # ------------------------------------------------------------------
    def dense_pair(self, u: int, v: int) -> Tuple[int, int]:
        """Dense intern indices of both endpoints (interning on first sight)."""
        row = self._row
        return row(u), row(v)

    def replica_matrix(self) -> np.ndarray:
        """The synced ``(capacity, k)`` replica indicator matrix.

        Kernels index rows by dense vertex index; callers must re-fetch
        (and rebind pointers) whenever the identity changes — the matrix
        is reallocated when the intern table grows.
        """
        if self._pending_replicas:
            self._sync_replicas()
        return self._replicas

    def row_version_array(self) -> np.ndarray:
        """Per-dense-vertex replica-row version counters (read-only use)."""
        return self._row_version

    def degrees_dense(self) -> np.ndarray:
        """Dense mirror of the degree table (read-only use)."""
        return self._deg

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def observe_degrees(self, edge: Edge) -> None:
        """Update the partial degree table for an edge seen in the stream.

        Vertices are interned on first observation so the dense degree
        mirror (read by the compiled window kernels) always covers every
        observed vertex; the dict stays the scalar read path.
        """
        degree = self.degree
        row = self._row
        for vertex in (edge.u, edge.v):
            d = degree.get(vertex, 0) + 1
            degree[vertex] = d
            self._deg[row(vertex)] = d
            if d > self.max_degree:
                self.max_degree = d

    def assign(self, edge: Edge, partition: int) -> List[int]:
        """Assign ``edge`` to ``partition``; return vertices newly replicated."""
        j = self._pindex.get(partition)
        if j is None:
            raise ValueError(
                f"partition {partition} not in this instance's spread "
                f"{self._partitions}")
        bit = 1 << j
        changed: List[int] = []
        vindex = self._vindex
        for vertex in (edge.u, edge.v):
            idx = vindex.get(vertex)
            if idx is None:
                idx = self._row(vertex)
            bits = self._replica_bits[idx]
            if not bits & bit:
                if bits == 0:
                    self._replicated_vertices += 1
                self._replica_bits[idx] = bits | bit
                self._pending_replicas.append((idx, j))
                self._total_replicas += 1
                self._row_version[idx] += 1
                changed.append(vertex)
        if len(self._pending_replicas) >= _SYNC_THRESHOLD:
            self._sync_replicas()
        old_size = self._sizes_list[j]
        new_size = old_size + 1
        self._sizes_list[j] = new_size
        self._sizes_dirty = True
        self.assigned_edges += 1
        self._max_size, self._min_size = bump_size_histogram(
            self._size_histogram, old_size, new_size,
            self._max_size, self._min_size)
        return changed

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_replicas(self) -> int:
        return self._total_replicas

    def replication_degree(self) -> float:
        """Average |R_v| over vertices seen by this instance (Eq. 1)."""
        if self._replicated_vertices == 0:
            return 0.0
        return self._total_replicas / self._replicated_vertices

    def copy_degrees_from(self, other) -> None:
        """Adopt another state's degree table (restreaming support)."""
        self.degree = dict(other.degree)
        self.max_degree = other.max_degree
        row = self._row
        for vertex, d in self.degree.items():
            self._deg[row(vertex)] = d

    # ------------------------------------------------------------------
    # Serialization (process-pool boundary)
    # ------------------------------------------------------------------
    def snapshot(self) -> StateSnapshot:
        """Compact picklable image of this state (see :class:`StateSnapshot`).

        The fast state already keeps replica sets as bitmasks in spread
        order, so the snapshot is a near-verbatim copy — no matrix sync
        needed.
        """
        replica_bits = {vertex: self._replica_bits[idx]
                        for vertex, idx in self._vindex.items()
                        if self._replica_bits[idx]}
        return StateSnapshot(
            partitions=list(self._partitions),
            replica_bits=replica_bits,
            sizes=list(self._sizes_list),
            degree=dict(self.degree),
            max_degree=self.max_degree,
            assigned_edges=self.assigned_edges,
            fast=True,
        )

    @classmethod
    def from_snapshot(cls, snap: StateSnapshot) -> "FastPartitionState":
        """Rebuild a state from a snapshot (inverse of :meth:`snapshot`)."""
        state = cls(snap.partitions)
        for vertex, bits in snap.replica_bits.items():
            if not bits:
                continue
            idx = state._row(vertex)
            state._replica_bits[idx] = bits
            state._replicated_vertices += 1
            state._total_replicas += bits.bit_count()
            for j in iter_bits(bits):
                state._pending_replicas.append((idx, j))
        if len(state._pending_replicas) >= _SYNC_THRESHOLD:
            state._sync_replicas()
        state._sizes_list = list(snap.sizes)
        state._sizes_dirty = True
        state.degree = dict(snap.degree)
        row = state._row
        for vertex, d in snap.degree.items():
            state._deg[row(vertex)] = d
        state.max_degree = snap.max_degree
        state.assigned_edges = snap.assigned_edges
        (state._size_histogram, state._max_size,
         state._min_size) = rebuild_size_stats(snap.sizes)
        return state

    # ------------------------------------------------------------------
    # Legacy dict views (aggregate / validation paths — O(n) snapshots)
    # ------------------------------------------------------------------
    @property
    def replica_sets(self) -> Dict[int, Set[int]]:
        """Replica sets as a dict *snapshot* (legacy read API).

        Unlike the legacy class this is not live storage — mutating the
        returned dict has no effect on the state.
        """
        return {vertex: set(self.replicas(vertex))
                for vertex, idx in self._vindex.items()
                if self._replica_bits[idx]}

    @property
    def partition_edges(self) -> Dict[int, int]:
        """Partition sizes as a dict *snapshot* (legacy read API).

        Unlike the legacy class this is not live storage — mutating the
        returned dict has no effect on the state.
        """
        return dict(zip(self._partitions, self._sizes_list))

