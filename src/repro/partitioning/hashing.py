"""Hash partitioning — the PowerGraph/GraphX default baseline.

Assigns each edge by hashing the canonical endpoint pair.  Perfectly
balanced in expectation and O(1) per edge, but oblivious to locality, which
makes its replication degree the worst of the evaluated strategies (paper
Fig. 1 places it at minimal latency / minimal quality).
"""

from __future__ import annotations

from repro.graph.graph import Edge
from repro.partitioning.base import StreamingPartitioner
from repro.util import stable_hash


class HashPartitioner(StreamingPartitioner):
    """Uniform edge hashing onto this instance's partitions."""

    name = "Hash"

    def __init__(self, partitions, clock=None, state=None, seed: int = 0) -> None:
        super().__init__(partitions, clock=clock, state=state)
        self._seed = seed

    def select_partition(self, edge: Edge) -> int:
        self.clock.charge_score()
        canon = edge.canonical()
        digest = stable_hash(canon.u * 0x1F1F1F1F + canon.v, self._seed)
        return self.partitions[digest % len(self.partitions)]
