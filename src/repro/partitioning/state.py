"""Partitioning state: the vertex cache and partition bookkeeping.

The streaming partitioning model (paper §II-B, Figure 3) has three building
blocks; this module is block (iii), the *vertex cache*: replica sets for all
previously assigned vertices, plus the partition edge counts and the partial
degree table that degree-aware scoring needs.  Every partitioner — baseline
or ADWISE — mutates state exclusively through :meth:`PartitionState.assign`,
which keeps all derived quantities (max/min partition size, max degree)
consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.graph.graph import Edge


@dataclass
class StateSnapshot:
    """Compact, picklable image of a partition state.

    This is the serialization boundary of the parallel loading backend:
    worker processes return snapshots instead of live states, and the
    parent merges them deterministically.  Replica sets are encoded as
    per-vertex bitmasks over the positions of ``partitions`` — compact
    on the wire and cheap to union.

    ``fast`` records which state class produced the snapshot so the
    receiving side can rebuild the same flavour (falling back to the
    dict-backed state when numpy is unavailable).
    """

    partitions: List[int]
    replica_bits: Dict[int, int]
    sizes: List[int]
    degree: Dict[int, int]
    max_degree: int
    assigned_edges: int
    fast: bool = False

    def replica_sets(self) -> Dict[int, Set[int]]:
        """Materialise the replica sets as vertex -> set of partition ids."""
        partitions = self.partitions
        out: Dict[int, Set[int]] = {}
        for vertex, bits in self.replica_bits.items():
            reps = {partitions[j] for j in iter_bits(bits)}
            if reps:
                out[vertex] = reps
        return out

    @property
    def partition_edges(self) -> Dict[int, int]:
        return dict(zip(self.partitions, self.sizes))

    @classmethod
    def merge(cls, snapshots: "Sequence[StateSnapshot]",
              partitions: Optional[Sequence[int]] = None) -> "StateSnapshot":
        """Deterministically merge per-instance snapshots into a global one.

        Mirrors the paper's parallel-loading semantics (§III-D): global
        replica sets are unions of per-instance sets, partition sizes
        and degrees are sums (each instance observed a disjoint chunk),
        and the merged partition order is ``partitions`` when given,
        else first-seen order across snapshots — so merging is
        independent of worker completion order as long as the snapshot
        list order is fixed.
        """
        if partitions is None:
            ordered: List[int] = []
            seen: Set[int] = set()
            for snap in snapshots:
                for p in snap.partitions:
                    if p not in seen:
                        seen.add(p)
                        ordered.append(p)
            partitions = ordered
        else:
            partitions = list(partitions)
        if not partitions:
            raise ValueError("cannot merge snapshots over zero partitions")
        pindex = {p: i for i, p in enumerate(partitions)}
        replica_bits: Dict[int, int] = {}
        sizes = [0] * len(partitions)
        degree: Dict[int, int] = {}
        assigned = 0
        fast = False
        for snap in snapshots:
            # Remap the snapshot's local bit positions to the merged order.
            remap = [pindex[p] for p in snap.partitions]
            for vertex, bits in snap.replica_bits.items():
                acc = replica_bits.get(vertex, 0)
                for j in iter_bits(bits):
                    acc |= 1 << remap[j]
                replica_bits[vertex] = acc
            for p, size in zip(snap.partitions, snap.sizes):
                sizes[pindex[p]] += size
            for vertex, d in snap.degree.items():
                degree[vertex] = degree.get(vertex, 0) + d
            assigned += snap.assigned_edges
            fast = fast or snap.fast
        return cls(
            partitions=partitions,
            replica_bits=replica_bits,
            sizes=sizes,
            degree=degree,
            max_degree=max(degree.values(), default=1),
            assigned_edges=assigned,
            fast=fast,
        )


def iter_bits(bits: int):
    """Yield the set bit positions of ``bits`` (low to high).

    The one place the replica-bitmask decoding loop lives; used by the
    snapshot codec and the fast state's scalar reads.
    """
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


def rebuild_size_stats(sizes: Sequence[int]
                       ) -> "tuple[Dict[int, int], int, int]":
    """``(histogram, max_size, min_size)`` recomputed from scratch.

    Snapshot restoration counterpart of :func:`bump_size_histogram`,
    shared by both state flavours so the derived-stats invariant has a
    single owner.
    """
    histogram: Dict[int, int] = {}
    for size in sizes:
        histogram[size] = histogram.get(size, 0) + 1
    return histogram, max(sizes, default=0), min(sizes, default=0)


def bump_size_histogram(histogram: Dict[int, int], old_size: int,
                        new_size: int, max_size: int, min_size: int
                        ) -> "tuple[int, int]":
    """Move one partition from ``old_size`` to ``new_size`` in ``histogram``.

    Returns the updated ``(max_size, min_size)``.  Shared by the legacy and
    fast states so the O(1) max/min invariant lives in exactly one place;
    sizes only ever grow by 1, which is what makes the min update exact.
    """
    histogram[old_size] -= 1
    if histogram[old_size] == 0:
        del histogram[old_size]
    histogram[new_size] = histogram.get(new_size, 0) + 1
    if new_size > max_size:
        max_size = new_size
    if old_size == min_size and old_size not in histogram:
        min_size = old_size + 1
    return max_size, min_size


class PartitionState:
    """Vertex cache + partition sizes for one partitioner instance.

    Parameters
    ----------
    partitions:
        The partition ids this instance may fill.  With spotlight
        partitioning this is a strict subset of the global partition set
        (the instance's *spread*).
    """

    #: Capability marker: the batched scoring kernels dispatch on this
    #: (see :class:`repro.partitioning.fast_state.FastPartitionState`).
    is_fast = False

    def __init__(self, partitions: Sequence[int]) -> None:
        ids = list(partitions)
        if not ids:
            raise ValueError("at least one partition required")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate partition ids: {ids}")
        self._partitions: List[int] = ids
        self.replica_sets: Dict[int, Set[int]] = {}
        self.partition_edges: Dict[int, int] = {p: 0 for p in ids}
        self.degree: Dict[int, int] = {}
        self.max_degree: int = 1
        self.assigned_edges: int = 0
        # max/min partition sizes are read on every score computation, so
        # they are maintained incrementally (sizes only ever grow by 1).
        self._max_size = 0
        self._min_size = 0
        self._size_histogram: Dict[int, int] = {0: len(ids)}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def partitions(self) -> List[int]:
        """Partition ids this state may assign to (the instance's spread)."""
        return self._partitions

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    def replicas(self, vertex: int) -> FrozenSet[int]:
        """Replica set ``R_v`` (empty if the vertex was never seen)."""
        return frozenset(self.replica_sets.get(vertex, ()))

    def is_replicated_on(self, vertex: int, partition: int) -> bool:
        """Indicator ``1{p in R_v}`` from the scoring functions."""
        reps = self.replica_sets.get(vertex)
        return reps is not None and partition in reps

    def degree_of(self, vertex: int) -> int:
        """Observed (partial) degree of ``vertex`` so far in the stream."""
        return self.degree.get(vertex, 0)

    def degree_pair(self, u: int, v: int) -> tuple:
        """Degrees of both endpoints in one call (single-edge hot paths)."""
        get = self.degree.get
        return get(u, 0), get(v, 0)

    @property
    def max_size(self) -> int:
        return self._max_size

    @property
    def min_size(self) -> int:
        return self._min_size

    def size(self, partition: int) -> int:
        return self.partition_edges[partition]

    def imbalance(self) -> float:
        """Current imbalance ι = (maxsize − minsize) / maxsize (paper §III-C)."""
        max_size = self.max_size
        if max_size == 0:
            return 0.0
        return (max_size - self.min_size) / max_size

    def observe_degrees(self, edge: Edge) -> None:
        """Update the partial degree table for an edge seen in the stream.

        Degree observation is separate from assignment: window-based
        partitioners observe an edge when it *enters the window*, before it
        is assigned, so the scoring function sees its degrees.
        Calling this twice for the same edge double-counts — callers ensure
        each stream edge is observed exactly once.
        """
        for vertex in (edge.u, edge.v):
            d = self.degree.get(vertex, 0) + 1
            self.degree[vertex] = d
            if d > self.max_degree:
                self.max_degree = d

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def assign(self, edge: Edge, partition: int) -> List[int]:
        """Assign ``edge`` to ``partition``; return vertices newly replicated.

        The returned list (0, 1 or 2 vertices) drives the lazy-traversal
        reassessment: secondary edges incident to a vertex whose replica set
        changed must be rescored.
        """
        if partition not in self.partition_edges:
            raise ValueError(
                f"partition {partition} not in this instance's spread "
                f"{self._partitions}")
        changed: List[int] = []
        for vertex in (edge.u, edge.v):
            reps = self.replica_sets.setdefault(vertex, set())
            if partition not in reps:
                reps.add(partition)
                changed.append(vertex)
        old_size = self.partition_edges[partition]
        new_size = old_size + 1
        self.partition_edges[partition] = new_size
        self.assigned_edges += 1
        # Incremental histogram update keeps max/min O(1).
        self._max_size, self._min_size = bump_size_histogram(
            self._size_histogram, old_size, new_size,
            self._max_size, self._min_size)
        return changed

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_replicas(self) -> int:
        return sum(len(reps) for reps in self.replica_sets.values())

    def replication_degree(self) -> float:
        """Average |R_v| over vertices seen by this instance (Eq. 1)."""
        if not self.replica_sets:
            return 0.0
        return self.total_replicas() / len(self.replica_sets)

    def copy_degrees_from(self, other: "PartitionState") -> None:
        """Adopt another state's degree table (restreaming support)."""
        self.degree = dict(other.degree)
        self.max_degree = other.max_degree

    # ------------------------------------------------------------------
    # Serialization (process-pool boundary)
    # ------------------------------------------------------------------
    def snapshot(self) -> StateSnapshot:
        """Compact picklable image of this state (see :class:`StateSnapshot`)."""
        pindex = {p: i for i, p in enumerate(self._partitions)}
        replica_bits: Dict[int, int] = {}
        for vertex, reps in self.replica_sets.items():
            bits = 0
            for p in reps:
                bits |= 1 << pindex[p]
            if bits:
                replica_bits[vertex] = bits
        return StateSnapshot(
            partitions=list(self._partitions),
            replica_bits=replica_bits,
            sizes=[self.partition_edges[p] for p in self._partitions],
            degree=dict(self.degree),
            max_degree=self.max_degree,
            assigned_edges=self.assigned_edges,
            fast=False,
        )

    @classmethod
    def from_snapshot(cls, snap: StateSnapshot) -> "PartitionState":
        """Rebuild a state from a snapshot (inverse of :meth:`snapshot`)."""
        state = cls(snap.partitions)
        state.replica_sets = snap.replica_sets()
        state.partition_edges = dict(zip(snap.partitions, snap.sizes))
        state.degree = dict(snap.degree)
        state.max_degree = snap.max_degree
        state.assigned_edges = snap.assigned_edges
        (state._size_histogram, state._max_size,
         state._min_size) = rebuild_size_stats(snap.sizes)
        return state


def merged_replication_degree(states: Iterable[PartitionState]) -> float:
    """Replication degree of the union of several instances' vertex caches.

    Used by the parallel loading model: each of the ``z`` partitioners has
    its own cache, and the *global* replica set of a vertex is the union of
    its per-instance replica sets.
    """
    union: Dict[int, Set[int]] = {}
    for state in states:
        for vertex, reps in state.replica_sets.items():
            union.setdefault(vertex, set()).update(reps)
    if not union:
        return 0.0
    return sum(len(r) for r in union.values()) / len(union)
