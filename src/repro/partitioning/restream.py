"""Restreaming partitioning (extension; cf. Nishimura & Ugander, KDD'13).

The paper's related work notes that restreaming — running the streaming
partitioner repeatedly, letting later passes use information gathered by
earlier ones — improves quality at the cost of extra passes.  This module
implements degree-informed restreaming for any vertex-cut streaming
partitioner in this library: each pass starts with a fresh vertex cache
(so assignments are re-made from scratch) but inherits the *complete degree
table* from the previous pass.

Why that helps: in a single pass, degree-aware scores (DBH's anchor choice,
HDRF's θ, ADWISE's Ψ) see only the partial degrees observed so far — early
edges are scored with badly underestimated degrees.  With the final degree
table preloaded, every decision in the second pass is made with exact
degrees, which is precisely the information the degree-aware heuristics
were designed around.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.graph.stream import EdgeStream
from repro.partitioning.base import PartitionResult, StreamingPartitioner
from repro.partitioning.state import PartitionState
from repro.simtime import Clock, SimulatedClock

PartitionerFactory = Callable[[Sequence[int], Clock], StreamingPartitioner]


class RestreamingDriver:
    """Run a streaming partitioner for multiple passes over the stream.

    Parameters
    ----------
    factory:
        Builds one partitioner instance per pass.
    partitions:
        Global partition ids.
    passes:
        Total number of passes (>= 1).  ``passes=1`` is plain streaming.
    clock_factory:
        Clock per pass; the reported latency of the final result is the
        *sum* over passes (restreaming pays for every pass).
    """

    def __init__(self, factory: PartitionerFactory,
                 partitions: Sequence[int],
                 passes: int = 2,
                 clock_factory: Callable[[], Clock] = SimulatedClock) -> None:
        if passes < 1:
            raise ValueError("passes must be >= 1")
        self.factory = factory
        self.partitions = list(partitions)
        self.passes = passes
        self.clock_factory = clock_factory

    def run(self, stream: EdgeStream) -> PartitionResult:
        """Execute all passes; return the final pass's result.

        The returned result's ``latency_ms`` is the cumulative latency of
        all passes, and ``extras["passes"]`` records the pass count.
        """
        previous_state: Optional[PartitionState] = None
        total_latency = 0.0
        total_scores = 0
        result: Optional[PartitionResult] = None
        for _ in range(self.passes):
            clock = self.clock_factory()
            partitioner = self.factory(self.partitions, clock)
            if previous_state is not None:
                partitioner.state.copy_degrees_from(previous_state)
            result = partitioner.partition_stream(stream)
            total_latency += result.latency_ms
            total_scores += result.score_computations
            previous_state = result.state
        assert result is not None  # passes >= 1
        result.latency_ms = total_latency
        result.score_computations = total_scores
        result.extras["passes"] = float(self.passes)
        return result
