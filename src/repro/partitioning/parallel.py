"""Parallel graph loading with z independent partitioner instances.

Graph processing systems load massive graphs in parallel: each worker
machine streams a disjoint chunk of the edge file through its own
partitioner instance with its own vertex cache (paper §III-D).  This module
simulates that model deterministically:

* the global stream is split into ``z`` contiguous chunks,
* each instance partitions its chunk against its *spread* — the subset of
  global partitions the spotlight optimisation allows it to fill,
* results are merged: global replica sets are unions of per-instance sets,
  global partition sizes are sums, and loading latency is the *maximum*
  instance latency (instances run concurrently on separate machines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.graph.graph import Edge
from repro.graph.stream import EdgeStream, chunk_stream
from repro.core.spotlight import spotlight_spreads
from repro.partitioning.base import PartitionResult, StreamingPartitioner
from repro.partitioning.metrics import (
    imbalance as imbalance_of,
    merge_replica_sets,
    replication_degree,
)
from repro.simtime import Clock, SimulatedClock

#: Builds one partitioner instance given its spread and its private clock.
PartitionerFactory = Callable[[Sequence[int], Clock], StreamingPartitioner]


@dataclass
class ParallelResult:
    """Merged outcome of a parallel loading run."""

    algorithm: str
    num_instances: int
    spread: int
    instance_results: List[PartitionResult]
    replica_sets: Dict[int, Set[int]]
    partition_sizes: Dict[int, int]
    latency_ms: float
    score_computations: int

    @property
    def replication_degree(self) -> float:
        return replication_degree(self.replica_sets)

    @property
    def imbalance(self) -> float:
        return imbalance_of(self.partition_sizes)

    @property
    def assignments(self) -> Dict[Edge, int]:
        merged: Dict[Edge, int] = {}
        for result in self.instance_results:
            merged.update(result.assignments)
        return merged


class ParallelLoader:
    """Drive ``z`` partitioner instances over chunked input.

    Parameters
    ----------
    factory:
        Constructs a partitioner for a given spread and clock — e.g.
        ``lambda parts, clock: HDRFPartitioner(parts, clock=clock)``.
    partitions:
        The global partition id list (length ``k``).
    num_instances:
        Number of parallel instances ``z``.
    spread:
        Partitions per instance.  Defaults to ``k / z`` — the paper's
        spotlight setting.  ``spread = k`` reproduces prior systems'
        maximal-spread behaviour.
    clock_factory:
        Builds each instance's private clock (deterministic by default).
    """

    def __init__(self, factory: PartitionerFactory,
                 partitions: Sequence[int],
                 num_instances: int,
                 spread: Optional[int] = None,
                 clock_factory: Callable[[], Clock] = SimulatedClock) -> None:
        if num_instances < 1:
            raise ValueError("num_instances must be >= 1")
        k = len(partitions)
        if k % num_instances != 0 and spread is None:
            raise ValueError(
                f"default spread needs k ({k}) divisible by z ({num_instances})")
        self.factory = factory
        self.partitions = list(partitions)
        self.num_instances = num_instances
        self.spread = spread if spread is not None else k // num_instances
        self.clock_factory = clock_factory
        # Validate early so configuration errors surface at build time.
        self._spreads = spotlight_spreads(self.partitions, num_instances,
                                          self.spread)

    def run(self, stream: EdgeStream) -> ParallelResult:
        """Chunk the stream, run every instance, merge the results."""
        chunks = chunk_stream(stream, self.num_instances)
        results: List[PartitionResult] = []
        for spread_ids, chunk in zip(self._spreads, chunks):
            clock = self.clock_factory()
            partitioner = self.factory(spread_ids, clock)
            results.append(partitioner.partition_stream(chunk))
        replica_sets = merge_replica_sets(
            [r.state.replica_sets for r in results])
        sizes: Dict[int, int] = {p: 0 for p in self.partitions}
        for result in results:
            for partition, count in result.state.partition_edges.items():
                sizes[partition] += count
        return ParallelResult(
            algorithm=results[0].algorithm if results else "none",
            num_instances=self.num_instances,
            spread=self.spread,
            instance_results=results,
            replica_sets=replica_sets,
            partition_sizes=sizes,
            latency_ms=max((r.latency_ms for r in results), default=0.0),
            score_computations=sum(r.score_computations for r in results),
        )
