"""Parallel graph loading with z independent partitioner instances.

Graph processing systems load massive graphs in parallel: each worker
machine streams a disjoint chunk of the edge file through its own
partitioner instance with its own vertex cache (paper §III-D).  This module
implements that model twice behind one interface:

* ``backend="simulated"`` (default) runs the instances sequentially in
  this process — deterministic, dependency-free, and the reference
  semantics every other execution mode is tested against;
* ``backend="process"`` runs each instance in its own OS process via
  :class:`concurrent.futures.ProcessPoolExecutor`.  The serialization
  boundary is deliberately narrow: a picklable factory (see
  :class:`PartitionerSpec`) and a chunk go in, and a compact
  :class:`_InstancePayload` — a :class:`~repro.partitioning.state.
  StateSnapshot` plus assignment tuples — comes out.  Combined with
  :class:`~repro.graph.stream.FileChunkStream` chunks, workers stream
  byte slices of the edge file directly, so no process ever holds the
  whole graph.

Both backends share one merge step: global replica sets are unions of
per-instance sets, global partition sizes are sums, and loading latency
is the *maximum* instance latency (instances run concurrently on
separate machines).  ``tests/test_parallel_backends.py`` holds the two
backends bit-identical.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro import obs
from repro.graph.graph import Edge
from repro.graph.stream import (
    EdgeStream,
    FileEdgeStream,
    chunk_file_stream,
    chunk_stream,
)
from repro.core.spotlight import spotlight_spreads
from repro.partitioning.base import PartitionResult, StreamingPartitioner
from repro.partitioning.metrics import (
    imbalance as imbalance_of,
    merge_replica_sets,
    replication_degree,
)
from repro.partitioning.state import PartitionState, StateSnapshot
from repro.simtime import Clock, SimulatedClock

#: Builds one partitioner instance given its spread and its private clock.
PartitionerFactory = Callable[[Sequence[int], Clock], StreamingPartitioner]

#: Execution backends understood by :class:`ParallelLoader`.
BACKENDS = ("simulated", "process")


def partitioner_registry() -> Dict[str, type]:
    """Name -> class map shared by :class:`PartitionerSpec` and the CLI
    (lazy import: the adwise module sits above this package)."""
    from repro.core.adwise import AdwisePartitioner
    from repro.partitioning.dbh import DBHPartitioner
    from repro.partitioning.greedy import GreedyPartitioner
    from repro.partitioning.grid import GridPartitioner
    from repro.partitioning.hashing import HashPartitioner
    from repro.partitioning.hdrf import HDRFPartitioner
    from repro.partitioning.jabeja import JaBeJaVCPartitioner
    from repro.partitioning.ne import NEPartitioner
    from repro.partitioning.powerlyra import PowerLyraPartitioner

    return {
        "hash": HashPartitioner,
        "grid": GridPartitioner,
        "dbh": DBHPartitioner,
        "hdrf": HDRFPartitioner,
        "greedy": GreedyPartitioner,
        "powerlyra": PowerLyraPartitioner,
        "ne": NEPartitioner,
        "jabeja": JaBeJaVCPartitioner,
        "adwise": AdwisePartitioner,
    }


@dataclass(frozen=True)
class PartitionerSpec:
    """A picklable partitioner factory: algorithm name + constructor kwargs.

    The process backend must ship the factory to worker processes, and
    closures/lambdas don't pickle.  A spec names the algorithm and the
    extra constructor arguments instead::

        PartitionerSpec("hdrf", {"fast": True})
        PartitionerSpec("adwise", {"latency_preference_ms": 50.0})

    Specs are also ordinary :data:`PartitionerFactory` callables, so the
    simulated backend (and any existing call site) accepts them too.
    """

    algorithm: str
    kwargs: Dict[str, object] = field(default_factory=dict)

    def __call__(self, partitions: Sequence[int],
                 clock: Clock) -> StreamingPartitioner:
        registry = partitioner_registry()
        try:
            cls = registry[self.algorithm]
        except KeyError:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r} "
                f"(known: {', '.join(sorted(registry))})") from None
        return cls(partitions, clock=clock, **self.kwargs)


@dataclass
class _InstancePayload:
    """What one worker returns across the process boundary.

    Carries everything :class:`PartitionResult` exposes, in picklable
    form: the state as a :class:`StateSnapshot` and the assignments as
    ``(u, v, partition)`` tuples in assignment order.
    """

    algorithm: str
    snapshot: StateSnapshot
    assignments: List[Tuple[int, int, int]]
    latency_ms: float
    score_computations: int
    extras: Dict[str, float]

    @classmethod
    def from_result(cls, result: PartitionResult) -> "_InstancePayload":
        return cls(
            algorithm=result.algorithm,
            snapshot=result.state.snapshot(),
            assignments=[(e.u, e.v, p)
                         for e, p in result.assignments.items()],
            latency_ms=result.latency_ms,
            score_computations=result.score_computations,
            extras=dict(result.extras),
        )

    def to_result(self) -> PartitionResult:
        """Rebuild a :class:`PartitionResult` on the parent side."""
        state = _state_from_snapshot(self.snapshot)
        return PartitionResult(
            algorithm=self.algorithm,
            state=state,
            assignments={Edge(u, v): p for u, v, p in self.assignments},
            latency_ms=self.latency_ms,
            score_computations=self.score_computations,
            extras=dict(self.extras),
        )


def _state_from_snapshot(snapshot: StateSnapshot):
    """Rebuild the snapshot's state flavour, degrading gracefully when the
    fast (numpy-backed) state is unavailable on the receiving side."""
    if snapshot.fast:
        try:
            from repro.partitioning.fast_state import FastPartitionState
            return FastPartitionState.from_snapshot(snapshot)
        except ImportError:  # pragma: no cover - numpy-free installs
            pass
    return PartitionState.from_snapshot(snapshot)


def _execute_instance(factory: PartitionerFactory, spread_ids: Sequence[int],
                      chunk: EdgeStream,
                      clock_factory: Callable[[], Clock]) -> PartitionResult:
    """Run one partitioner instance over its chunk — the computation both
    backends share."""
    clock = clock_factory()
    partitioner = factory(spread_ids, clock)
    return partitioner.partition_stream(chunk)


def _run_instance(factory: PartitionerFactory, spread_ids: Sequence[int],
                  chunk: EdgeStream,
                  clock_factory: Callable[[], Clock],
                  trace_ctx: Optional[Dict[str, str]] = None,
                  instance: int = 0) -> _InstancePayload:
    """Worker entry point: partition one chunk, return a compact payload.

    Module-level so :class:`ProcessPoolExecutor` can pickle it.  Only the
    process backend pays the payload encode/decode; the simulated backend
    consumes :func:`_execute_instance` results directly, which is what
    makes the differential tests a real check of the serialization
    boundary rather than a comparison of two serialized runs.

    ``trace_ctx`` is the submitting process's span context: workers adopt
    it so every instance's span lands in the same trace as the caller's.
    """
    with obs.use_context(trace_ctx):
        with obs.span("partition.parallel_instance", instance=instance):
            return _InstancePayload.from_result(
                _execute_instance(factory, spread_ids, chunk, clock_factory))


@dataclass
class ParallelResult:
    """Merged outcome of a parallel loading run."""

    algorithm: str
    num_instances: int
    spread: int
    instance_results: List[PartitionResult]
    replica_sets: Dict[int, Set[int]]
    partition_sizes: Dict[int, int]
    latency_ms: float
    score_computations: int
    backend: str = "simulated"

    @property
    def replication_degree(self) -> float:
        return replication_degree(self.replica_sets)

    @property
    def imbalance(self) -> float:
        return imbalance_of(self.partition_sizes)

    @property
    def assignments(self) -> Dict[Edge, int]:
        merged: Dict[Edge, int] = {}
        for result in self.instance_results:
            merged.update(result.assignments)
        return merged

    def merged_snapshot(self) -> StateSnapshot:
        """Deterministic merge of all instance states (see
        :meth:`StateSnapshot.merge`)."""
        return StateSnapshot.merge(
            [r.state.snapshot() for r in self.instance_results],
            partitions=sorted(self.partition_sizes))

    def to_partition_result(self) -> PartitionResult:
        """Collapse into a single :class:`PartitionResult` whose state is
        the merged global vertex cache — the form ``partition_io`` and the
        processing engine consume."""
        return PartitionResult(
            algorithm=self.algorithm,
            state=PartitionState.from_snapshot(self.merged_snapshot()),
            assignments=self.assignments,
            latency_ms=self.latency_ms,
            score_computations=self.score_computations,
        )


class ParallelLoader:
    """Drive ``z`` partitioner instances over chunked input.

    Parameters
    ----------
    factory:
        Constructs a partitioner for a given spread and clock — e.g.
        ``lambda parts, clock: HDRFPartitioner(parts, clock=clock)``.
        The process backend requires a *picklable* factory; use
        :class:`PartitionerSpec` (closures and lambdas won't cross the
        process boundary).
    partitions:
        The global partition id list (length ``k``).
    num_instances:
        Number of parallel instances ``z``.
    spread:
        Partitions per instance.  Defaults to ``k / z`` — the paper's
        spotlight setting.  ``spread = k`` reproduces prior systems'
        maximal-spread behaviour.
    clock_factory:
        Builds each instance's private clock (deterministic by default).
    backend:
        ``"simulated"`` runs instances sequentially in-process;
        ``"process"`` runs each in its own OS process and merges the
        returned snapshots.  Results are identical by construction (and
        by differential test).
    max_workers:
        Process-pool size cap for the process backend; defaults to
        ``min(z, os.cpu_count())``.
    """

    def __init__(self, factory: PartitionerFactory,
                 partitions: Sequence[int],
                 num_instances: int,
                 spread: Optional[int] = None,
                 clock_factory: Callable[[], Clock] = SimulatedClock,
                 backend: str = "simulated",
                 max_workers: Optional[int] = None) -> None:
        if num_instances < 1:
            raise ValueError("num_instances must be >= 1")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r} (choose from {BACKENDS})")
        k = len(partitions)
        if k % num_instances != 0 and spread is None:
            raise ValueError(
                f"default spread needs k ({k}) divisible by z ({num_instances})")
        self.factory = factory
        self.partitions = list(partitions)
        self.num_instances = num_instances
        self.spread = spread if spread is not None else k // num_instances
        self.clock_factory = clock_factory
        self.backend = backend
        self.max_workers = max_workers
        # Validate early so configuration errors surface at build time.
        self._spreads = spotlight_spreads(self.partitions, num_instances,
                                          self.spread)
        if backend == "process":
            try:
                pickle.dumps((factory, clock_factory))
            except Exception as exc:
                raise ValueError(
                    "backend='process' needs a picklable factory and "
                    "clock_factory; wrap the algorithm in a "
                    "PartitionerSpec instead of a lambda/closure"
                ) from exc

    def run(self, stream: EdgeStream) -> ParallelResult:
        """Chunk the stream, run every instance, merge the results.

        File-backed streams are chunked by byte offset
        (:func:`~repro.graph.stream.chunk_file_stream`), so each
        instance — local or in a worker process — reads only its slice
        of the file; in-memory streams are chunked by edge count.
        """
        if isinstance(stream, FileEdgeStream):
            chunks: Sequence[EdgeStream] = chunk_file_stream(
                stream.path, self.num_instances)
        else:
            chunks = chunk_stream(stream, self.num_instances)
        return self.run_chunks(chunks)

    def run_file(self, path: "str | os.PathLike") -> ParallelResult:
        """Out-of-core entry point: byte-chunk ``path`` and run."""
        return self.run_chunks(chunk_file_stream(path, self.num_instances))

    def run_chunks(self, chunks: Sequence[EdgeStream]) -> ParallelResult:
        """Run every instance on its pre-built chunk, merge the results."""
        if len(chunks) != self.num_instances:
            raise ValueError(
                f"got {len(chunks)} chunks for {self.num_instances} instances")
        with obs.span("partition.parallel_run", backend=self.backend,
                      instances=self.num_instances):
            if self.backend == "process":
                results = self._run_process(chunks)
            else:
                results = []
                for index, (spread_ids, chunk) in enumerate(
                        zip(self._spreads, chunks)):
                    with obs.span("partition.parallel_instance",
                                  instance=index):
                        results.append(_execute_instance(
                            self.factory, spread_ids, chunk,
                            self.clock_factory))
            return self._merge(results)

    def _run_process(self,
                     chunks: Sequence[EdgeStream]) -> List[PartitionResult]:
        """Fan instances out to a process pool; rebuild results in order."""
        workers = self.max_workers or min(self.num_instances,
                                          os.cpu_count() or 1)
        workers = max(1, min(workers, self.num_instances))
        # Capture the submitting process's span context once; workers
        # adopt it so the fan-out shows up as one correlated trace.
        trace_ctx = obs.current_context() if obs.is_enabled() else None
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_run_instance, self.factory, spread_ids, chunk,
                            self.clock_factory, trace_ctx, index)
                for index, (spread_ids, chunk) in enumerate(
                    zip(self._spreads, chunks))
            ]
            # Collect in submission order: merge semantics must not
            # depend on worker completion order.
            payloads = [future.result() for future in futures]
        return [payload.to_result() for payload in payloads]

    def _merge(self, results: List[PartitionResult]) -> ParallelResult:
        replica_sets = merge_replica_sets(
            [r.state.replica_sets for r in results])
        sizes: Dict[int, int] = {p: 0 for p in self.partitions}
        for result in results:
            for partition, count in result.state.partition_edges.items():
                sizes[partition] += count
        return ParallelResult(
            algorithm=results[0].algorithm if results else "none",
            num_instances=self.num_instances,
            spread=self.spread,
            instance_results=results,
            replica_sets=replica_sets,
            partition_sizes=sizes,
            latency_ms=max((r.latency_ms for r in results), default=0.0),
            score_computations=sum(r.score_computations for r in results),
            backend=self.backend,
        )
