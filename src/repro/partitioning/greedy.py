"""Greedy vertex-cut partitioning (PowerGraph, Gonzalez et al., OSDI 2012).

The classic locality-aware single-edge heuristic, implemented with the four
case rules from the PowerGraph paper:

1. Both endpoints already share partitions → least-loaded shared partition.
2. Both endpoints placed but disjoint → least-loaded partition holding the
   endpoint with more *unassigned* edges (approximated here by the smaller
   observed degree, which has more edges still to come under power laws —
   following common open-source implementations we use the higher-degree
   heuristic variant: pick from the partitions of the endpoint whose degree
   is larger, as that vertex is harder to keep local).
3. Exactly one endpoint placed → least-loaded partition holding it.
4. Neither placed → least-loaded partition overall.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.graph.graph import Edge
from repro.partitioning.base import StreamingPartitioner


class GreedyPartitioner(StreamingPartitioner):
    """PowerGraph's greedy single-edge heuristic."""

    name = "Greedy"

    def _least_loaded(self, candidates: Iterable[int]) -> int:
        pool: List[int] = list(candidates)
        self.clock.charge_score(len(pool))
        return min(pool, key=lambda p: (self.state.size(p), p))

    def _least_loaded_bits(self, bits: int) -> int:
        """Least-loaded partition among bitmask ``bits`` (fast-state form).

        Tie-break matches :meth:`_least_loaded`: smallest size, then
        smallest partition id.  Charges one score per considered
        partition, like the legacy pool scan.
        """
        state = self.state
        sizes = state.sizes_list()
        partitions = state.partitions
        considered = 0
        best_key = None
        while bits:
            low = bits & -bits
            bits ^= low
            j = low.bit_length() - 1
            considered += 1
            key = (sizes[j], partitions[j])
            if best_key is None or key < best_key:
                best_key = key
        self.clock.charge_score(considered)
        return best_key[1]

    def _select_fast(self, edge: Edge) -> int:
        """Case rules over replica bitmasks instead of set algebra."""
        state = self.state
        bits_u, bits_v = state.replica_bits_pair(edge.u, edge.v)
        shared = bits_u & bits_v
        if shared:
            return self._least_loaded_bits(shared)
        if bits_u and bits_v:
            deg_u, deg_v = state.degree_pair(edge.u, edge.v)
            return self._least_loaded_bits(bits_u if deg_u >= deg_v
                                           else bits_v)
        if bits_u:
            return self._least_loaded_bits(bits_u)
        if bits_v:
            return self._least_loaded_bits(bits_v)
        return self._least_loaded(self.partitions)

    def select_partition(self, edge: Edge) -> int:
        if self.state.is_fast:
            return self._select_fast(edge)
        reps_u = self.state.replicas(edge.u) & set(self.partitions)
        reps_v = self.state.replicas(edge.v) & set(self.partitions)
        shared = reps_u & reps_v
        if shared:
            return self._least_loaded(shared)
        if reps_u and reps_v:
            deg_u, deg_v = self.state.degree_pair(edge.u, edge.v)
            pool = reps_u if deg_u >= deg_v else reps_v
            return self._least_loaded(pool)
        if reps_u:
            return self._least_loaded(reps_u)
        if reps_v:
            return self._least_loaded(reps_v)
        return self._least_loaded(self.partitions)
