"""Ja-Be-Ja-VC — distributed swap-based vertex-cut partitioning.

Rahimian et al. (DAIS 2014), the iterative comparator in the upper-right
of the paper's Fig. 1: start from any balanced edge assignment, then
repeatedly let pairs of edges *swap* their partitions when the swap
reduces the number of vertex replicas.  Because swaps preserve partition
sizes exactly, balance is maintained by construction while replication
falls — at super-linear cost in the number of swap rounds.

This is a faithful centralised simulation of the gossip protocol: each
round, every edge samples a handful of swap partners (local neighbors
first, then random edges, as in the paper's hybrid policy) and performs
the best replica-reducing swap, with simulated-annealing tolerance for
early rounds.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.graph import Edge
from repro.graph.stream import EdgeStream
from repro.partitioning.base import PartitionResult, StreamingPartitioner
from repro.partitioning.hashing import HashPartitioner
from repro.partitioning.state import PartitionState
from repro.simtime import Clock


class JaBeJaVCPartitioner(StreamingPartitioner):
    """Swap-based iterative vertex-cut refinement over a hash start."""

    name = "JaBeJa-VC"

    def __init__(self, partitions: Sequence[int],
                 clock: Optional[Clock] = None,
                 state: Optional[PartitionState] = None,
                 rounds: int = 10,
                 sample_size: int = 8,
                 initial_temperature: float = 2.0,
                 cooling: float = 0.8,
                 seed: int = 0) -> None:
        super().__init__(partitions, clock=clock, state=state)
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        if sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        if not 0.0 < cooling <= 1.0:
            raise ValueError("cooling must be in (0, 1]")
        self.rounds = rounds
        self.sample_size = sample_size
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self._seed = seed

    supports_incremental = False  # iterative: needs the whole edge set

    def select_partition(self, edge: Edge) -> int:  # pragma: no cover
        raise NotImplementedError("JaBeJa-VC is iterative; "
                                  "use partition_stream")

    # ------------------------------------------------------------------
    # Cost model: an edge's 'utility' on partition p is how many of its
    # endpoints already have other edges on p (replica reuse).
    # ------------------------------------------------------------------
    @staticmethod
    def _utility(edge: Edge, partition: int,
                 vertex_counts: Dict[Tuple[int, int], int]) -> int:
        score = 0
        for vertex in (edge.u, edge.v):
            if vertex_counts.get((vertex, partition), 0) > 0:
                score += 1
        return score

    def partition_stream(self, stream: EdgeStream) -> PartitionResult:
        start = self.clock.now()
        rng = random.Random(self._seed)
        edges: List[Edge] = [e.canonical() for e in stream]
        for edge in edges:
            self.state.observe_degrees(edge)

        # Balanced random start (hash partitioning).
        seeder = HashPartitioner(self.partitions, clock=self.clock,
                                 seed=self._seed)
        placement: List[int] = [
            seeder.select_partition(edge) for edge in edges]

        # vertex_counts[(v, p)] = number of edges of v currently on p.
        vertex_counts: Dict[Tuple[int, int], int] = {}
        for edge, partition in zip(edges, placement):
            for vertex in (edge.u, edge.v):
                key = (vertex, partition)
                vertex_counts[key] = vertex_counts.get(key, 0) + 1

        def move(index: int, new_partition: int) -> None:
            old = placement[index]
            edge = edges[index]
            for vertex in (edge.u, edge.v):
                vertex_counts[(vertex, old)] -= 1
                if vertex_counts[(vertex, old)] == 0:
                    del vertex_counts[(vertex, old)]
                key = (vertex, new_partition)
                vertex_counts[key] = vertex_counts.get(key, 0) + 1
            placement[index] = new_partition

        temperature = self.initial_temperature
        n = len(edges)
        for _ in range(self.rounds):
            order = list(range(n))
            rng.shuffle(order)
            for index in order:
                edge = edges[index]
                my_partition = placement[index]
                # Exclude this edge itself from its own utility.
                for vertex in (edge.u, edge.v):
                    vertex_counts[(vertex, my_partition)] -= 1
                partners = [rng.randrange(n)
                            for _ in range(self.sample_size)]
                best_partner = None
                best_gain = 0.0
                for partner in partners:
                    if partner == index:
                        continue
                    other = edges[partner]
                    other_partition = placement[partner]
                    if other_partition == my_partition:
                        continue
                    for vertex in (other.u, other.v):
                        vertex_counts[(vertex, other_partition)] -= 1
                    self.clock.charge_score(4)
                    before = (self._utility(edge, my_partition,
                                            vertex_counts)
                              + self._utility(other, other_partition,
                                              vertex_counts))
                    after = (self._utility(edge, other_partition,
                                           vertex_counts)
                             + self._utility(other, my_partition,
                                             vertex_counts))
                    for vertex in (other.u, other.v):
                        key = (vertex, other_partition)
                        vertex_counts[key] = vertex_counts.get(key, 0) + 1
                    gain = after * temperature - before
                    if gain > best_gain:
                        best_gain = gain
                        best_partner = partner
                for vertex in (edge.u, edge.v):
                    key = (vertex, my_partition)
                    vertex_counts[key] = vertex_counts.get(key, 0) + 1
                if best_partner is not None:
                    partner_partition = placement[best_partner]
                    move(best_partner, my_partition)
                    move(index, partner_partition)
            temperature = max(1.0, temperature * self.cooling)

        assignments: Dict[Edge, int] = {}
        for edge, partition in zip(edges, placement):
            assignments[edge] = partition
            self.state.assign(edge, partition)
            self.clock.charge_assignment()
        return PartitionResult(
            algorithm=self.name,
            state=self.state,
            assignments=assignments,
            latency_ms=self.clock.now() - start,
            score_computations=getattr(self.clock, "score_computations", 0),
        )
