"""Partitioning quality metrics.

Implements the objective and constraint of the paper's problem statement:
replication degree (Eq. 1) and edge balance (Eq. 2), plus helpers for the
parallel-loading analysis where per-instance results must be merged.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Set

from repro.graph.graph import Edge


def replica_sets_from_assignments(
        assignments: Mapping[Edge, int]) -> Dict[int, Set[int]]:
    """Reconstruct replica sets ``R_v`` from an edge → partition mapping."""
    replicas: Dict[int, Set[int]] = {}
    for edge, partition in assignments.items():
        replicas.setdefault(edge.u, set()).add(partition)
        replicas.setdefault(edge.v, set()).add(partition)
    return replicas


def merge_replica_sets(
        parts: Iterable[Mapping[int, Set[int]]]) -> Dict[int, Set[int]]:
    """Union replica sets from several partitioner instances."""
    merged: Dict[int, Set[int]] = {}
    for mapping in parts:
        for vertex, reps in mapping.items():
            merged.setdefault(vertex, set()).update(reps)
    return merged


def replication_degree(replicas: Mapping[int, Set[int]]) -> float:
    """Average replica-set size ``(1/|V|) Σ |R_v|`` (Eq. 1)."""
    if not replicas:
        return 0.0
    return sum(len(r) for r in replicas.values()) / len(replicas)


def partition_sizes(assignments: Mapping[Edge, int],
                    partitions: Iterable[int]) -> Dict[int, int]:
    """Edge counts per partition, including empty partitions."""
    sizes = {p: 0 for p in partitions}
    for partition in assignments.values():
        sizes[partition] = sizes.get(partition, 0) + 1
    return sizes


def balance_ratio(sizes: Mapping[int, int]) -> float:
    """``minsize / maxsize`` — must exceed τ per the constraint in Eq. 2."""
    if not sizes:
        return 1.0
    max_size = max(sizes.values())
    if max_size == 0:
        return 1.0
    return min(sizes.values()) / max_size


def imbalance(sizes: Mapping[int, int]) -> float:
    """``(maxsize − minsize) / maxsize`` — the paper's Fig. 7 balance check."""
    if not sizes:
        return 0.0
    max_size = max(sizes.values())
    if max_size == 0:
        return 0.0
    return (max_size - min(sizes.values())) / max_size


def vertex_copies(replicas: Mapping[int, Set[int]]) -> int:
    """Total number of vertex copies across all partitions."""
    return sum(len(r) for r in replicas.values())


def cut_vertices(replicas: Mapping[int, Set[int]]) -> List[int]:
    """Vertices replicated on more than one partition (the vertex cut)."""
    return [v for v, reps in replicas.items() if len(reps) > 1]
