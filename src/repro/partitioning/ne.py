"""Neighborhood Expansion (NE) — Zhang et al., KDD 2017.

The all-edge comparator at the far right of the paper's Fig. 1 landscape:
NE loads the whole graph and grows each partition around an expanding
*core* of vertices, repeatedly moving the boundary vertex whose
unassigned-edge neighborhood is smallest into the core and assigning its
incident edges — producing very low replication at super-linear cost.

This implementation follows the published heuristic:

1. For partition p, maintain a core set C and a boundary S ⊇ C (vertices
   with at least one edge assigned to p).
2. Until p holds |E|/k edges: pick from S \\ C the vertex x minimising its
   number of *unassigned* incident edges (the expansion score); if S \\ C
   is empty, seed with a random unassigned vertex of minimal degree.
3. Move x into C; assign every unassigned edge between x and S to p, and
   pull x's unassigned neighbors into S (assigning the connecting edge).
4. Leftover edges after the last partition are assigned round-robin to
   the least-loaded partitions.

NE is not a *streaming* algorithm: it needs the full graph in memory and
is included as the quality upper-bound reference, exactly the role it
plays in the paper's landscape figure.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Optional, Sequence, Set

from repro.graph.graph import Edge, Graph
from repro.graph.stream import EdgeStream
from repro.partitioning.base import PartitionResult, StreamingPartitioner
from repro.partitioning.state import PartitionState
from repro.simtime import Clock


class NEPartitioner(StreamingPartitioner):
    """All-edge neighborhood-expansion vertex-cut partitioner."""

    name = "NE"
    supports_incremental = False  # needs the whole edge set up front

    def __init__(self, partitions: Sequence[int],
                 clock: Optional[Clock] = None,
                 state: Optional[PartitionState] = None,
                 seed: int = 0) -> None:
        super().__init__(partitions, clock=clock, state=state)
        self._seed = seed

    # NE is all-edge: the single-edge hook is not meaningful.
    def select_partition(self, edge: Edge) -> int:  # pragma: no cover
        raise NotImplementedError("NE is an all-edge algorithm; "
                                  "use partition_stream")

    def partition_stream(self, stream: EdgeStream) -> PartitionResult:
        start = self.clock.now()
        rng = random.Random(self._seed)
        graph = Graph()
        order: List[Edge] = []
        for edge in stream:
            canon = edge.canonical()
            order.append(canon)
            self.state.observe_degrees(canon)
            if not canon.is_loop():
                graph.add_edge(canon.u, canon.v)

        unassigned: Set[Edge] = set(graph.edges())
        total = len(unassigned)
        k = len(self.partitions)
        capacity = max(1, -(-total // k))  # ceil
        assignments: Dict[Edge, int] = {}

        def unassigned_degree(vertex: int) -> int:
            # Each evaluation scans the vertex's adjacency; charging per
            # neighbor makes NE's super-linear cost visible to the clock.
            nbrs = graph.neighbors(vertex)
            self.clock.charge_score(len(nbrs))
            return sum(1 for n in nbrs
                       if Edge(vertex, n).canonical() in unassigned)

        def assign(edge: Edge, partition: int) -> None:
            unassigned.discard(edge)
            assignments[edge] = partition
            self.state.assign(edge, partition)
            self.clock.charge_assignment()

        # Seed order: vertices by (static) degree, cheapest first.
        seed_order = sorted(graph.vertices(),
                            key=lambda v: (graph.degree(v), v))

        for partition in self.partitions:
            if not unassigned:
                break
            core: Set[int] = set()
            boundary: Set[int] = set()
            seed_index = 0  # rescan per partition; exhausted vertices skip fast
            # Lazy min-heap of (expansion score, vertex); stale entries are
            # re-validated on pop — the published implementation strategy.
            frontier_heap: List[Tuple[int, int]] = []

            def push(vertex: int) -> None:
                heapq.heappush(frontier_heap,
                               (unassigned_degree(vertex), vertex))

            while self.state.size(partition) < capacity and unassigned:
                x = None
                while frontier_heap:
                    score, candidate = heapq.heappop(frontier_heap)
                    if candidate in core:
                        continue
                    current = unassigned_degree(candidate)
                    if current != score:
                        heapq.heappush(frontier_heap, (current, candidate))
                        continue
                    x = candidate
                    break
                if x is None:
                    # Seed: the next low-degree vertex with unassigned edges.
                    while seed_index < len(seed_order):
                        candidate = seed_order[seed_index]
                        seed_index += 1
                        if (candidate not in core
                                and unassigned_degree(candidate) > 0):
                            x = candidate
                            break
                    if x is None:
                        break
                    boundary.add(x)
                core.add(x)
                for n in sorted(graph.neighbors(x)):
                    if self.state.size(partition) >= capacity:
                        break
                    edge = Edge(x, n).canonical()
                    if edge in unassigned:
                        assign(edge, partition)
                        if n not in boundary:
                            boundary.add(n)
                        push(n)

        # Round-robin leftovers to the least-loaded partitions.
        for edge in sorted(unassigned):
            target = min(self.partitions,
                         key=lambda p: (self.state.size(p), p))
            assign(edge, target)

        # Duplicate stream edges collapse onto their canonical assignment.
        for edge in order:
            assignments.setdefault(edge, assignments.get(edge, self.partitions[0]))
        return PartitionResult(
            algorithm=self.name,
            state=self.state,
            assignments=assignments,
            latency_ms=self.clock.now() - start,
            score_computations=getattr(self.clock, "score_computations", 0),
        )
