"""HDRF — High-Degree Replicated First (Petroni et al., CIKM 2015).

The strongest single-edge streaming baseline in the ADWISE evaluation.  For
edge ``(u, v)`` and partition ``p`` HDRF scores

    C(p) = C_rep(u, v, p) + λ · C_bal(p)

where the replication term rewards partitions already holding a replica of
an endpoint, weighted so that the *lower-degree* endpoint dominates (hence
high-degree vertices get replicated first), and the balance term pushes
toward the least-loaded partition.  λ is a fixed, user-chosen parameter; the
paper uses the authors' recommended λ = 1.1.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-free installs
    np = None  # score_all needs a fast state, which requires numpy

from repro.graph.graph import Edge
from repro.partitioning.base import StreamingPartitioner

_EPSILON = 1e-9


class HDRFPartitioner(StreamingPartitioner):
    """Single-edge streaming with degree-weighted replication scoring."""

    name = "HDRF"

    def __init__(self, partitions, clock=None, state=None,
                 lam: float = 1.1, fast: bool = False) -> None:
        super().__init__(partitions, clock=clock, state=state, fast=fast)
        if lam < 0:
            raise ValueError(f"lambda must be non-negative, got {lam}")
        self.lam = lam

    # ------------------------------------------------------------------
    # Scoring (public so tests and Fig. 1 analysis can probe it)
    # ------------------------------------------------------------------
    def replication_score(self, edge: Edge, partition: int) -> float:
        """Degree-weighted replication reward ``C_rep``."""
        deg_u, deg_v = self.state.degree_pair(edge.u, edge.v)
        total = deg_u + deg_v
        # Relative degrees θ; equal split when both degrees are zero.
        theta_u = deg_u / total if total > 0 else 0.5
        theta_v = 1.0 - theta_u
        score = 0.0
        if self.state.is_replicated_on(edge.u, partition):
            score += 1.0 + (1.0 - theta_u)
        if self.state.is_replicated_on(edge.v, partition):
            score += 1.0 + (1.0 - theta_v)
        return score

    def balance_score(self, partition: int) -> float:
        """Normalised headroom of ``partition`` (``C_bal``)."""
        max_size = self.state.max_size
        min_size = self.state.min_size
        return ((max_size - self.state.size(partition))
                / (_EPSILON + max_size - min_size))

    def score(self, edge: Edge, partition: int) -> float:
        return (self.replication_score(edge, partition)
                + self.lam * self.balance_score(partition))

    def score_all(self, edge: Edge) -> np.ndarray:
        """``C(p)`` for all partitions in one batched kernel call.

        Requires a fast state.  Mirrors :meth:`score` operation-for-
        operation so argmax matches the legacy loop bit-for-bit; charges
        ``k`` score computations like the loop does.
        """
        state = self.state
        self.clock.charge_score(state.num_partitions)
        deg_u, deg_v = state.degree_pair(edge.u, edge.v)
        total = deg_u + deg_v
        theta_u = deg_u / total if total > 0 else 0.5
        theta_v = 1.0 - theta_u
        row_u, row_v = state.replica_rows_pair(edge.u, edge.v)
        replication = (row_u * (1.0 + (1.0 - theta_u))
                       + row_v * (1.0 + (1.0 - theta_v)))
        max_size = state.max_size
        balance = (max_size - state.sizes_vector()) / (
            _EPSILON + max_size - state.min_size)
        return replication + self.lam * balance

    def select_partition(self, edge: Edge) -> int:
        if self.state.is_fast:
            return self.partitions[int(np.argmax(self.score_all(edge)))]
        best_partition = self.partitions[0]
        best_score = float("-inf")
        for partition in self.partitions:
            self.clock.charge_score()
            s = self.score(edge, partition)
            if s > best_score:
                best_score = s
                best_partition = partition
        return best_partition
