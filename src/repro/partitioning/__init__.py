"""Vertex-cut streaming partitioning framework and baseline algorithms."""

from repro.partitioning.state import PartitionState, StateSnapshot
from repro.partitioning.fast_state import FastPartitionState
from repro.partitioning.base import PartitionResult, StreamingPartitioner
from repro.partitioning.metrics import (
    balance_ratio,
    imbalance,
    merge_replica_sets,
    partition_sizes,
    replication_degree,
)
from repro.partitioning.hashing import HashPartitioner
from repro.partitioning.grid import GridPartitioner
from repro.partitioning.dbh import DBHPartitioner
from repro.partitioning.hdrf import HDRFPartitioner
from repro.partitioning.greedy import GreedyPartitioner
from repro.partitioning.onedim import OneDimPartitioner, TwoDimPartitioner
from repro.partitioning.ne import NEPartitioner
from repro.partitioning.jabeja import JaBeJaVCPartitioner
from repro.partitioning.powerlyra import PowerLyraPartitioner
from repro.partitioning.parallel import (
    ParallelLoader,
    ParallelResult,
    PartitionerSpec,
)
from repro.partitioning.restream import RestreamingDriver
from repro.partitioning.hovercut import HoverCutPartitioner
from repro.partitioning.validate import ValidationReport, validate_result
from repro.partitioning.partition_io import (
    load_result,
    read_assignments,
    save_result,
    write_assignments,
)

__all__ = [
    "PartitionState",
    "StateSnapshot",
    "FastPartitionState",
    "PartitionResult",
    "StreamingPartitioner",
    "balance_ratio",
    "imbalance",
    "merge_replica_sets",
    "partition_sizes",
    "replication_degree",
    "HashPartitioner",
    "GridPartitioner",
    "DBHPartitioner",
    "HDRFPartitioner",
    "GreedyPartitioner",
    "OneDimPartitioner",
    "TwoDimPartitioner",
    "NEPartitioner",
    "JaBeJaVCPartitioner",
    "PowerLyraPartitioner",
    "ParallelLoader",
    "ParallelResult",
    "PartitionerSpec",
    "RestreamingDriver",
    "HoverCutPartitioner",
    "ValidationReport",
    "validate_result",
    "load_result",
    "read_assignments",
    "save_result",
    "write_assignments",
]
