"""HoVerCut-style batched shared-state parallel partitioning.

Sajjad et al. (IEEE BigData Congress 2016), a related-work system in the
paper: multiple threads consume the edge stream in *batches* and apply a
single-edge scoring policy against a **shared** vertex cache that is
synchronised only at batch boundaries.  Between synchronisations each
worker scores against its (stale) snapshot plus its local updates, which
trades decision freshness for parallelism — the opposite corner of the
design space from the paper's independent-cache parallel loading.

The simulation is deterministic: workers take batches round-robin; within
a batch a worker sees the shared state as of the last sync plus its own
batch-local updates; after every round all local updates merge into the
shared state.  Loading latency is the maximum per-worker clock, as the
workers run concurrently.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.graph.graph import Edge
from repro.graph.stream import EdgeStream
from repro.partitioning.base import PartitionResult, StreamingPartitioner
from repro.partitioning.state import PartitionState
from repro.simtime import Clock, SimulatedClock

#: Builds the scoring policy: given shared state + clock, returns a
#: partitioner whose ``select_partition`` is consulted per edge.
PolicyFactory = Callable[[PartitionState, Clock], StreamingPartitioner]


class HoverCutPartitioner:
    """Batched multi-worker streaming with a shared, batch-synced state."""

    name = "HoVerCut"

    def __init__(self, partitions: Sequence[int],
                 policy_factory: PolicyFactory,
                 num_workers: int = 4,
                 batch_size: int = 64,
                 clock_factory: Callable[[], Clock] = SimulatedClock) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.partitions = list(partitions)
        self.policy_factory = policy_factory
        self.num_workers = num_workers
        self.batch_size = batch_size
        self.clock_factory = clock_factory

    def partition_stream(self, stream: EdgeStream) -> PartitionResult:
        edges: List[Edge] = [e.canonical() for e in stream]
        shared = PartitionState(self.partitions)
        clocks = [self.clock_factory() for _ in range(self.num_workers)]
        policies = [self.policy_factory(PartitionState(self.partitions),
                                        clocks[w])
                    for w in range(self.num_workers)]
        assignments: Dict[Edge, int] = {}

        # Slice the stream into batches, handed out round-robin.
        batches: List[List[Edge]] = [
            edges[i:i + self.batch_size]
            for i in range(0, len(edges), self.batch_size)]

        for round_start in range(0, len(batches), self.num_workers):
            round_batches = batches[round_start:
                                    round_start + self.num_workers]
            round_updates: List[List[Tuple[Edge, int]]] = []
            for worker, batch in enumerate(round_batches):
                policy = policies[worker]
                # Snapshot: shared state as of the last sync.
                local = _clone_state(shared)
                policy.state = local
                policy.clock = clocks[worker]
                updates: List[Tuple[Edge, int]] = []
                for edge in batch:
                    local.observe_degrees(edge)
                    partition = policy.select_partition(edge)
                    local.assign(edge, partition)
                    clocks[worker].charge_assignment()
                    updates.append((edge, partition))
                round_updates.append(updates)
            # Batch boundary: merge all workers' updates into shared state.
            for updates in round_updates:
                for edge, partition in updates:
                    shared.observe_degrees(edge)
                    shared.assign(edge, partition)
                    assignments[edge] = partition

        return PartitionResult(
            algorithm=self.name,
            state=shared,
            assignments=assignments,
            latency_ms=max((c.now() for c in clocks), default=0.0),
            score_computations=sum(
                getattr(c, "score_computations", 0) for c in clocks),
        )


def _clone_state(state: PartitionState) -> PartitionState:
    """Deep-ish copy of a PartitionState (snapshot for one batch)."""
    clone = PartitionState(state.partitions)
    clone.replica_sets = {v: set(reps)
                          for v, reps in state.replica_sets.items()}
    clone.partition_edges = dict(state.partition_edges)
    clone.degree = dict(state.degree)
    clone.max_degree = state.max_degree
    clone.assigned_edges = state.assigned_edges
    clone._max_size = state._max_size
    clone._min_size = state._min_size
    clone._size_histogram = dict(state._size_histogram)
    return clone
