"""1D and 2D adjacency-matrix partitioning (GraphX-style).

1D partitioning assigns every edge by the hash of its *source* (here: the
canonically smaller) vertex — each vertex's out-edges land together, so one
endpoint never replicates but the other is arbitrary.  2D partitioning uses
both endpoints to pick a block of the adjacency matrix, bounding replicas by
``2√k`` like the grid scheme but without load-aware tie-breaking.
"""

from __future__ import annotations

import math

from repro.graph.graph import Edge
from repro.partitioning.base import StreamingPartitioner
from repro.util import stable_hash


class OneDimPartitioner(StreamingPartitioner):
    """Assign edges by the hash of the canonical source vertex."""

    name = "1D"

    def __init__(self, partitions, clock=None, state=None, seed: int = 0) -> None:
        super().__init__(partitions, clock=clock, state=state)
        self._seed = seed

    def select_partition(self, edge: Edge) -> int:
        self.clock.charge_score()
        canon = edge.canonical()
        return self.partitions[stable_hash(canon.u, self._seed)
                               % len(self.partitions)]


class TwoDimPartitioner(StreamingPartitioner):
    """Assign edges to adjacency-matrix blocks (source row, dest column)."""

    name = "2D"

    def __init__(self, partitions, clock=None, state=None, seed: int = 0) -> None:
        super().__init__(partitions, clock=clock, state=state)
        self._seed = seed
        k = len(self.partitions)
        self._cols = max(1, math.ceil(math.sqrt(k)))
        self._rows = math.ceil(k / self._cols)

    def select_partition(self, edge: Edge) -> int:
        self.clock.charge_score()
        canon = edge.canonical()
        row = stable_hash(canon.u, self._seed) % self._rows
        col = stable_hash(canon.v, self._seed + 1) % self._cols
        idx = (row * self._cols + col) % len(self.partitions)
        return self.partitions[idx]
