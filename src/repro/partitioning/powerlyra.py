"""PowerLyra-style hybrid-cut streaming partitioning (Chen et al., EuroSys'15).

Differentiated treatment of high- and low-degree vertices, a prominent
related-work baseline in the paper: edges incident to a *low-degree*
destination vertex are hashed by that vertex (keeping a low-degree
vertex's in-edges on a single partition, as in edge-cut), while edges
whose destination is *high-degree* are hashed by the source (PowerGraph
style vertex-cut for power-law hubs).

In our undirected setting "destination" is the canonically larger
endpoint.  Degrees come from the streaming partial degree table, and the
threshold is a user parameter (the original paper's θ).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.graph.graph import Edge
from repro.partitioning.base import StreamingPartitioner
from repro.partitioning.state import PartitionState
from repro.simtime import Clock
from repro.util import stable_hash


class PowerLyraPartitioner(StreamingPartitioner):
    """Hybrid-cut: hash low-degree destinations, cut high-degree ones."""

    name = "PowerLyra"

    def __init__(self, partitions: Sequence[int],
                 clock: Optional[Clock] = None,
                 state: Optional[PartitionState] = None,
                 degree_threshold: int = 16,
                 seed: int = 0) -> None:
        super().__init__(partitions, clock=clock, state=state)
        if degree_threshold < 1:
            raise ValueError("degree_threshold must be >= 1")
        self.degree_threshold = degree_threshold
        self._seed = seed

    def select_partition(self, edge: Edge) -> int:
        self.clock.charge_score()
        canon = edge.canonical()
        destination, source = canon.v, canon.u
        if self.state.degree_of(destination) <= self.degree_threshold:
            anchor = destination  # low-cut: group the low-degree vertex
        else:
            anchor = source       # high-cut: spread the hub's edges
        digest = stable_hash(anchor, self._seed)
        return self.partitions[digest % len(self.partitions)]
