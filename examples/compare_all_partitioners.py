#!/usr/bin/env python
"""Survey every implemented partitioning strategy on one graph.

Runs the complete roster — hash family, degree-aware streaming, hybrid
cuts, the window-based ADWISE, and the super-linear comparators (swap
refinement, neighborhood expansion) — on a clustered graph, validates
every result's invariants, and prints the latency/quality landscape
(the paper's Fig. 1 shape).

Run:  python examples/compare_all_partitioners.py
"""

from repro import (
    AdwisePartitioner,
    DBHPartitioner,
    GreedyPartitioner,
    GridPartitioner,
    HashPartitioner,
    HDRFPartitioner,
    JaBeJaVCPartitioner,
    NEPartitioner,
    OneDimPartitioner,
    PowerLyraPartitioner,
    TwoDimPartitioner,
    community_powerlaw_graph,
    shuffled,
)
from repro.partitioning.validate import validate_result

NUM_PARTITIONS = 16


def main() -> None:
    graph = community_powerlaw_graph(num_communities=15, community_size=30,
                                     intra_p=0.5, overlay_m=3, seed=4)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges\n")

    strategies = [
        ("Hash", lambda: HashPartitioner(range(NUM_PARTITIONS))),
        ("1D", lambda: OneDimPartitioner(range(NUM_PARTITIONS))),
        ("2D", lambda: TwoDimPartitioner(range(NUM_PARTITIONS))),
        ("Grid", lambda: GridPartitioner(range(NUM_PARTITIONS))),
        ("DBH", lambda: DBHPartitioner(range(NUM_PARTITIONS))),
        ("PowerLyra", lambda: PowerLyraPartitioner(range(NUM_PARTITIONS))),
        ("Greedy", lambda: GreedyPartitioner(range(NUM_PARTITIONS))),
        ("HDRF", lambda: HDRFPartitioner(range(NUM_PARTITIONS))),
        ("ADWISE w=32", lambda: AdwisePartitioner(range(NUM_PARTITIONS),
                                                  fixed_window=32)),
        ("JaBeJa-VC", lambda: JaBeJaVCPartitioner(range(NUM_PARTITIONS),
                                                  rounds=6)),
        ("NE", lambda: NEPartitioner(range(NUM_PARTITIONS))),
    ]

    print(f"{'strategy':<12} {'replication':>11} {'imbalance':>9} "
          f"{'sim latency':>12}  valid")
    for name, make in strategies:
        result = make().partition_stream(shuffled(graph.edges(), seed=6))
        report = validate_result(result)
        print(f"{name:<12} {result.replication_degree:>11.3f} "
              f"{result.imbalance:>9.3f} {result.latency_ms:>10.1f}ms  "
              f"{'ok' if report.ok else 'INVALID: ' + report.errors[0]}")

    print("\nReading the table as the paper's Fig. 1: hashing strategies "
          "are cheapest and worst,\ndegree-aware streaming improves "
          "quality at small extra cost, ADWISE trades latency\nfor "
          "quality controllably, and NE (all-edge) anchors the "
          "high-quality/high-cost corner.")


if __name__ == "__main__":
    main()
