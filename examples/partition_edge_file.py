#!/usr/bin/env python
"""File-to-file partitioning: the production workflow.

Writes a synthetic graph to a SNAP-style edge-list file, streams it back
through ADWISE *without materialising the graph in memory*, and writes a
partition assignment file — the shape of a real preprocessing pipeline in
front of a distributed graph engine.

Run:  python examples/partition_edge_file.py
"""

import os
import tempfile

from repro import AdwisePartitioner, FileEdgeStream, powerlaw_cluster_graph
from repro.graph.io import write_graph

NUM_PARTITIONS = 16


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="adwise-example-")
    graph_path = os.path.join(workdir, "graph.txt")
    out_path = os.path.join(workdir, "assignments.txt")

    # 1. A graph file on disk (comments + "u v" lines, like SNAP dumps).
    graph = powerlaw_cluster_graph(n=2000, m=5, p=0.8, seed=3)
    count = write_graph(graph_path, graph,
                        header="synthetic powerlaw-cluster graph")
    print(f"wrote {count} edges to {graph_path}")

    # 2. Stream it.  FileEdgeStream counts lines up front so ADWISE's
    #    adaptive controller knows |E| for its latency budget (exactly the
    #    paper's 'line count on the graph file').
    stream = FileEdgeStream(graph_path)
    print(f"stream reports {len(stream)} edges")

    # 3. Partition with a latency preference.
    partitioner = AdwisePartitioner(range(NUM_PARTITIONS),
                                    latency_preference_ms=600.0)
    result = partitioner.partition_stream(stream)
    print(f"replication degree {result.replication_degree:.3f}, "
          f"imbalance {result.imbalance:.3f}, "
          f"latency {result.latency_ms:.1f} ms, "
          f"peak window {result.extras['max_window']:.0f}")

    # 4. Write "u v partition" lines for the downstream engine.
    with open(out_path, "w", encoding="utf-8") as handle:
        for edge, partition in result.assignments.items():
            handle.write(f"{edge.u} {edge.v} {partition}\n")
    print(f"wrote assignments to {out_path}")


if __name__ == "__main__":
    main()
