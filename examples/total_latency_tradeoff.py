#!/usr/bin/env python
"""The paper's headline experiment on your own machine.

Reproduces the Fig. 7a shape end to end: partition the Brain analogue with
DBH, HDRF, and ADWISE at increasing latency preferences, simulate PageRank
processing on an 8-machine cluster, and print stacked totals showing the
sweet spot where investing *more* partitioning latency minimises the *sum*
of partitioning and processing latency.

Run:  python examples/total_latency_tradeoff.py
"""

from repro.bench.harness import (
    ExperimentConfig,
    run_partitioning,
    stacked_latency_experiment,
)
from repro.bench.reporting import format_stacked_rows, summarize_winner
from repro.bench.workloads import BRAIN, adwise_factory, baseline_factories

BLOCKS = 3  # 3 blocks x 100 PageRank iterations


def main() -> None:
    graph = BRAIN.build()
    print(f"Brain analogue: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")

    # The paper's guideline: express ADWISE's latency preference as a
    # multiple of the measured single-edge streaming latency.
    hdrf = run_partitioning(baseline_factories()["HDRF"], BRAIN.stream())
    base_ms = hdrf.latency_ms
    print(f"single-edge (HDRF) partitioning latency: {base_ms:.1f} ms\n")

    configs = [
        ExperimentConfig("DBH", baseline_factories()["DBH"]),
        ExperimentConfig("HDRF", baseline_factories()["HDRF"]),
    ]
    for mult in (2, 4, 8, 16):
        configs.append(ExperimentConfig(
            f"ADWISE {mult}x",
            adwise_factory(base_ms * mult, use_clustering=True,
                           max_window=256)))

    rows = stacked_latency_experiment(
        graph, BRAIN.stream, configs,
        workload="pagerank", block_iterations=100, num_blocks=BLOCKS,
        enforce_balance=False)

    print(format_stacked_rows(
        rows, title="PageRank on Brain: partitioning + processing latency",
        num_blocks=BLOCKS))
    print()
    for blocks in range(1, BLOCKS + 1):
        print(summarize_winner(rows, blocks))

    best = min(rows, key=lambda r: r.total_after_blocks(BLOCKS))
    hdrf_row = next(r for r in rows if r.label == "HDRF")
    saving = 1 - (best.total_after_blocks(BLOCKS)
                  / hdrf_row.total_after_blocks(BLOCKS))
    print(f"\n{best.label} saves {saving:.1%} total latency vs HDRF "
          f"(the paper reports up to 18-23% at cluster scale).")


if __name__ == "__main__":
    main()
