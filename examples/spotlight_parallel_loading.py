#!/usr/bin/env python
"""Spotlight partitioning: parallel loading done right (paper §III-D).

Eight partitioner instances load disjoint chunks of a graph in parallel,
as real graph systems do.  This example sweeps the *spread* — how many of
the 32 global partitions each instance may fill — and shows that small,
exclusive spotlights dramatically reduce the replication degree for every
strategy, while the maximal spread used by prior systems is the worst
setting.

Run:  python examples/spotlight_parallel_loading.py
"""

from repro import HDRFPartitioner, DBHPartitioner
from repro.core.adwise import AdwisePartitioner
from repro.bench.workloads import BRAIN
from repro.partitioning.parallel import ParallelLoader

NUM_PARTITIONS = 32
NUM_INSTANCES = 8
SPREADS = (4, 8, 16, 32)

STRATEGIES = {
    "DBH": lambda parts, clock: DBHPartitioner(parts, clock=clock),
    "HDRF": lambda parts, clock: HDRFPartitioner(parts, clock=clock),
    "ADWISE": lambda parts, clock: AdwisePartitioner(
        parts, clock=clock, fixed_window=32),
}


def main() -> None:
    graph = BRAIN.build()
    print(f"Brain analogue: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")
    print(f"{NUM_INSTANCES} parallel partitioner instances, "
          f"{NUM_PARTITIONS} partitions\n")

    header = f"{'strategy':<8}" + "".join(f"  spread={s:<3}" for s in SPREADS)
    print(header)
    print("-" * len(header))
    for name, factory in STRATEGIES.items():
        cells = []
        for spread in SPREADS:
            loader = ParallelLoader(
                factory, partitions=list(range(NUM_PARTITIONS)),
                num_instances=NUM_INSTANCES, spread=spread)
            result = loader.run(BRAIN.stream())
            cells.append(f"{result.replication_degree:>10.3f}")
        print(f"{name:<8}" + " ".join(cells))

    print("\nspread=4 gives each instance its own exclusive partitions "
          "(the spotlight);")
    print("spread=32 is the maximal spread of prior systems. Lower "
          "replication degree is better.")


if __name__ == "__main__":
    main()
